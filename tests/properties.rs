//! Property-based tests (proptest) on core data structures and
//! invariants across the workspace.

use appvsweb::adblock::FilterEngine;
use appvsweb::httpsim::codec;
use appvsweb::httpsim::{wire, Body, Method, Request, Url};
use appvsweb::pii::encode::Encoding;
use appvsweb::pii::{hash, GroundTruth, GroundTruthMatcher};
use appvsweb::analysis::stats::{jaccard, Cdf, Pdf};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    // ---------------- codecs ----------------

    #[test]
    fn percent_roundtrip(s in "\\PC{0,64}") {
        prop_assert_eq!(codec::percent_decode(&codec::percent_encode(&s)), s);
    }

    #[test]
    fn base64_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let enc = codec::base64_encode(&data);
        prop_assert_eq!(codec::base64_decode(&enc).unwrap(), data.clone());
        let url = codec::base64url_encode(&data);
        prop_assert_eq!(codec::base64_decode(&url).unwrap(), data);
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(codec::hex_decode(&codec::hex_encode(&data)).unwrap(), data);
    }

    #[test]
    fn form_roundtrip(pairs in proptest::collection::vec(("[a-z]{1,8}", "\\PC{0,24}"), 0..8)) {
        let borrowed: Vec<(&str, &str)> =
            pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let encoded = codec::form_urlencode(&borrowed);
        let decoded = codec::form_urldecode(&encoded);
        let expected: Vec<(String, String)> = pairs.clone();
        prop_assert_eq!(decoded, expected);
    }

    // ---------------- hashes ----------------

    #[test]
    fn hashes_are_deterministic_and_sized(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(hash::md5(&data), hash::md5(&data));
        prop_assert_eq!(hash::sha1(&data), hash::sha1(&data));
        prop_assert_eq!(hash::sha256(&data), hash::sha256(&data));
        prop_assert_eq!(hash::md5_hex(&data).len(), 32);
        prop_assert_eq!(hash::sha1_hex(&data).len(), 40);
        prop_assert_eq!(hash::sha256_hex(&data).len(), 64);
    }

    #[test]
    fn hash_avalanche(data in proptest::collection::vec(any::<u8>(), 1..128), idx in 0usize..128) {
        let mut flipped = data.clone();
        let i = idx % flipped.len();
        flipped[i] ^= 1;
        prop_assert_ne!(hash::sha256(&data), hash::sha256(&flipped));
    }

    // ---------------- encodings ----------------

    #[test]
    fn rot13_is_involutive(s in "\\PC{0,64}") {
        prop_assert_eq!(
            Encoding::Rot13.apply(&Encoding::Rot13.apply(&s)),
            s
        );
    }

    #[test]
    fn case_encodings_are_idempotent(s in "\\PC{0,64}") {
        let lower = Encoding::Lowercase.apply(&s);
        prop_assert_eq!(Encoding::Lowercase.apply(&lower), lower.clone());
        let upper = Encoding::Uppercase.apply(&s);
        prop_assert_eq!(Encoding::Uppercase.apply(&upper), upper);
    }

    // ---------------- URLs & wire ----------------

    #[test]
    fn url_display_parse_roundtrip(
        host in "[a-z]{1,10}(\\.[a-z]{2,6}){1,2}",
        path in "(/[a-z0-9]{1,8}){0,3}",
        key in "[a-z]{1,6}",
        value in "[a-z0-9]{0,12}",
    ) {
        let mut url = Url::new(appvsweb::httpsim::url::Scheme::Https, &host, if path.is_empty() { "/".into() } else { path });
        url.push_query(&key, &value);
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(reparsed, url);
    }

    #[test]
    fn wire_request_roundtrip(
        host in "[a-z]{1,10}\\.[a-z]{2,4}",
        body in proptest::collection::vec(any::<u8>(), 0..128),
        secure in any::<bool>(),
    ) {
        let scheme = if secure { appvsweb::httpsim::url::Scheme::Https } else { appvsweb::httpsim::url::Scheme::Http };
        let url = Url::new(scheme, &host, "/x");
        let mut req = Request::new(Method::Post, url);
        req.set_body(Body::binary(body, "application/octet-stream"));
        let bytes = wire::serialize_request(&req);
        let parsed = wire::parse_request(&bytes, secure).unwrap();
        prop_assert_eq!(parsed.body.bytes, req.body.bytes);
        prop_assert_eq!(parsed.url.host.as_str(), host.as_str());
        prop_assert_eq!(parsed.url.is_plaintext(), !secure);
    }

    #[test]
    fn chunked_roundtrip(
        body in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..512,
    ) {
        let framed = wire::chunk_body(&body, chunk);
        prop_assert_eq!(wire::dechunk_body(&framed).unwrap(), body);
    }

    // ---------------- stats ----------------

    #[test]
    fn cdf_is_monotone_and_bounded(samples in proptest::collection::vec(-1000i64..1000, 1..64)) {
        let cdf = Cdf::new(samples.iter().map(|v| *v as f64).collect());
        let pts = cdf.points();
        for w in pts.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!((pts.last().unwrap().1 - 100.0).abs() < 1e-9);
        prop_assert!(cdf.at(f64::MAX) == 1.0);
        prop_assert!(cdf.at(-1e18) == 0.0);
    }

    #[test]
    fn pdf_mass_sums_to_100(samples in proptest::collection::vec(-50i64..50, 1..64)) {
        let pdf = Pdf::new(&samples);
        let total: f64 = pdf.bins.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn jaccard_bounds_and_symmetry(
        a in proptest::collection::btree_set(0u8..32, 0..16),
        b in proptest::collection::btree_set(0u8..32, 0..16),
    ) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard(&b, &a));
        if !a.is_empty() {
            prop_assert_eq!(jaccard(&a, &a), 1.0);
        }
        let empty: BTreeSet<u8> = BTreeSet::new();
        prop_assert_eq!(jaccard(&a, &empty), 0.0);
    }

    // ---------------- adblock ----------------

    #[test]
    fn host_anchor_matches_all_subdomains(
        domain in "[a-z]{3,10}\\.(com|net|io)",
        sub in "[a-z]{1,8}",
        path in "[a-z0-9]{0,10}",
    ) {
        let mut engine = FilterEngine::new();
        engine.load_list(&format!("||{domain}^\n"));
        let bare = format!("https://{domain}/{path}");
        let with_sub = format!("https://{sub}.{domain}/{path}");
        let lookalike = format!("https://{domain}x.org/{path}");
        prop_assert!(engine.is_ad_or_tracking(&bare, "origin.example"));
        prop_assert!(engine.is_ad_or_tracking(&with_sub, "origin.example"));
        // A lookalike domain with a suffix must not match.
        prop_assert!(!engine.is_ad_or_tracking(&lookalike, "origin.example"));
    }

    // ---------------- matcher ----------------

    #[test]
    fn matcher_finds_email_under_any_single_encoding(seed in 0u64..500) {
        let truth = GroundTruth::synthetic(seed);
        let matcher = GroundTruthMatcher::new(&truth);
        for enc in [Encoding::Plain, Encoding::Percent, Encoding::Base64, Encoding::Hex, Encoding::Md5] {
            let wire_form = enc.apply(&truth.email);
            let findings = matcher.scan(&format!("POST /t key={wire_form}"));
            prop_assert!(
                findings.iter().any(|f| f.pii_type == appvsweb::pii::PiiType::Email),
                "encoding {enc:?} missed for seed {seed}"
            );
        }
    }

    #[test]
    fn matcher_never_fires_on_foreign_identity(seed in 0u64..200) {
        // PII from a DIFFERENT account must not match this matcher
        // (the controlled-experiment premise: we only detect OUR values).
        let ours = GroundTruth::synthetic(seed);
        let theirs = GroundTruth::synthetic(seed + 100_000);
        prop_assume!(ours.email != theirs.email);
        let matcher = GroundTruthMatcher::new(&ours);
        let text = format!(
            "email={}&phone={}&name={}",
            theirs.email, theirs.phone, theirs.first_name
        );
        let hits: Vec<_> = matcher
            .scan(&text)
            .into_iter()
            // Gender is a one-letter flag shared by half of all accounts;
            // exclude it from the foreign-identity check.
            .filter(|f| f.pii_type != appvsweb::pii::PiiType::Gender)
            .filter(|f| f.pii_type != appvsweb::pii::PiiType::Name || text.contains(&f.value))
            .collect();
        for f in &hits {
            // Any remaining hit must be a genuine substring collision
            // (e.g. same first name drawn from the small name pool).
            prop_assert!(
                text.to_ascii_lowercase().contains(&f.value.to_ascii_lowercase()),
                "spurious finding {f:?}"
            );
        }
    }
}

proptest! {
    #[test]
    fn deflate_inflate_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        use appvsweb::httpsim::compress::{deflate, inflate};
        prop_assert_eq!(inflate(&deflate(&data)).unwrap(), data);
    }

    #[test]
    fn gzip_roundtrip_prop(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        use appvsweb::httpsim::compress::{gzip_compress, gzip_decompress};
        prop_assert_eq!(gzip_decompress(&gzip_compress(&data)).unwrap(), data);
    }

    #[test]
    fn inflate_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Totality: arbitrary bytes must yield Ok or Err, never a panic.
        let _ = appvsweb::httpsim::compress::inflate(&data);
        let _ = appvsweb::httpsim::compress::gzip_decompress(&data);
    }

    #[test]
    fn wire_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wire::parse_request(&data, true);
        let _ = wire::parse_request(&data, false);
        let _ = wire::parse_response(&data);
    }

    #[test]
    fn adblock_parser_never_panics(line in "\\PC{0,80}") {
        let _ = appvsweb::adblock::filter::parse_line(&line);
    }

    #[test]
    fn url_parser_never_panics(s in "\\PC{0,120}") {
        let _ = Url::parse(&s);
        let _ = Url::parse(&format!("https://{s}"));
    }
}

proptest! {
    #[test]
    fn analyze_trace_is_total_on_adversarial_transactions(
        host in "[a-z]{1,12}(\\.[a-z]{2,5}){1,2}",
        path in "(/[\\PC]{0,12}){0,3}",
        body in proptest::collection::vec(any::<u8>(), 0..512),
        plaintext in any::<bool>(),
        gzip_header in any::<bool>(),
    ) {
        // Arbitrary transaction content must never panic the analyzer,
        // and its accounting must stay internally consistent.
        use appvsweb::adblock::Categorizer;
        use appvsweb::analysis::analyze_trace;
        use appvsweb::mitm::{HttpTransaction, Trace};
        use appvsweb::netsim::{ConnectionStats, Os, SimTime};
        use appvsweb::pii::{CombinedDetector, GroundTruth};
        use appvsweb::services::{Catalog, Medium};

        let scheme = if plaintext { "http" } else { "https" };
        let clean_path: String = path.chars().filter(|c| !c.is_whitespace() && *c != '#' && *c != '?').collect();
        let url = match Url::parse(&format!("{scheme}://{host}/{clean_path}")) {
            Ok(u) => u,
            Err(_) => return Ok(()),
        };
        let mut req = Request::new(Method::Post, url);
        req.set_body(Body::binary(body, "application/octet-stream"));
        if gzip_header {
            // A gzip header over NON-gzip bytes: the inflating scanner
            // must fall back gracefully.
            req.headers.set("Content-Encoding", "gzip");
        }
        let mut trace = Trace::new();
        trace.connections.push(appvsweb::mitm::ConnectionRecord {
            id: 1,
            host: host.clone(),
            port: if plaintext { 80 } else { 443 },
            tls: !plaintext,
            decrypted: true,
            opaque_reason: None,
            opened_at: SimTime(0),
            closed_at: None,
            stats: ConnectionStats::default(),
            busy_ms: 0,
            transactions: 1,
        });
        trace.transactions.push(HttpTransaction {
            connection_id: 1,
            host: host.clone(),
            plaintext,
            at: SimTime(0),
            request: req,
            response: appvsweb::httpsim::Response::ok(Body::text("ok")),
        });

        let catalog = Catalog::paper();
        let spec = catalog.get("yelp").unwrap();
        let truth = GroundTruth::synthetic(1);
        let detector = CombinedDetector::new(&truth, None);
        let categorizer = Categorizer::bundled(spec.first_party);
        let cell = analyze_trace(&trace, spec, Os::Android, Medium::App, &detector, &categorizer);
        prop_assert!(cell.aa_flows <= cell.total_flows);
        prop_assert!(cell.leak_domains.len() >= usize::from(!cell.leaks.is_empty()));
        for t in &cell.leaked_types {
            prop_assert!(cell.per_type.contains_key(t));
        }
    }
}
