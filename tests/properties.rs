//! Property-based tests on core data structures and invariants across
//! the workspace, running on the in-repo `appvsweb-testkit` harness:
//! fixed-seed SplitMix64 case generation with greedy shrinking, so every
//! run on every machine sees the same cases.

use appvsweb::adblock::FilterEngine;
use appvsweb::analysis::stats::{jaccard, Cdf, Pdf};
use appvsweb::httpsim::codec;
use appvsweb::httpsim::{wire, Body, Method, Request, Url};
use appvsweb::pii::encode::Encoding;
use appvsweb::pii::{hash, GroundTruth, GroundTruthMatcher};
use appvsweb::services::session::RetryPolicy;
use appvsweb_testkit::fixtures::{hosts, paths};
use appvsweb_testkit::{gen, prop_test, SimRng};
use std::collections::BTreeSet;

/// Generator of arbitrary (but sane) retry policies, edge cases included:
/// zero base delay, a cap below the base, no jitter, no budget.
fn retry_policies() -> impl appvsweb_testkit::Gen<Value = RetryPolicy> {
    gen::from_fn(|rng: &mut SimRng| RetryPolicy {
        max_attempts: rng.range(1, 6) as u32,
        base_delay_ms: rng.below(1_001),
        max_delay_ms: rng.below(8_001),
        jitter: (rng.below(501) as f64) / 1_000.0,
        session_budget: rng.below(65) as u32,
    })
}

prop_test! {
    // ---------------- codecs ----------------

    fn percent_roundtrip(s in gen::printable_strings(0..=64)) {
        assert_eq!(codec::percent_decode(&codec::percent_encode(&s)), s);
    }

    fn base64_roundtrip(data in gen::bytes(0..=256)) {
        let enc = codec::base64_encode(&data);
        assert_eq!(codec::base64_decode(&enc).unwrap(), data.clone());
        let url = codec::base64url_encode(&data);
        assert_eq!(codec::base64_decode(&url).unwrap(), data);
    }

    fn hex_roundtrip(data in gen::bytes(0..=128)) {
        assert_eq!(codec::hex_decode(&codec::hex_encode(&data)).unwrap(), data);
    }

    fn form_roundtrip(
        pairs in gen::vecs_of(
            (gen::lowercase_strings(1..=8), gen::printable_strings(0..=24)),
            0..=8,
        )
    ) {
        let borrowed: Vec<(&str, &str)> =
            pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let encoded = codec::form_urlencode(&borrowed);
        let decoded = codec::form_urldecode(&encoded);
        assert_eq!(decoded, pairs);
    }

    // ---------------- hashes ----------------

    fn hashes_are_deterministic_and_sized(data in gen::bytes(0..=512)) {
        assert_eq!(hash::md5(&data), hash::md5(&data));
        assert_eq!(hash::sha1(&data), hash::sha1(&data));
        assert_eq!(hash::sha256(&data), hash::sha256(&data));
        assert_eq!(hash::md5_hex(&data).len(), 32);
        assert_eq!(hash::sha1_hex(&data).len(), 40);
        assert_eq!(hash::sha256_hex(&data).len(), 64);
    }

    fn hash_avalanche(data in gen::bytes(1..=128), idx in gen::usizes(0..=127)) {
        let mut flipped = data.clone();
        let i = idx % flipped.len();
        flipped[i] ^= 1;
        assert_ne!(hash::sha256(&data), hash::sha256(&flipped));
    }

    // ---------------- encodings ----------------

    fn rot13_is_involutive(s in gen::printable_strings(0..=64)) {
        assert_eq!(Encoding::Rot13.apply(&Encoding::Rot13.apply(&s)), s);
    }

    fn case_encodings_are_idempotent(s in gen::printable_strings(0..=64)) {
        let lower = Encoding::Lowercase.apply(&s);
        assert_eq!(Encoding::Lowercase.apply(&lower), lower.clone());
        let upper = Encoding::Uppercase.apply(&s);
        assert_eq!(Encoding::Uppercase.apply(&upper), upper);
    }

    // ---------------- URLs & wire ----------------

    fn url_display_parse_roundtrip(
        host in hosts(),
        path in paths(),
        key in gen::lowercase_strings(1..=6),
        value in gen::alnum_strings(0..=12),
    ) {
        let path = if path.is_empty() { "/".to_string() } else { path };
        let mut url = Url::new(appvsweb::httpsim::url::Scheme::Https, &host, path);
        url.push_query(&key, &value);
        let reparsed = Url::parse(&url.to_string()).unwrap();
        assert_eq!(reparsed, url);
    }

    fn wire_request_roundtrip(
        host in hosts(),
        body in gen::bytes(0..=128),
        secure in gen::bools(),
    ) {
        let scheme = if secure {
            appvsweb::httpsim::url::Scheme::Https
        } else {
            appvsweb::httpsim::url::Scheme::Http
        };
        let url = Url::new(scheme, &host, "/x");
        let mut req = Request::new(Method::Post, url);
        req.set_body(Body::binary(body, "application/octet-stream"));
        let bytes = wire::serialize_request(&req);
        let parsed = wire::parse_request(&bytes, secure).unwrap();
        assert_eq!(parsed.body.bytes, req.body.bytes);
        assert_eq!(parsed.url.host.as_str(), host.as_str());
        assert_eq!(parsed.url.is_plaintext(), !secure);
    }

    fn chunked_roundtrip(body in gen::bytes(0..=2048), chunk in gen::usizes(1..=512)) {
        let framed = wire::chunk_body(&body, chunk);
        assert_eq!(wire::dechunk_body(&framed).unwrap(), body);
    }

    // ---------------- stats ----------------

    fn cdf_is_monotone_and_bounded(samples in gen::vecs_of(gen::i64s(-1000..=999), 1..=64)) {
        let cdf = Cdf::new(samples.iter().map(|v| *v as f64).collect());
        let pts = cdf.points();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((pts.last().unwrap().1 - 100.0).abs() < 1e-9);
        assert!(cdf.at(f64::MAX) == 1.0);
        assert!(cdf.at(-1e18) == 0.0);
    }

    fn pdf_mass_sums_to_100(samples in gen::vecs_of(gen::i64s(-50..=49), 1..=64)) {
        let pdf = Pdf::new(&samples);
        let total: f64 = pdf.bins.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    fn jaccard_bounds_and_symmetry(
        a in gen::btree_sets_of(gen::u8s(0..=31), 0..=16),
        b in gen::btree_sets_of(gen::u8s(0..=31), 0..=16),
    ) {
        let j = jaccard(&a, &b);
        assert!((0.0..=1.0).contains(&j));
        assert_eq!(j, jaccard(&b, &a));
        if !a.is_empty() {
            assert_eq!(jaccard(&a, &a), 1.0);
        }
        let empty: BTreeSet<u8> = BTreeSet::new();
        assert_eq!(jaccard(&a, &empty), 0.0);
    }

    // ---------------- adblock ----------------

    fn host_anchor_matches_all_subdomains(
        domain in gen::lowercase_strings(3..=10),
        tld in gen::one_of(&["com", "net", "io"]),
        sub in gen::lowercase_strings(1..=8),
        path in gen::alnum_strings(0..=10),
    ) {
        let domain = format!("{domain}.{tld}");
        let mut engine = FilterEngine::new();
        engine.load_list(&format!("||{domain}^\n"));
        let bare = format!("https://{domain}/{path}");
        let with_sub = format!("https://{sub}.{domain}/{path}");
        let lookalike = format!("https://{domain}x.org/{path}");
        assert!(engine.is_ad_or_tracking(&bare, "origin.example"));
        assert!(engine.is_ad_or_tracking(&with_sub, "origin.example"));
        // A lookalike domain with a suffix must not match.
        assert!(!engine.is_ad_or_tracking(&lookalike, "origin.example"));
    }

    // ---------------- matcher ----------------

    fn matcher_finds_email_under_any_single_encoding(seed in gen::u64s(0..=499)) {
        let truth = GroundTruth::synthetic(seed);
        let matcher = GroundTruthMatcher::new(&truth);
        for enc in [
            Encoding::Plain,
            Encoding::Percent,
            Encoding::Base64,
            Encoding::Hex,
            Encoding::Md5,
        ] {
            let wire_form = enc.apply(&truth.email);
            let findings = matcher.scan(&format!("POST /t key={wire_form}"));
            assert!(
                findings.iter().any(|f| f.pii_type == appvsweb::pii::PiiType::Email),
                "encoding {enc:?} missed for seed {seed}"
            );
        }
    }

    fn matcher_never_fires_on_foreign_identity(seed in gen::u64s(0..=199)) {
        // PII from a DIFFERENT account must not match this matcher
        // (the controlled-experiment premise: we only detect OUR values).
        let ours = GroundTruth::synthetic(seed);
        let theirs = GroundTruth::synthetic(seed + 100_000);
        if ours.email == theirs.email {
            return;
        }
        let matcher = GroundTruthMatcher::new(&ours);
        let text = format!(
            "email={}&phone={}&name={}",
            theirs.email, theirs.phone, theirs.first_name
        );
        let hits: Vec<_> = matcher
            .scan(&text)
            .into_iter()
            // Gender is a one-letter flag shared by half of all accounts;
            // exclude it from the foreign-identity check.
            .filter(|f| f.pii_type != appvsweb::pii::PiiType::Gender)
            .filter(|f| f.pii_type != appvsweb::pii::PiiType::Name || text.contains(&f.value))
            .collect();
        for f in &hits {
            // Any remaining hit must be a genuine substring collision
            // (e.g. same first name drawn from the small name pool).
            assert!(
                text.to_ascii_lowercase().contains(&f.value.to_ascii_lowercase()),
                "spurious finding {f:?}"
            );
        }
    }

    // ---------------- retry policy ----------------

    fn backoff_is_monotone_up_to_the_cap(policy in retry_policies()) {
        // With jitter stripped, successive backoffs never shrink and
        // never exceed the per-delay ceiling.
        let flat = RetryPolicy { jitter: 0.0, ..policy.clone() };
        let mut rng = SimRng::new(0).fork("props-retry-flat");
        let mut prev = 0u64;
        for attempt in 0..20 {
            let delay = flat.backoff_ms(attempt, &mut rng);
            assert!(delay <= flat.max_delay_ms, "delay {delay} above cap");
            assert!(delay >= prev, "backoff shrank: {prev} -> {delay}");
            prev = delay;
        }
    }

    fn jitter_stays_within_its_band(policy in retry_policies(), seed in gen::u64s(0..=999)) {
        // Jittered delays land in [base, base * (1 + jitter)], where base
        // is the deterministic capped-doubling floor.
        let mut rng = SimRng::new(seed).fork("props-retry-jitter");
        for attempt in 0..12 {
            let base = policy
                .base_delay_ms
                .saturating_mul(1u64 << attempt.min(16))
                .min(policy.max_delay_ms);
            let delay = policy.backoff_ms(attempt, &mut rng);
            assert!(delay >= base, "jitter may only add delay");
            assert!(
                delay <= base + (base as f64 * policy.jitter) as u64,
                "delay {delay} beyond the jitter band of base {base}"
            );
        }
    }

    fn backoff_without_jitter_never_draws_from_the_stream(policy in retry_policies()) {
        // The golden-path guarantee behind FaultPlan::none() determinism:
        // a jitter-free policy must not consume RNG state.
        let flat = RetryPolicy { jitter: 0.0, ..policy.clone() };
        let mut a = SimRng::new(7).fork("props-retry-stream");
        let mut b = SimRng::new(7).fork("props-retry-stream");
        for attempt in 0..8 {
            let _ = flat.backoff_ms(attempt, &mut a);
        }
        assert_eq!(a.next_u64(), b.next_u64(), "stream advanced without jitter");
    }

    // ---------------- compression & totality ----------------

    fn deflate_inflate_roundtrip(data in gen::bytes(0..=4096)) {
        use appvsweb::httpsim::compress::{deflate, inflate};
        assert_eq!(inflate(&deflate(&data)).unwrap(), data);
    }

    fn gzip_roundtrip_prop(data in gen::bytes(0..=2048)) {
        use appvsweb::httpsim::compress::{gzip_compress, gzip_decompress};
        assert_eq!(gzip_decompress(&gzip_compress(&data)).unwrap(), data);
    }

    fn inflate_never_panics_on_garbage(data in gen::bytes(0..=512)) {
        // Totality: arbitrary bytes must yield Ok or Err, never a panic.
        let _ = appvsweb::httpsim::compress::inflate(&data);
        let _ = appvsweb::httpsim::compress::gzip_decompress(&data);
    }

    fn wire_parser_never_panics(data in gen::bytes(0..=512)) {
        let _ = wire::parse_request(&data, true);
        let _ = wire::parse_request(&data, false);
        let _ = wire::parse_response(&data);
    }

    fn adblock_parser_never_panics(line in gen::printable_strings(0..=80)) {
        let _ = appvsweb::adblock::filter::parse_line(&line);
    }

    fn url_parser_never_panics(s in gen::printable_strings(0..=120)) {
        let _ = Url::parse(&s);
        let _ = Url::parse(&format!("https://{s}"));
    }

    // ---------------- analyzer totality ----------------

    fn analyze_trace_is_total_on_adversarial_transactions(
        host in hosts(),
        path in gen::printable_strings(0..=36),
        body in gen::bytes(0..=512),
        plaintext in gen::bools(),
        gzip_header in gen::bools(),
    ) {
        // Arbitrary transaction content must never panic the analyzer,
        // and its accounting must stay internally consistent.
        use appvsweb::adblock::Categorizer;
        use appvsweb::analysis::analyze_trace;
        use appvsweb::mitm::{HttpTransaction, Trace};
        use appvsweb::netsim::{ConnectionStats, Os, SimTime};
        use appvsweb::pii::CombinedDetector;
        use appvsweb::services::{Catalog, Medium};

        let scheme = if plaintext { "http" } else { "https" };
        let clean_path: String = path
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '#' && *c != '?')
            .collect();
        let url = match Url::parse(&format!("{scheme}://{host}/{clean_path}")) {
            Ok(u) => u,
            Err(_) => return,
        };
        let mut req = Request::new(Method::Post, url);
        req.set_body(Body::binary(body, "application/octet-stream"));
        if gzip_header {
            // A gzip header over NON-gzip bytes: the inflating scanner
            // must fall back gracefully.
            req.headers.set("Content-Encoding", "gzip");
        }
        let mut trace = Trace::new();
        trace.connections.push(appvsweb::mitm::ConnectionRecord {
            id: 1,
            host: host.clone(),
            port: if plaintext { 80 } else { 443 },
            tls: !plaintext,
            decrypted: true,
            opaque_reason: None,
            opened_at: SimTime(0),
            closed_at: None,
            stats: ConnectionStats::default(),
            busy_ms: 0,
            transactions: 1,
            error: None,
        });
        trace.transactions.push(HttpTransaction {
            connection_id: 1,
            host: host.clone(),
            plaintext,
            at: SimTime(0),
            request: req,
            response: appvsweb::httpsim::Response::ok(Body::text("ok")),
            partial: false,
        });

        let catalog = Catalog::paper();
        let spec = catalog.get("yelp").unwrap();
        let truth = GroundTruth::synthetic(1);
        let detector = CombinedDetector::new(&truth, None);
        let categorizer = Categorizer::bundled(spec.first_party);
        let cell = analyze_trace(&trace, spec, Os::Android, Medium::App, &detector, &categorizer);
        assert!(cell.aa_flows <= cell.total_flows);
        assert!(cell.leak_domains.len() >= usize::from(!cell.leaks.is_empty()));
        for t in &cell.leaked_types {
            assert!(cell.per_type.contains_key(t));
        }
    }
}
