//! Golden snapshot of the 10k-user population report.
//!
//! The population report is a pure function of `(study config, campaign
//! config)` — so the full rendering (Tables 3–5 at population scale
//! plus the Figure 2–7 CDF summaries) is pinned byte-for-byte against a
//! committed snapshot, and the underlying report must be byte-identical
//! at 1, 2, and 8 workers. Any drift in the user sampler, the ingest
//! scaling model, the sketches, or the reduction tree shows up here as
//! a diff.
//!
//! Regenerate after an intentional model change:
//!
//! ```bash
//! REGEN_GOLDEN=1 cargo test --test population_golden
//! ```

use appvsweb::analysis::population::render_population_report;
use appvsweb::analysis::{PopulationReport, Study};
use appvsweb::core::study::run_study;
use appvsweb::population::{run_campaign_on, CampaignConfig};
use appvsweb_testkit::fixtures::quick_study_config;
use std::path::PathBuf;
use std::sync::OnceLock;

/// The quick base study, measured once and shared by every test in
/// this binary.
fn base_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| run_study(&quick_study_config()))
}

fn campaign(workers: usize) -> PopulationReport {
    run_campaign_on(
        base_study(),
        &CampaignConfig {
            users: 10_000,
            shards: 64,
            workers,
            seed: 2016,
        },
    )
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

#[test]
fn population_report_matches_committed_snapshot() {
    let report = campaign(4);
    let text = render_population_report(&report) + "\n";
    let path = golden_path("population_10k.txt");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &text).expect("write golden snapshot");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        text, committed,
        "population report drifted from the committed snapshot; if the \
         model change is intentional, regenerate with REGEN_GOLDEN=1"
    );
}

#[test]
fn population_report_is_byte_identical_across_worker_counts() {
    let single = appvsweb::json::encode(&campaign(1));
    for workers in [2, 8] {
        assert_eq!(
            single,
            appvsweb::json::encode(&campaign(workers)),
            "{workers} workers must reproduce the 1-worker report byte for byte"
        );
    }
}

#[test]
fn population_report_is_plausible_at_scale() {
    // Sanity floor under the snapshot: the 10k campaign exercises the
    // whole catalog and stays in the sketches' exact regime.
    let report = campaign(4);
    let agg = &report.aggregate;
    assert_eq!(agg.users, 10_000);
    assert!(agg.sessions > agg.users, "multiple sessions per user");
    assert!(agg.users_leaking > 0);
    assert!(agg.users_leaking <= agg.users);
    assert!(agg.is_exact(), "10k users must not leave the exact regime");
    assert!(!agg.figures.is_empty());
    assert!(report.peak_state_bytes > 0);
}
