//! Determinism regression and golden-snapshot tests for the canonical
//! seed-2016 study.
//!
//! The workspace's reproducibility contract is end-to-end: the full
//! 4-minute, 196-cell campaign must serialize to byte-identical JSON on
//! every run and on every worker count, and its headline aggregates must
//! match the numbers recorded in `EXPERIMENTS.md`.

use appvsweb::analysis::{tables, Study};
use appvsweb::core::{dataset, run_study, StudyConfig};
use appvsweb::services::Medium;
use appvsweb_testkit::fixtures::canonical_study;

/// The canonical study (seed 2016, 4 simulated minutes, ReCon on),
/// computed once per process by the testkit fixture and shared across
/// the tests in this binary.
fn canonical() -> &'static Study {
    canonical_study()
}

#[test]
fn full_study_is_deterministic_across_runs() {
    let first = dataset::to_json(canonical());
    let second = dataset::to_json(&run_study(&StudyConfig::default()));
    assert_eq!(
        first, second,
        "two default-config runs must serialize byte-identically"
    );
}

#[test]
fn parallel_and_single_thread_studies_agree() {
    let single = run_study(&StudyConfig {
        workers: 1,
        ..Default::default()
    });
    assert_eq!(
        dataset::to_json(canonical()),
        dataset::to_json(&single),
        "worker count must not affect the result"
    );
}

#[test]
fn json_roundtrip_is_a_fixed_point() {
    let encoded = dataset::to_json(canonical());
    let reparsed = dataset::from_json(&encoded).expect("study JSON parses back");
    assert_eq!(
        dataset::to_json(&reparsed),
        encoded,
        "serialize -> parse -> re-serialize must be a fixed point"
    );
}

#[test]
fn golden_headline_aggregates_match_experiments_md() {
    let study = canonical();
    assert_eq!(
        study.cells.len(),
        196,
        "48 Android + 50 iOS services x 2 media"
    );

    // Leak rates from Table 1, rounded to one decimal place, as recorded
    // in EXPERIMENTS.md.
    let t1 = tables::table1(study);
    let pct = |group: &str, medium| {
        let row = t1
            .rows
            .iter()
            .find(|r| r.group == group && r.medium == medium)
            .unwrap_or_else(|| panic!("missing Table 1 row {group}"));
        (row.pct_leaking * 1000.0).round() / 10.0
    };
    assert_eq!(
        pct("All", Medium::App),
        92.0,
        "app leak rate (paper: 92.0%)"
    );
    assert_eq!(
        pct("All", Medium::Web),
        74.0,
        "web leak rate (paper reports 78.0%)"
    );
    assert_eq!(pct("Android", Medium::Web), 53.1, "Android web leak rate");
    assert_eq!(pct("iOS", Medium::Web), 75.5, "iOS web leak rate");
}
