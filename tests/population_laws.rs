//! Property tests for the population merge algebra.
//!
//! Everything a shard aggregates must be a commutative-monoid
//! homomorphism of stream concatenation — that is the entire basis of
//! the campaign's "any worker count, byte-identical report" contract.
//! These properties pin the laws the reduction tree relies on:
//!
//! * merge is **commutative** and (in the exact regime) **associative**,
//!   up to byte-identical serialization,
//! * the empty state is a two-sided **identity**,
//! * `merge(a, b)` equals sequential ingestion of both streams,
//! * and the laws survive the *real* ingest path: campaigns over
//!   studies measured under arbitrary panic-free fault plans still
//!   produce byte-identical reports at 1/2/8 workers and under any
//!   shard partitioning.

use appvsweb::analysis::{PopulationAggregate, QuantileSketch, Study, TopKSketch};
use appvsweb::core::study::run_cell;
use appvsweb::netsim::{FaultPlan, Os, SimRng};
use appvsweb::population::{run_campaign_on, CampaignConfig};
use appvsweb::services::{Catalog, Medium};
use appvsweb_testkit::fixtures::{fault_plans, quick_study_config_with};
use appvsweb_testkit::{check, check_with, gen, PropConfig};

fn encode<T: appvsweb::json::ToJson>(value: &T) -> String {
    appvsweb::json::encode(value)
}

// ---------------------------------------------------------------------
// Quantile sketch laws
// ---------------------------------------------------------------------

/// Generator of sample streams with the full input zoo: positive,
/// negative, zero, subnormal-small, and non-finite values.
fn sample_streams() -> impl gen::Gen<Value = Vec<f64>> {
    gen::from_fn(|rng: &mut SimRng| {
        let len = rng.below(60) as usize;
        (0..len)
            .map(|_| match rng.below(8) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::NAN,
                3 => f64::INFINITY,
                4 => -(rng.below(1_000_000) as f64) / 3.0,
                5 => 1e-12 * rng.unit(),
                _ => rng.unit() * 2e6 - 1e5,
            })
            .collect()
    })
}

fn sketch_of(stream: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in stream {
        s.add(v);
    }
    s
}

#[test]
fn quantile_merge_is_a_stream_homomorphism() {
    let streams = (sample_streams(), sample_streams());
    check("quantile merge laws", &streams, |(xs, ys)| {
        let a = sketch_of(xs);
        let b = sketch_of(ys);

        // merge == sequential ingestion of the concatenated stream.
        let mut merged = a.clone();
        merged.merge(&b);
        let both: Vec<f64> = xs.iter().chain(ys).copied().collect();
        assert_eq!(encode(&merged), encode(&sketch_of(&both)));

        // Commutative, byte for byte.
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(encode(&merged), encode(&flipped));

        // Empty identity, both sides.
        let mut left = QuantileSketch::new();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&QuantileSketch::new());
        assert_eq!(encode(&left), encode(&a));
        assert_eq!(encode(&right), encode(&a));
    });
}

#[test]
fn quantile_merge_is_associative() {
    let streams = (sample_streams(), sample_streams(), sample_streams());
    check("quantile merge associativity", &streams, |(xs, ys, zs)| {
        let (a, b, c) = (sketch_of(xs), sketch_of(ys), sketch_of(zs));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(encode(&ab_c), encode(&a_bc));
    });
}

// ---------------------------------------------------------------------
// Top-k sketch laws
// ---------------------------------------------------------------------

/// Generator of `(key, count)` streams over a small key universe, so
/// collisions (the interesting case) are common.
fn key_streams() -> impl gen::Gen<Value = Vec<(String, u64)>> {
    gen::from_fn(|rng: &mut SimRng| {
        let len = rng.below(40) as usize;
        (0..len)
            .map(|_| (format!("org{}", rng.below(10)), 1 + rng.below(50)))
            .collect()
    })
}

fn topk_of(stream: &[(String, u64)], capacity: u32) -> TopKSketch {
    let mut t = TopKSketch::with_capacity(capacity);
    for (k, n) in stream {
        t.add(k, *n);
    }
    t
}

#[test]
fn topk_merge_laws_hold_exactly_in_the_unbounded_regime() {
    let streams = (key_streams(), key_streams(), key_streams());
    check("topk exact merge laws", &streams, |(xs, ys, zs)| {
        let (a, b, c) = (topk_of(xs, 0), topk_of(ys, 0), topk_of(zs, 0));

        // merge == sequential ingestion.
        let mut merged = a.clone();
        merged.merge(&b);
        let both: Vec<(String, u64)> = xs.iter().chain(ys).cloned().collect();
        assert_eq!(encode(&merged), encode(&topk_of(&both, 0)));
        assert!(merged.is_exact());

        // Commutative.
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(encode(&merged), encode(&flipped));

        // Associative.
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(encode(&ab_c), encode(&a_bc));

        // Empty identity, both sides (Default has capacity 0).
        let mut left = TopKSketch::default();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&TopKSketch::default());
        assert_eq!(encode(&left), encode(&a));
        assert_eq!(encode(&right), encode(&a));
    });
}

#[test]
fn topk_bounded_merges_stay_commutative_and_conserve_mass() {
    // Above capacity the sketch deliberately trades associativity for
    // bounded memory — but commutativity, the capacity bound, and the
    // dropped-mass ledger must survive arbitrary eviction pressure.
    let inputs = (key_streams(), key_streams(), gen::u64s(1..=5));
    check("topk bounded merge laws", &inputs, |(xs, ys, cap)| {
        let capacity = *cap as u32;
        let a = topk_of(xs, capacity);
        let b = topk_of(ys, capacity);
        let ingested: u64 = xs.iter().chain(ys).map(|(_, n)| n).sum();

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(encode(&ab), encode(&ba), "bounded merge must commute");
        assert!(ab.entries.len() <= capacity as usize);
        assert_eq!(
            ab.total() + ab.dropped,
            ingested,
            "every ingested count is either retained or accounted as dropped"
        );
    });
}

// ---------------------------------------------------------------------
// Aggregate laws through the real ingest path, under chaos
// ---------------------------------------------------------------------

/// Measure a small real study (two services, both media, one OS) under
/// a fault plan. `fault_plans()` holds `cell_panic` at zero, so every
/// cell completes — the panic-free chaos regime of the issue spec.
fn chaos_study(faults: FaultPlan) -> Study {
    let catalog = Catalog::paper();
    let cfg = quick_study_config_with(faults);
    let mut cells = Vec::new();
    for id in ["weather-channel", "bbc-news"] {
        let spec = catalog.get(id).expect("catalog service");
        for medium in Medium::BOTH {
            cells.push(run_cell(spec, Os::Android, medium, &cfg, None));
        }
    }
    Study {
        cells,
        health: Default::default(),
    }
}

#[test]
fn campaign_laws_survive_arbitrary_panic_free_fault_plans() {
    // A handful of generated plans: each study measurement is a real
    // four-cell simulator run, so the case count stays small while the
    // shrinker still has structure to work with on failure.
    let cfg = PropConfig {
        cases: 3,
        ..PropConfig::default()
    };
    check_with(&cfg, "campaign laws under chaos", &fault_plans(), |plan| {
        let study = chaos_study(plan.clone());
        let base = CampaignConfig {
            users: 200,
            shards: 8,
            workers: 1,
            seed: 2016,
        };
        let one = run_campaign_on(&study, &base);

        // Worker invariance through the whole scheduler + reduction tree.
        for workers in [2, 8] {
            let other = run_campaign_on(
                &study,
                &CampaignConfig {
                    workers,
                    ..base.clone()
                },
            );
            assert_eq!(
                encode(&one),
                encode(&other),
                "campaign must be byte-identical at {workers} workers"
            );
        }

        // Shard partitioning is invisible: the end-to-end merge law.
        let single_shard = run_campaign_on(
            &study,
            &CampaignConfig {
                shards: 1,
                ..base.clone()
            },
        );
        assert_eq!(encode(&one.aggregate), encode(&single_shard.aggregate));

        // The aggregate stayed in the sketches' exact regime.
        assert!(one.aggregate.is_exact());
        assert_eq!(one.aggregate.users, base.users);
    });
}

#[test]
fn aggregate_merge_laws_hold_on_real_campaign_states() {
    // Aggregates built by the real ingest path (distinct populations
    // via distinct seeds) form the same commutative monoid the sketch
    // fields do.
    let study = chaos_study(FaultPlan::none());
    let agg_for = |seed: u64| {
        run_campaign_on(
            &study,
            &CampaignConfig {
                users: 150,
                shards: 4,
                workers: 2,
                seed,
            },
        )
        .aggregate
    };
    let (a, b, c) = (agg_for(1), agg_for(2), agg_for(3));

    // Commutative.
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(encode(&ab), encode(&ba));

    // Associative.
    let mut ab_c = ab.clone();
    ab_c.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    assert_eq!(encode(&ab_c), encode(&a_bc));

    // Identity, both sides.
    let mut left = PopulationAggregate::new();
    left.merge(&a);
    let mut right = a.clone();
    right.merge(&PopulationAggregate::new());
    assert_eq!(encode(&left), encode(&a));
    assert_eq!(encode(&right), encode(&a));

    // The merge really combined both populations.
    assert_eq!(ab.users, a.users + b.users);
    assert_eq!(ab.sessions, a.sessions + b.sessions);
}

#[test]
fn shard_state_memory_is_constant_in_user_count() {
    // The constant-memory acceptance criterion, as a test: 16x the
    // users must not grow the peak shard state (sketches only ever add
    // buckets/keys from the fixed cell universe).
    let study = chaos_study(FaultPlan::none());
    let peak = |users: u64| {
        run_campaign_on(
            &study,
            &CampaignConfig {
                users,
                shards: 4,
                workers: 2,
                seed: 7,
            },
        )
        .peak_state_bytes
    };
    let small = peak(500);
    let large = peak(8_000);
    assert!(small > 0);
    assert!(
        large <= small * 2,
        "16x users must not grow shard state: {small} -> {large} bytes"
    );
}
