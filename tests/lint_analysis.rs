//! Workspace-level tests for the interprocedural analyzer: determinism
//! across worker counts and cache states, seeded synthetic leaks for
//! each pass (T1 / R1x / D3x), and the `lint:allow` edge cases.
//!
//! These run the *real* workspace through the public API (the same code
//! path as `repro lint --json`), so "byte-identical" here means exactly
//! what CI relies on.

use appvsweb_lint::{
    analyze_files, analyze_files_with, collect_workspace, AnalysisOptions, Report, SourceFile,
};
use std::path::{Path, PathBuf};

fn workspace_files() -> Vec<SourceFile> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    collect_workspace(root).expect("workspace readable")
}

fn report_json(report: &Report) -> String {
    appvsweb::json::encode_pretty(report)
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lint-it-{tag}-{}", std::process::id()))
}

fn files(entries: &[(&str, &str)]) -> Vec<SourceFile> {
    entries
        .iter()
        .map(|(p, s)| SourceFile {
            path: p.to_string(),
            text: s.to_string(),
        })
        .collect()
}

// ----------------------------------------------------------------------
// Determinism
// ----------------------------------------------------------------------

#[test]
fn workspace_report_is_byte_identical_across_workers_and_repeats() {
    let files = workspace_files();
    let no_cache = |workers| AnalysisOptions {
        workers,
        cache_dir: None,
    };
    let one = report_json(&analyze_files_with(&files, &no_cache(1)));
    let one_again = report_json(&analyze_files_with(&files, &no_cache(1)));
    let two = report_json(&analyze_files_with(&files, &no_cache(2)));
    let eight = report_json(&analyze_files_with(&files, &no_cache(8)));
    assert_eq!(one, one_again, "repeat runs must be byte-identical");
    assert_eq!(one, two, "2 workers changed the report");
    assert_eq!(one, eight, "8 workers changed the report");
}

#[test]
fn cache_cold_and_warm_runs_are_byte_identical() {
    let files = workspace_files();
    let dir = temp_dir("warmth");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = AnalysisOptions {
        workers: 2,
        cache_dir: Some(dir.clone()),
    };
    let cold = report_json(&analyze_files_with(&files, &opts));
    let cached: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir created")
        .collect();
    assert_eq!(cached.len(), files.len(), "one cache entry per file");
    let warm = report_json(&analyze_files_with(&files, &opts));
    let uncached = report_json(&analyze_files_with(
        &files,
        &AnalysisOptions {
            workers: 1,
            cache_dir: None,
        },
    ));
    assert_eq!(cold, warm, "warm run diverged from cold run");
    assert_eq!(cold, uncached, "cached run diverged from uncached run");
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Seeded synthetic leaks: each pass must catch its planted violation.
// ----------------------------------------------------------------------

#[test]
fn seeded_pii_flow_around_mitm_is_caught() {
    // A PII carrier that serializes through a helper instead of the
    // audited mitm recorder — T1 must flag the carrier, not the clean
    // sibling that goes through mitm.
    let report = analyze_files(&files(&[
        (
            "crates/pii/src/profile.rs",
            "pub struct GroundTruth { pub email: String }\n",
        ),
        (
            "crates/json/src/lib.rs",
            "pub fn encode(_v: &str) -> String { String::new() }\n",
        ),
        (
            "crates/mitm/src/har.rs",
            "pub fn record(v: &str) { appvsweb_json::encode(v); }\n",
        ),
        (
            "crates/demo/src/lib.rs",
            "use appvsweb_pii::profile::GroundTruth;\n\
             pub fn exfil(truth: &GroundTruth) { relay(&truth.email); }\n\
             fn relay(v: &str) { appvsweb_json::encode(v); }\n\
             pub fn audited(truth: &GroundTruth) { appvsweb_mitm::har::record(&truth.email); }\n",
        ),
    ]));
    let t1: Vec<_> = report.findings.iter().filter(|f| f.rule == "T1").collect();
    assert_eq!(
        t1.len(),
        1,
        "exactly the planted leak: {:?}",
        report.findings
    );
    assert_eq!(t1[0].path, "crates/demo/src/lib.rs");
    assert!(t1[0].message.contains("exfil"), "{}", t1[0].message);
}

#[test]
fn seeded_unwrap_under_serve_runner_is_caught() {
    // An unwrap three calls below the worker loop — R1x must follow the
    // chain; the same unwrap behind catch_unwind must not fire.
    let report = analyze_files(&files(&[
        (
            "crates/serve/src/runner.rs",
            "pub fn supervise() { crate::exec::step(); crate::exec::shielded(); }\n",
        ),
        (
            "crates/serve/src/exec.rs",
            "pub fn step() { inner() }\n\
             fn inner() { parse_header() }\n\
             fn parse_header() { let v: Vec<u8> = Vec::new(); v.first().unwrap(); }\n\
             pub fn shielded() { let _ = std::panic::catch_unwind(|| absorbed()); }\n\
             fn absorbed() { panic!(\"contained\") }\n",
        ),
    ]));
    let r1x: Vec<_> = report.findings.iter().filter(|f| f.rule == "R1x").collect();
    assert_eq!(
        r1x.len(),
        1,
        "exactly the planted panic: {:?}",
        report.findings
    );
    assert!(
        r1x[0].message.contains("parse_header"),
        "{}",
        r1x[0].message
    );
    assert!(r1x[0].message.contains("supervise"), "{}", r1x[0].message);
    // The file-local R1 rule also sees the raw unwrap sites — only the
    // *reachable* one may carry the R1x finding.
    assert!(!r1x.iter().any(|f| f.message.contains("absorbed")));
}

#[test]
fn seeded_duplicate_fork_label_is_caught() {
    // The same rng_labels constant forked from two different scopes —
    // D3x must flag the second scope in path order.
    let report = analyze_files(&files(&[
        (
            "crates/alpha/src/lib.rs",
            "pub fn seed_world(r: &mut SimRng) { r.fork(rng_labels::WORLD); }\n",
        ),
        (
            "crates/beta/src/lib.rs",
            "pub fn reseed(r: &mut SimRng) { r.fork(rng_labels::WORLD); }\n",
        ),
    ]));
    let d3x: Vec<_> = report.findings.iter().filter(|f| f.rule == "D3x").collect();
    assert_eq!(
        d3x.len(),
        1,
        "exactly the second scope: {:?}",
        report.findings
    );
    assert_eq!(d3x[0].path, "crates/beta/src/lib.rs");
    assert!(d3x[0].message.contains("WORLD"), "{}", d3x[0].message);
}

// ----------------------------------------------------------------------
// lint:allow edge cases
// ----------------------------------------------------------------------

#[test]
fn allow_on_the_last_line_of_a_file_applies() {
    // Annotation and violation share the final line; no trailing newline.
    let report = analyze_files(&files(&[(
        "crates/x/src/lib.rs",
        "fn f(v: Option<u8>) -> u8 { v.unwrap() } // lint:allow(R1) reviewed: caller guarantees Some",
    )]));
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.allows, 1);
    assert!(report
        .suppressed
        .iter()
        .any(|rc| rc.rule == "R1" && rc.count == 1));
}

#[test]
fn one_annotation_can_name_multiple_rules() {
    let report = analyze_files(&files(&[(
        "crates/x/src/lib.rs",
        "// lint:allow(R1, D1) reviewed: bench-adjacent probe, panic acceptable\n\
         fn probe() -> u64 { let t = SystemTime::now(); t.elapsed().unwrap().as_secs() }\n",
    )]));
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let count = |rule: &str| {
        report
            .suppressed
            .iter()
            .find(|rc| rc.rule == rule)
            .map_or(0, |rc| rc.count)
    };
    assert_eq!(count("R1"), 1, "{:?}", report.suppressed);
    assert_eq!(count("D1"), 1, "{:?}", report.suppressed);
}

#[test]
fn malformed_annotations_are_findings_not_suppressions() {
    let report = analyze_files(&files(&[(
        "crates/x/src/lib.rs",
        "// lint:allow(R1)\n\
         fn a(v: Option<u8>) -> u8 { v.unwrap() }\n\
         // lint:allow(BOGUS) not a rule id\n\
         fn b(v: Option<u8>) -> u8 { v.unwrap() }\n\
         // lint:allow() no rules at all\n\
         fn c(v: Option<u8>) -> u8 { v.unwrap() }\n",
    )]));
    let lint: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "LINT")
        .collect();
    assert_eq!(lint.len(), 3, "{:?}", report.findings);
    // None of the malformed annotations suppressed anything: all three
    // unwraps are still findings.
    let r1 = report.findings.iter().filter(|f| f.rule == "R1").count();
    assert_eq!(r1, 3, "{:?}", report.findings);
    assert_eq!(report.allows, 0);
}

#[test]
fn allows_inside_macro_bodies_still_apply() {
    // The annotation miner works on the raw comment stream, so an allow
    // inside a macro_rules body covers the line below it even though the
    // item parser skips macro bodies wholesale.
    let report = analyze_files(&files(&[(
        "crates/x/src/lib.rs",
        "macro_rules! grab {\n\
             ($x:expr) => {\n\
                 // lint:allow(R1) reviewed: macro callers pass infallible exprs\n\
                 $x.unwrap()\n\
             };\n\
         }\n",
    )]));
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.allows, 1);
    assert!(report
        .suppressed
        .iter()
        .any(|rc| rc.rule == "R1" && rc.count == 1));
}
