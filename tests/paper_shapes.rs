//! Shape assertions against every table and figure of the paper.
//!
//! The reproduction targets the paper's *shapes* — who wins, by roughly
//! what factor, where crossovers fall — not its absolute 2016 values
//! (our substrate is a simulator, not the authors' testbed). Each test
//! here encodes one claim from the evaluation section with a tolerance
//! band; EXPERIMENTS.md records paper-vs-measured side by side.

use appvsweb::analysis::figures::{self, FigureId};
use appvsweb::analysis::{tables, Study};
use appvsweb::netsim::Os;
use appvsweb::pii::PiiType;
use appvsweb::services::Medium;
use appvsweb_testkit::fixtures::canonical_study;

/// The canonical full study, computed once per process by the testkit
/// fixture and shared across every test in this binary.
fn study() -> &'static Study {
    canonical_study()
}

fn table1_pct(group: &str, medium: Medium) -> f64 {
    tables::table1(study())
        .rows
        .iter()
        .find(|r| r.group == group && r.medium == medium)
        .map(|r| r.pct_leaking)
        .unwrap_or_else(|| panic!("missing Table 1 row {group}/{medium:?}"))
}

// ---------------------------------------------------------------- Fig 1a
#[test]
fn fig1a_web_contacts_more_aa_domains() {
    // Paper: 83% (Android) / 78% (iOS) of services contact more
    // third-parties via their Web site than their app.
    for os in [Os::Android, Os::Ios] {
        let frac = figures::cdf(study(), FigureId::AaDomains, os).fraction_negative();
        assert!(
            (0.70..=0.95).contains(&frac),
            "{os}: expected ~0.78-0.83 of services with web > app A&A domains, got {frac:.2}"
        );
    }
}

#[test]
fn fig1a_headline_disparities() {
    // Accuweather, BBC News, Starbucks: ≤4 A&A in-app, tens on the Web.
    for id in ["accuweather", "bbc-news", "starbucks"] {
        for os in [Os::Android, Os::Ios] {
            let app = study().cell(id, os, Medium::App).unwrap();
            let web = study().cell(id, os, Medium::Web).unwrap();
            assert!(
                app.aa_domains.len() <= 4,
                "{id} app contacts {} A&A domains (paper: ≤4)",
                app.aa_domains.len()
            );
            assert!(
                web.aa_domains.len() >= 10,
                "{id} web contacts {} A&A domains (paper: tens)",
                web.aa_domains.len()
            );
        }
    }
}

// ---------------------------------------------------------------- Fig 1b
#[test]
fn fig1b_web_opens_hundreds_more_flows() {
    // Paper: 73% Android / 80% iOS of services see "hundreds and
    // sometimes thousands" of extra TCP connections on the Web.
    for os in [Os::Android, Os::Ios] {
        let cdf = figures::cdf(study(), FigureId::AaFlows, os);
        assert!(
            cdf.fraction_negative() >= 0.70,
            "{os}: flows bias must favour web"
        );
        // The heavy tail reaches several-hundred extra connections.
        assert!(
            cdf.quantile(0.0) <= -500.0,
            "{os}: heaviest web excess should exceed 500 flows, got {}",
            cdf.quantile(0.0)
        );
    }
    // The three named heavy hitters produce the largest totals.
    for id in ["allrecipes", "bbc-news", "cnn-news"] {
        let web = study().cell(id, Os::Android, Medium::Web).unwrap();
        assert!(
            web.total_flows >= 700,
            "{id} web should trigger on the order of a thousand connections, got {}",
            web.total_flows
        );
    }
}

// ---------------------------------------------------------------- Fig 1c
#[test]
fn fig1c_web_consumes_more_aa_bytes() {
    for os in [Os::Android, Os::Ios] {
        let cdf = figures::cdf(study(), FigureId::AaBytes, os);
        assert!(
            cdf.fraction_negative() >= 0.70,
            "{os}: bytes bias must favour web"
        );
        // Paper x-range: several MB of extra web traffic, and a positive
        // tail (some apps out-consume their site).
        assert!(cdf.quantile(0.0) <= -1.0, "{os}: biggest web excess ≥ 1 MB");
        assert!(
            cdf.quantile(1.0) >= 0.5,
            "{os}: some app exceeds its site by ≥ 0.5 MB"
        );
    }
}

// ---------------------------------------------------------------- Fig 1d
#[test]
fn fig1d_slight_bias_toward_apps_leaking_to_more_domains() {
    for os in [Os::Android, Os::Ios] {
        let samples = figures::samples(study(), FigureId::LeakDomains, os);
        let positive = samples.iter().filter(|v| **v > 0.0).count() as f64;
        let negative = samples.iter().filter(|v| **v < 0.0).count() as f64;
        assert!(
            positive > negative,
            "{os}: apps should leak to more domains than web for more services \
             (pos {positive} vs neg {negative})"
        );
    }
}

// ---------------------------------------------------------------- Fig 1e
#[test]
fn fig1e_mode_plus_one_and_positive_bias() {
    // Paper: "the most common case is that the app version … leaks one
    // more type of distinct PII than the Web site".
    for os in [Os::Android, Os::Ios] {
        let pdf = figures::pdf_1e(study(), os);
        let mode = pdf.mode().expect("pdf has bins");
        assert!(
            (1..=2).contains(&mode),
            "{os}: modal (app-web) type difference should be +1, got {mode}"
        );
        assert!(
            pdf.positive_mass() >= 60.0,
            "{os}: strong bias toward apps leaking more types, got {:.0}%",
            pdf.positive_mass()
        );
    }
}

// ---------------------------------------------------------------- Fig 1f
#[test]
fn fig1f_majority_share_nothing() {
    // Paper: app and web versions "share nothing in common more than
    // half the time", and 80-90% of services share at most half.
    let android = figures::cdf(study(), FigureId::Jaccard, Os::Android);
    let ios = figures::cdf(study(), FigureId::Jaccard, Os::Ios);
    assert!(
        android.at(0.0) >= 0.50 || ios.at(0.0) >= 0.50,
        "at least one OS must show >50% zero-Jaccard (android {:.2}, ios {:.2})",
        android.at(0.0),
        ios.at(0.0)
    );
    assert!(android.at(0.0) >= 0.35 && ios.at(0.0) >= 0.35);
    for (os, cdf) in [(Os::Android, android), (Os::Ios, ios)] {
        assert!(
            (0.75..=1.0).contains(&cdf.at(0.5)),
            "{os}: 80-90% of services share ≤ half their leaked types, got {:.2}",
            cdf.at(0.5)
        );
    }
}

// ---------------------------------------------------------------- Table 1
#[test]
fn table1_leak_rates() {
    // Paper: 92% of apps leak vs 78% of Web versions (14% gap).
    let app = table1_pct("All", Medium::App);
    let web = table1_pct("All", Medium::Web);
    assert!(
        (0.85..=0.98).contains(&app),
        "app leak rate {app:.2} (paper 0.92)"
    );
    assert!(
        (0.65..=0.85).contains(&web),
        "web leak rate {web:.2} (paper 0.78)"
    );
    assert!(app > web, "apps must leak more often than web");

    // Paper: 24% fewer Web sites leak on Chrome/Android vs Safari/iOS
    // (52.1% vs 76%).
    let android_web = table1_pct("Android", Medium::Web);
    let ios_web = table1_pct("iOS", Medium::Web);
    assert!(
        ios_web - android_web >= 0.15,
        "iOS web leak rate ({ios_web:.2}) must exceed Android ({android_web:.2}) by ~24pp"
    );
}

#[test]
fn table1_identifier_matrix() {
    let t1 = tables::table1(study());
    let row = |group: &str, medium| {
        t1.rows
            .iter()
            .find(|r| r.group == group && r.medium == medium)
            .unwrap()
    };
    // Apps leak UID and device info; Web never does (the paper's
    // platform-structural finding).
    assert!(row("All", Medium::App)
        .leaked_types
        .contains(&PiiType::UniqueId));
    assert!(row("All", Medium::App)
        .leaked_types
        .contains(&PiiType::DeviceInfo));
    assert!(!row("All", Medium::Web)
        .leaked_types
        .contains(&PiiType::UniqueId));
    assert!(!row("All", Medium::Web)
        .leaked_types
        .contains(&PiiType::DeviceInfo));
    // Almost all groups leak location via some service.
    assert!(row("Weather", Medium::App)
        .leaked_types
        .contains(&PiiType::Location));
    assert!(row("Weather", Medium::Web)
        .leaked_types
        .contains(&PiiType::Location));
    // Travel leaks the widest variety (paper: Shopping and Travel).
    assert!(row("Travel", Medium::App).leaked_types.len() >= 6);
}

#[test]
fn table1_education_most_promiscuous() {
    // Paper: Education and Weather leak to the most domains per service.
    let t1 = tables::table1(study());
    let edu = t1
        .rows
        .iter()
        .find(|r| r.group == "Education" && r.medium == Medium::App)
        .unwrap();
    let all = t1
        .rows
        .iter()
        .find(|r| r.group == "All" && r.medium == Medium::App)
        .unwrap();
    assert!(
        edu.avg_leak_domains > all.avg_leak_domains,
        "Education apps ({:.1}) should beat the overall average ({:.1})",
        edu.avg_leak_domains,
        all.avg_leak_domains
    );
}

// ---------------------------------------------------------------- Table 2
#[test]
fn table2_anchor_rows() {
    let rows = tables::table2(study(), 20);
    let get = |org: &str| rows.iter().find(|r| r.organization == org);

    // Amobee: the most leaks from the fewest services (1).
    let amobee = get("amobee").expect("amobee in top-20");
    assert_eq!(amobee.services_app, 1);
    assert_eq!(amobee.services_web, 1);
    assert_eq!(
        rows[0].organization, "amobee",
        "amobee tops the total-leak ordering"
    );
    assert!(amobee.avg_leaks_app > 100.0 && amobee.avg_leaks_web > 10.0);

    // vrvm: 2 services, app-only.
    let vrvm = get("vrvm").expect("vrvm in top-20");
    assert_eq!((vrvm.services_app, vrvm.services_web), (2, 0));

    // groceryserver: exactly 1 service, app-only.
    let grocery = get("groceryserver").expect("groceryserver in top-20");
    assert_eq!((grocery.services_app, grocery.services_web), (1, 0));

    // Facebook: the most pervasively contacted domain across apps.
    let fb = get("facebook").expect("facebook in top-20");
    assert!(
        fb.services_app >= 30,
        "facebook should be embedded in most apps, got {}",
        fb.services_app
    );
    let ga = get("google-analytics").expect("GA in top-20");
    assert!(ga.services_app >= 30 && ga.services_web >= 40);
    // GA receives only ~2 leaks per service (init-only SDK).
    assert!(
        ga.avg_leaks_app <= 6.0,
        "GA app leaks {:.1} (paper 1.8)",
        ga.avg_leaks_app
    );
}

#[test]
fn table2_platform_specific_collectors() {
    // Paper: "YieldMo only collects PII from apps in our set of services";
    // cloudinary is the one web-only recipient.
    let study = study();
    let mut yieldmo_app = 0u64;
    let mut yieldmo_web = 0u64;
    let mut cloudinary_app = 0u64;
    let mut cloudinary_web = 0u64;
    for cell in &study.cells {
        for (domain, count) in &cell.per_domain_leaks {
            let target = match (domain.as_str(), cell.medium) {
                ("yieldmo.com", Medium::App) => &mut yieldmo_app,
                ("yieldmo.com", Medium::Web) => &mut yieldmo_web,
                ("cloudinary.com", Medium::App) => &mut cloudinary_app,
                ("cloudinary.com", Medium::Web) => &mut cloudinary_web,
                _ => continue,
            };
            *target += count;
        }
    }
    assert!(yieldmo_app > 0 && yieldmo_web == 0, "yieldmo is app-only");
    assert!(
        cloudinary_web > 0 && cloudinary_app == 0,
        "cloudinary is web-only"
    );
}

// ---------------------------------------------------------------- Table 3
#[test]
fn table3_marginals() {
    let rows = tables::table3(study());
    let get = |t: PiiType| rows.iter().find(|r| r.pii_type == t).unwrap();

    // UID: ~40 apps, zero web (paper: 40 / 0 / 0).
    let uid = get(PiiType::UniqueId);
    assert!(
        (36..=44).contains(&uid.services_app),
        "UID apps {}",
        uid.services_app
    );
    assert_eq!(uid.services_web, 0);
    assert_eq!(uid.services_both, 0);

    // Device Name: app-only (paper 15 / 0 / 0).
    let dev = get(PiiType::DeviceInfo);
    assert!((10..=20).contains(&dev.services_app));
    assert_eq!(dev.services_web, 0);

    // Location: most-leaked on both media (paper 30 / 21 / 26).
    let loc = get(PiiType::Location);
    assert!(
        (25..=35).contains(&loc.services_app),
        "Location apps {}",
        loc.services_app
    );
    assert!(
        (18..=30).contains(&loc.services_web),
        "Location webs {}",
        loc.services_web
    );
    assert!(loc.services_both >= 15);

    // Name leaks more often from web than app (paper 9 / 8 / 16).
    let name = get(PiiType::Name);
    assert!(name.services_web >= name.services_app);

    // Password: the §4.2 case studies (paper 4 / 2 / 3).
    let pw = get(PiiType::Password);
    assert_eq!(
        (pw.services_app, pw.services_both, pw.services_web),
        (4, 2, 3)
    );

    // Birthday: Priceline's web-side-only leak (paper 1 / 0 / 1).
    let b = get(PiiType::Birthday);
    assert_eq!((b.services_app, b.services_both, b.services_web), (1, 0, 1));
}

#[test]
fn password_case_studies() {
    // Grubhub → taplytics, JetBlue → usablenet, Food Network & NCAA →
    // Gigya; all over HTTPS to a third party.
    let cases = [
        ("grubhub", "taplytics.com"),
        ("jetblue", "usablenet.com"),
        ("food-network", "gigya.com"),
        ("ncaa-sports", "gigya.com"),
    ];
    for (service, sink) in cases {
        let cell = study().cell(service, Os::Android, Medium::App).unwrap();
        let pw = cell
            .per_type
            .get(&PiiType::Password)
            .unwrap_or_else(|| panic!("{service} app must leak its password"));
        assert!(
            pw.domains.contains(sink),
            "{service} password must reach {sink}, got {:?}",
            pw.domains
        );
        // All four travelled over HTTPS, not plaintext.
        assert!(cell
            .leaks
            .iter()
            .filter(|l| l.pii_type == PiiType::Password)
            .all(|l| !l.plaintext));
    }
}

#[test]
fn priceline_per_os_divergence() {
    // §4.2: Priceline's web leaks birthday+gender; neither app does, and
    // the two apps leak different PII from each other.
    let web = study().cell("priceline", Os::Ios, Medium::Web).unwrap();
    assert!(web.leaked_types.contains(&PiiType::Birthday));
    assert!(web.leaked_types.contains(&PiiType::Gender));
    let android = study().cell("priceline", Os::Android, Medium::App).unwrap();
    let ios = study().cell("priceline", Os::Ios, Medium::App).unwrap();
    for app in [android, ios] {
        assert!(!app.leaked_types.contains(&PiiType::Birthday));
        assert!(!app.leaked_types.contains(&PiiType::Gender));
    }
    assert_ne!(
        android.leaked_types, ios.leaked_types,
        "the two Priceline apps leak different PII per OS"
    );
}

#[test]
fn web_types_comparable_across_browsers() {
    // §4.2: "Web sites leak comparable types of PII regardless of whether
    // they are loaded in Chrome or Safari (with phone number being the
    // sole exception)" — at the aggregate level, the union of Web-leaked
    // types differs between the browsers by at most a couple of classes.
    use appvsweb::analysis::osdiff;
    let agg = osdiff::os_agreement(study(), Medium::Web);
    assert!(
        agg.services >= 45,
        "most services compared on both OSes, got {}",
        agg.services
    );
    let mut android_union = std::collections::BTreeSet::new();
    let mut ios_union = std::collections::BTreeSet::new();
    for c in osdiff::os_comparisons(study(), Medium::Web) {
        android_union.extend(c.android_types.iter().copied());
        ios_union.extend(c.ios_types.iter().copied());
    }
    let diff: Vec<_> = android_union.symmetric_difference(&ios_union).collect();
    assert!(
        diff.len() <= 2,
        "aggregate web type sets should nearly coincide across browsers, diff: {diff:?}"
    );
}

#[test]
fn apps_agree_more_across_oses_than_web_does() {
    // Apps share code and SDKs across OSes; Web divergence comes from the
    // pii_ios_only data-layer gap (the paper's Chrome/Safari gap).
    use appvsweb::analysis::osdiff;
    let app = osdiff::os_agreement(study(), Medium::App);
    let web = osdiff::os_agreement(study(), Medium::Web);
    assert!(
        app.identical_fraction > web.identical_fraction,
        "app OS-agreement ({:.2}) should exceed web ({:.2})",
        app.identical_fraction,
        web.identical_fraction
    );
}
