//! Golden-trace pinning for the observability journal.
//!
//! The journal's contract is the same as the dataset's: a pure function
//! of `(seed, config)`. These tests pin one quick-config cell per medium
//! against committed snapshots (any instrumentation drift — a site
//! added, removed, reordered, or reworded — shows up as a diff), and
//! prove the whole-campaign journal is byte-identical across worker
//! counts and repeated in-process runs.
//!
//! Regenerate the snapshots after an intentional instrumentation change:
//!
//! ```bash
//! REGEN_GOLDEN=1 cargo test --test trace_golden
//! ```

use appvsweb::core::study::{run_cell_journal, run_study, StudyConfig};
use appvsweb::netsim::Os;
use appvsweb::obs;
use appvsweb::services::{Catalog, Medium};
use appvsweb_testkit::fixtures::quick_study_config;
use std::path::PathBuf;
use std::sync::Mutex;

/// Journal capture is process-global; serialize the tests in this binary.
static LOCK: Mutex<()> = Mutex::new(());

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// Capture the journal of one quick-config weather-channel cell.
fn capture_cell(medium: Medium) -> obs::StudyJournal {
    let catalog = Catalog::paper();
    let spec = catalog.get("weather-channel").expect("catalog service");
    let cfg = quick_study_config();
    let (cell, journal) = run_cell_journal(spec, Os::Android, medium, &cfg, None);
    assert!(cell.is_some(), "fault-free quick cell must complete");
    journal
}

/// Compare a journal against its committed snapshot (or regenerate).
fn assert_matches_golden(journal: &obs::StudyJournal, file: &str) {
    let text = appvsweb::json::encode_pretty(journal) + "\n";
    let path = golden_path(file);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &text).expect("write golden snapshot");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        text, committed,
        "journal for {file} drifted from the committed snapshot; if the \
         instrumentation change is intentional, regenerate with REGEN_GOLDEN=1"
    );
}

#[test]
fn app_cell_journal_matches_committed_snapshot() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let journal = capture_cell(Medium::App);
    assert_eq!(
        journal.cells.len(),
        1,
        "recon-off cell captures one journal"
    );
    assert_matches_golden(&journal, "trace_weather_app.json");
}

#[test]
fn web_cell_journal_matches_committed_snapshot() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let journal = capture_cell(Medium::Web);
    assert_eq!(
        journal.cells.len(),
        1,
        "recon-off cell captures one journal"
    );
    assert_matches_golden(&journal, "trace_weather_web.json");
}

#[test]
fn campaign_journal_is_byte_identical_across_workers_and_runs() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let capture = |workers: usize| {
        let cfg = StudyConfig {
            workers,
            ..quick_study_config()
        };
        obs::capture_begin();
        run_study(&cfg);
        appvsweb::json::encode(&obs::capture_end())
    };
    let single = capture(1);
    assert!(!single.is_empty());
    assert_eq!(
        single,
        capture(2),
        "journal must not depend on worker interleaving (1 vs 2)"
    );
    assert_eq!(
        single,
        capture(8),
        "journal must not depend on worker interleaving (1 vs 8)"
    );
    // Repeat run in the same process: capture state fully resets.
    assert_eq!(single, capture(1), "repeated capture must be identical");
}
