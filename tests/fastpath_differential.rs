//! Differential reference-oracle suite for the hot-path rewrites.
//!
//! Every fast path introduced by the 5× optimization pass keeps its
//! pre-optimization twin compiled under `cfg(any(test, feature =
//! "reference"))`; this suite drives both sides with generated inputs
//! and asserts equality. The laws:
//!
//! * arithmetic wire lengths equal real serialized lengths, byte-exact
//!   (the MITM `bytes=` journal events are pinned by trace goldens)
//! * the zero-copy parsers agree with the eager-copy reference parsers
//!   on well-formed and malformed bytes alike, errors included
//! * the pre-filtered adblock engine returns the same [`Decision`] as
//!   the exhaustive linear reference walk, and the n-gram pre-filter
//!   never drops a matching rule (zero false negatives)
//! * pooled buffers come back scrubbed and the pool counters conserve
//! * batched RNG draws consume streams identically to sequential draws
//! * the compiled-dictionary cache returns matchers equivalent to a
//!   fresh build

use appvsweb::adblock::filter::{parse_line, ParsedLine};
use appvsweb::adblock::prefilter::Prefilter;
use appvsweb::adblock::{engine, FilterEngine, RequestInfo};
use appvsweb::httpsim::wire::{self, reference};
use appvsweb::httpsim::{compress, Body, Request, Response, StatusCode, Url};
use appvsweb::netsim::pool;
use appvsweb::pii::aho::{AhoCorasick, Match};
use appvsweb::pii::{cache, GroundTruth, GroundTruthMatcher};
use appvsweb_testkit::{gen, prop_test, Gen, SimRng};

// ---------------------------------------------------------- generators

/// Arbitrary-but-plausible HTTP requests: mixed methods, query pairs,
/// extra headers, and form/json/binary bodies.
fn requests() -> impl Gen<Value = Request> {
    gen::from_fn(|rng: &mut SimRng| {
        let host = ["api.example.com", "t.tracker.net", "x.y.co.uk"][rng.below(3) as usize];
        let path = ["/", "/v1/login", "/pixel", "/a/b/c"][rng.below(4) as usize];
        let url = Url::parse(&format!("https://{host}{path}?q={}", rng.below(1000))).unwrap();
        let mut req = match rng.below(3) {
            0 => Request::get(url),
            1 => Request::post(url, Body::form(&[("user", "jane"), ("id", "42")])),
            _ => Request::post(url, Body::json(r#"{"k":"v"}"#)),
        };
        if rng.chance(0.5) {
            req = req.with_user_agent("ExampleApp/3.2 (Android 4.4)");
        }
        if rng.chance(0.3) {
            req.headers.append("X-Extra", "1");
        }
        req
    })
}

/// Arbitrary responses, chunked and plain, across body-size boundaries
/// of the 1024-byte chunk framing.
fn responses() -> impl Gen<Value = Response> {
    gen::from_fn(|rng: &mut SimRng| {
        let mut resp = Response::new(StatusCode(
            [200u16, 204, 302, 404, 500][rng.below(5) as usize],
        ));
        let body_len = [0usize, 1, 37, 1023, 1024, 1025, 4096][rng.below(7) as usize];
        if body_len > 0 {
            resp.body = Body::binary(vec![b'x'; body_len], "application/octet-stream");
            resp.headers.set("Content-Type", "application/octet-stream");
        }
        if rng.chance(0.5) {
            resp.headers.set("Transfer-Encoding", "chunked");
        } else if body_len > 0 {
            resp.headers.set("Content-Length", body_len.to_string());
        }
        resp
    })
}

/// Raw message bytes: serialized requests/responses, optionally
/// corrupted with byte flips and truncation so the error paths of both
/// parser generations are exercised too.
fn wire_bytes() -> impl Gen<Value = Vec<u8>> {
    gen::from_fn(|rng: &mut SimRng| {
        let mut bytes = if rng.chance(0.5) {
            let mut fork = rng.fork("req");
            wire::serialize_request(&requests().generate(&mut fork))
        } else {
            let mut fork = rng.fork("resp");
            wire::serialize_response(&responses().generate(&mut fork))
        };
        if rng.chance(0.4) && !bytes.is_empty() {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= rng.below(255) as u8 + 1;
        }
        if rng.chance(0.3) {
            bytes.truncate(rng.below(bytes.len() as u64 + 1) as usize);
        }
        bytes
    })
}

/// EasyList-style network rule lines assembled from real syntax parts.
fn rule_lines() -> impl Gen<Value = String> {
    gen::from_fn(|rng: &mut SimRng| {
        let core = [
            "doubleclick.net",
            "ads.example.com",
            "/adserver/",
            "/banner/*/img",
            "track",
            "a^b",
            "xy",
        ][rng.below(7) as usize];
        let mut line = String::new();
        if rng.chance(0.2) {
            line.push_str("@@");
        }
        match rng.below(3) {
            0 => line.push_str("||"),
            1 => line.push('|'),
            _ => {}
        }
        line.push_str(core);
        if rng.chance(0.4) {
            line.push('^');
        }
        if rng.chance(0.3) {
            line.push_str("$third-party");
        }
        line
    })
}

/// URLs that sometimes embed rule tokens inside longer words (the
/// "ads/ inside loads/" trap) and sometimes miss entirely.
fn probe_urls() -> impl Gen<Value = String> {
    gen::from_fn(|rng: &mut SimRng| {
        let host = [
            "ads.example.com",
            "cdn.benign.org",
            "sub.doubleclick.net",
            "preloads.example.net",
        ][rng.below(4) as usize];
        let path = [
            "/adserver/v2/banner/9/img",
            "/downloads/file.js",
            "/pixel?track=1",
            "/",
            "/a%5Eb/xyz",
        ][rng.below(5) as usize];
        format!("https://{host}{path}")
    })
}

/// Short patterns over a tiny alphabet so overlaps, shared prefixes,
/// and failure-link chains all occur within a few generated cases.
fn small_alphabet_patterns() -> impl Gen<Value = Vec<Vec<u8>>> {
    gen::from_fn(|rng: &mut SimRng| {
        let n = 1 + rng.below(6) as usize;
        (0..n)
            .map(|_| {
                let len = rng.below(5) as usize; // empty patterns allowed
                (0..len)
                    .map(|_| b"abc"[rng.below(3) as usize])
                    .collect::<Vec<u8>>()
            })
            .collect()
    })
}

/// A quadratic-time oracle for [`AhoCorasick::find_all`]: check every
/// (pattern, end) pair by direct suffix comparison.
fn naive_find_all(patterns: &[Vec<u8>], haystack: &[u8]) -> Vec<Match> {
    let mut out = Vec::new();
    for end in 1..=haystack.len() {
        for (id, pat) in patterns.iter().enumerate() {
            if !pat.is_empty() && haystack[..end].ends_with(pat) {
                out.push(Match {
                    pattern: id as u32,
                    end,
                });
            }
        }
    }
    out
}

prop_test! {
    // ------------------------------------------------ wire arithmetic

    fn request_wire_len_equals_serialized_len(req in requests()) {
        assert_eq!(wire::request_wire_len(&req), wire::serialize_request(&req).len());
        assert_eq!(req.wire_len(), wire::serialize_request(&req).len());
    }

    fn response_wire_len_equals_serialized_len(resp in responses()) {
        assert_eq!(wire::response_wire_len(&resp), wire::serialize_response(&resp).len());
        assert_eq!(resp.wire_len(), wire::serialize_response(&resp).len());
    }

    fn response_serializer_matches_reference(resp in responses()) {
        assert_eq!(
            wire::serialize_response(&resp),
            reference::serialize_response_reference(&resp),
        );
    }

    // --------------------------------------------- zero-copy parsing

    fn zero_copy_request_parse_matches_reference(bytes in wire_bytes()) {
        for secure in [false, true] {
            assert_eq!(
                wire::parse_request(&bytes, secure),
                reference::parse_request_reference(&bytes, secure),
                "request parse diverged (secure={secure})"
            );
        }
    }

    fn zero_copy_response_parse_matches_reference(bytes in wire_bytes()) {
        assert_eq!(
            wire::parse_response(&bytes),
            reference::parse_response_reference(&bytes),
            "response parse diverged"
        );
    }

    fn roundtrip_survives_both_parsers(req in requests()) {
        let bytes = wire::serialize_request(&req);
        let fast = wire::parse_request(&bytes, true).expect("fast parse");
        let slow = reference::parse_request_reference(&bytes, true).expect("reference parse");
        assert_eq!(fast, slow);
        assert_eq!(fast.url.host, req.url.host);
    }

    // ------------------------------------------------------- adblock

    fn prefiltered_engine_matches_reference_walk(
        lines in gen::vecs_of(rule_lines(), 1..=12),
        url in probe_urls(),
        third_party in gen::bools(),
    ) {
        let mut engine = FilterEngine::new();
        engine.load_list(&lines.join("\n"));
        let origin = if third_party { "origin.example.com" } else { "ads.example.com" };
        let req = RequestInfo { url: &url, origin_host: origin, resource_type: None };
        assert_eq!(
            engine.check(&req),
            engine.check_reference(&req),
            "decision diverged for {url:?} over {lines:?}"
        );
    }

    fn prefilter_never_drops_a_matching_rule(line in rule_lines(), url in probe_urls()) {
        let ParsedLine::Network(filter) = parse_line(&line) else { return; };
        let lowered = url.to_ascii_lowercase();
        let pre = Prefilter::build(std::slice::from_ref(&filter));
        if filter.pattern_matches(&lowered) {
            assert_eq!(
                pre.candidates(&lowered),
                vec![0],
                "zero-false-negative law broken: {:?} matches {lowered:?} but was pre-filtered out",
                filter.raw
            );
        }
    }

    fn bundled_engine_agrees_on_generated_probes(
        url in probe_urls(),
        third_party in gen::bools(),
    ) {
        let engine = engine::bundled_shared();
        let origin = if third_party { "somewhere-else.org" } else { "ads.example.com" };
        let req = RequestInfo { url: &url, origin_host: origin, resource_type: None };
        assert_eq!(engine.check(&req), engine.check_reference(&req));
    }

    // ------------------------------------------- automaton vs naive scan

    fn aho_walker_matches_naive_substring_scan(
        patterns in small_alphabet_patterns(),
        haystack in gen::bytes(0..=48),
    ) {
        // Constrain the haystack to the pattern alphabet so hits are
        // plentiful (arbitrary bytes would almost never match "abc"*).
        let haystack: Vec<u8> = haystack.iter().map(|b| b"abc"[(*b % 3) as usize]).collect();
        let ac = AhoCorasick::new(&patterns);
        let mut fast = ac.find_all(&haystack);
        let mut slow = naive_find_all(&patterns, &haystack);
        // The automaton reports same-end matches in output-merge order;
        // canonicalize both sides before comparing.
        fast.sort_by_key(|m| (m.end, m.pattern));
        slow.sort_by_key(|m| (m.end, m.pattern));
        assert_eq!(fast, slow, "find_all diverged from the naive oracle");

        let mut expected: Vec<u32> = slow.iter().map(|m| m.pattern).collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(ac.present(&haystack), expected, "present() diverged");
    }

    // ------------------------------------------------------ codecs

    fn pooled_compression_matches_plain(data in gen::bytes(0..=2048)) {
        let mut pooled = pool::take();
        compress::gzip_compress_into(&data, &mut pooled);
        assert_eq!(*pooled, compress::gzip_compress(&data), "compress_into diverged");
        let mut plain_out = pool::take();
        compress::gzip_decompress_into(&pooled, &mut plain_out).expect("roundtrip");
        assert_eq!(*plain_out, data, "pooled roundtrip lost bytes");
    }

    // ------------------------------------------------------- pool laws

    fn pooled_buffers_come_back_scrubbed(data in gen::bytes(1..=512)) {
        {
            let mut b = pool::take();
            b.extend_from_slice(&data);
        }
        let recycled = pool::take();
        assert!(recycled.is_empty(), "scrub-on-release law broken");
        let s = pool::stats();
        assert!(s.conserved(), "pool counters out of conservation: {s:?}");
    }

    // ------------------------------------------------------ rng batching

    fn batched_rng_draws_preserve_streams(seed in gen::u64s(0..=1 << 62), n in gen::usizes(0..=16)) {
        let mut batched = appvsweb::netsim::SimRng::new(seed);
        let mut sequential = appvsweb::netsim::SimRng::new(seed);
        let a = batched.unit_sum(n);
        let mut b = 0.0f64;
        for _ in 0..n {
            b += sequential.unit();
        }
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(batched, sequential, "unit_sum advanced the state differently");
    }

    // ------------------------------------------------------ obs reconcile

    // (see also `pool_stats_reconcile_with_journaled_takes` below — the
    // obs capture is process-global, so that law runs as a plain test.)

    // --------------------------------------------- compiled-dictionary cache

    fn cached_dictionary_scans_like_fresh_build(seed in gen::u64s(0..=1_000)) {
        let truth = GroundTruth::synthetic(seed);
        let cached = cache::compiled(&truth);
        let fresh = GroundTruthMatcher::new(&truth);
        for text in [
            format!("email={} extra", truth.email),
            format!("GET /x?user={}&pw={}", truth.username, truth.password),
            "nothing sensitive here".to_string(),
        ] {
            assert_eq!(
                cached.matcher.scan(&text),
                fresh.scan(&text),
                "cached matcher diverged from fresh build on {text:?}"
            );
        }
    }
}

/// The journaled `pool.takes` counter and the process-wide [`pool::stats`]
/// ledger must reconcile: every take performed inside a captured cell
/// scope lands in that cell's journal exactly once, and the stats ledger
/// covers it (other test threads may take concurrently, so the ledger
/// delta is a lower bound while the journal count — recorded through a
/// thread-local scope — is exact).
#[test]
fn pool_stats_reconcile_with_journaled_takes() {
    let before = pool::stats();
    appvsweb::obs::capture_begin();
    {
        let _cell = appvsweb::obs::cell_scope("pool/reconcile");
        for _ in 0..5 {
            let mut b = pool::take();
            b.extend_from_slice(b"scratch");
        }
        drop(pool::take_with_capacity(128));
    }
    let journal = appvsweb::obs::capture_end();
    let after = pool::stats();

    assert_eq!(
        journal.counter_total("pool.takes"),
        6,
        "journal must record exactly the takes made in-scope"
    );
    let cell = journal.cell("pool/reconcile").expect("cell journal");
    assert_eq!(cell.counter("pool.takes"), 6);
    assert!(
        after.takes - before.takes >= 6,
        "stats ledger must cover the journaled takes: {before:?} -> {after:?}"
    );
    assert!(
        after.conserved(),
        "pool counters out of conservation: {after:?}"
    );
}
