//! Crash-recovery and supervision properties of the resident service.
//!
//! The load-bearing claim: the WAL is the *only* state. Killing the
//! server after any journaled record and recovering must land, after
//! the client re-submits whatever never reached the journal, on a
//! final state **byte-identical** to the uninterrupted run — at every
//! single record boundary, torn final lines included.

use appvsweb::core::CellId;
use appvsweb::json::ToJson;
use appvsweb::netsim::Os;
use appvsweb::serve::{
    recover, Checkpoint, JobSpec, MemWal, QueueConfig, ServeState, Server, WalKind, WalRecord,
};
use appvsweb::services::{Catalog, Medium};
use appvsweb_testkit::fixtures::with_quiet_panics;
use appvsweb_testkit::{gen, prop_test, SimRng};

/// Two Android services as app+web cells: small enough that the whole
/// crash-point sweep stays inside the tier-1 test budget.
fn tiny_cells() -> Vec<CellId> {
    Catalog::paper()
        .testable_on(Os::Android)
        .take(2)
        .flat_map(|s| {
            [
                CellId::new(s.id, Os::Android, Medium::App),
                CellId::new(s.id, Os::Android, Medium::Web),
            ]
        })
        .collect()
}

fn tiny_spec(name: &str, seed: u64) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        seed,
        minutes: 1,
        use_recon: false,
        cells: tiny_cells(),
        ..JobSpec::default()
    }
}

/// The standard two-job workload: a healthy revision and a supervised
/// one with an injected stall (first cell) plus panics under the
/// moderate fault plan.
fn workload() -> Vec<JobSpec> {
    let stall = tiny_cells()
        .first()
        .map(|c| c.to_string())
        .into_iter()
        .collect();
    vec![
        tiny_spec("series", 5),
        JobSpec {
            faults: "moderate".to_string(),
            stall_cells: stall,
            max_retries: 1,
            ..tiny_spec("series", 5)
        },
    ]
}

fn run_workload(workers: usize) -> Server<MemWal> {
    let mut server = Server::new(MemWal::default(), QueueConfig::default(), workers);
    for spec in workload() {
        server.submit(spec).expect("submit");
    }
    server.run_pending().expect("run");
    server
}

fn state_bytes(state: &ServeState) -> String {
    state.to_json().to_compact()
}

#[test]
fn final_state_is_identical_across_worker_counts() {
    with_quiet_panics(|| {
        let one = run_workload(1);
        let two = run_workload(2);
        let eight = run_workload(8);
        assert_eq!(
            one.sink().text,
            two.sink().text,
            "WAL diverged at 2 workers"
        );
        assert_eq!(
            one.sink().text,
            eight.sink().text,
            "WAL diverged at 8 workers"
        );
        assert_eq!(state_bytes(&one.state), state_bytes(&two.state));
        assert_eq!(state_bytes(&one.state), state_bytes(&eight.state));
    });
}

#[test]
fn crash_at_every_record_boundary_recovers_byte_identically() {
    with_quiet_panics(|| {
        let golden = run_workload(1);
        let golden_state = state_bytes(&golden.state);
        let lines: Vec<&str> = golden.sink().text.lines().collect();
        assert!(lines.len() >= 6, "workload journal suspiciously short");

        for cut in 0..=lines.len() {
            let mut prefix: String = lines.iter().take(cut).map(|l| format!("{l}\n")).collect();
            // Exercise the torn-final-line path too: append half of the
            // record that was being written when the "crash" hit.
            let torn = lines.get(cut).map(|next| {
                let mut t = prefix.clone();
                t.push_str(&next[..next.len() / 2]);
                t
            });
            for text in std::iter::once(std::mem::take(&mut prefix)).chain(torn) {
                let (state, last_seq) =
                    recover(&text, None).expect("every crash prefix must recover");
                let mut server =
                    Server::recovered(MemWal { text }, state, last_seq, QueueConfig::default(), 1);
                // The client's crash protocol: re-submit any job whose
                // Submit record never became durable. Journaled jobs
                // keep their ledger entries and are not re-submitted.
                for (id, spec) in workload().into_iter().enumerate() {
                    if server.state.job(id as u64).is_none() {
                        server.submit(spec).expect("re-submit");
                    }
                }
                server.run_pending().expect("resume");
                assert_eq!(
                    state_bytes(&server.state),
                    golden_state,
                    "divergence after crash at record boundary {cut}"
                );
            }
        }
    });
}

#[test]
fn checkpoint_plus_suffix_equals_full_replay_at_quiescent_points() {
    with_quiet_panics(|| {
        let golden = run_workload(1);
        let wal = &golden.sink().text;
        let lines: Vec<&str> = wal.lines().collect();
        let (full, _) = recover(wal, None).expect("full replay");

        // Quiescent points: no job mid-run (Start count == Finish +
        // JobFail count). These are exactly where the server writes
        // checkpoints, and the only places checkpoint-equivalence can
        // hold: `requeue_inflight` rewinds mid-job progress by design.
        let mut open = 0i64;
        let mut checked = 0usize;
        for (i, line) in lines.iter().enumerate() {
            match WalRecord::decode(line)
                .expect("golden journal decodes")
                .kind
            {
                WalKind::Start => open += 1,
                WalKind::Finish | WalKind::JobFail => open -= 1,
                _ => {}
            }
            if open != 0 {
                continue;
            }
            checked += 1;
            let prefix: String = lines.iter().take(i + 1).map(|l| format!("{l}\n")).collect();
            let (state, wal_seq) = recover(&prefix, None).expect("prefix replay");
            let cp = Checkpoint { wal_seq, state };
            let (resumed, _) = recover(wal, Some(&cp)).expect("checkpoint + suffix");
            assert_eq!(
                state_bytes(&resumed),
                state_bytes(&full),
                "checkpoint divergence at quiescent line {}",
                i + 1
            );
        }
        assert!(
            checked >= 3,
            "expected several quiescent points, got {checked}"
        );
    });
}

#[test]
fn stalled_cells_are_reaped_then_succeed_on_retry() {
    with_quiet_panics(|| {
        let stall: Vec<String> = tiny_cells()
            .first()
            .map(|c| c.to_string())
            .into_iter()
            .collect();
        let mut server = Server::new(MemWal::default(), QueueConfig::default(), 2);
        server
            .submit(JobSpec {
                stall_cells: stall.clone(),
                ..tiny_spec("stalls", 9)
            })
            .expect("submit");
        server.run_pending().expect("run");
        let rev = server.state.revisions.first().expect("revision");
        assert_eq!(rev.health.supervisor_reaps, 1, "exactly one reap");
        assert_eq!(rev.health.cells_quarantined, 0);
        // The stalled cell recovered on its supervised retry: the
        // revision still covers the full cell grid.
        assert!(rev.health.is_complete(), "health: {:?}", rev.health);
        assert_eq!(rev.profiles.len(), tiny_cells().len());
        // The reap is journaled with the cell's label.
        let wal = &server.sink().text;
        let reap = wal
            .lines()
            .filter_map(|l| WalRecord::decode(l).ok())
            .find(|r| r.kind == WalKind::Reap)
            .expect("reap record journaled");
        assert_eq!(Some(reap.detail), stall.first().cloned());
    });
}

prop_test! {
    // A poison cell (panics on every attempt) is retried exactly
    // `max_retries` times — each retry drawing capped backoff from the
    // shared session RetryPolicy — then quarantined, with the panic
    // payload preserved in the revision's StudyHealth ledger. The job
    // as a whole still completes and produces a revision.
    fn poison_cells_quarantine_after_exact_retry_budget(
        case in gen::from_fn(|rng: &mut SimRng| (rng.below(3) as u32, rng.below(1000)))
    ) {
        let (max_retries, seed) = case;
        with_quiet_panics(|| {
            let mut server = Server::new(MemWal::default(), QueueConfig::default(), 2);
            let cells = tiny_cells();
            server
                .submit(JobSpec {
                    cell_panic: 1.0,
                    max_retries,
                    ..tiny_spec("poison", seed)
                })
                .expect("submit");
            server.run_pending().expect("run");
            let rev = server.state.revisions.first().expect("revision");
            assert_eq!(
                rev.health.cells_quarantined,
                cells.len() as u64,
                "every always-panicking cell must be quarantined"
            );
            assert_eq!(rev.health.failures.len(), cells.len());
            for failure in &rev.health.failures {
                assert!(
                    failure.error.contains("injected CellPanic"),
                    "panic payload lost: {:?}",
                    failure.error
                );
            }
            // Exact retry accounting, straight from the journal: each
            // cell's quarantine names its final attempt index.
            let quarantines: Vec<WalRecord> = server
                .sink()
                .text
                .lines()
                .filter_map(|l| WalRecord::decode(l).ok())
                .filter(|r| r.kind == WalKind::Quarantine)
                .collect();
            assert_eq!(quarantines.len(), cells.len());
            for q in &quarantines {
                assert_eq!(
                    q.attempt, max_retries,
                    "quarantine must happen on the last allowed attempt"
                );
            }
        });
    }
}
