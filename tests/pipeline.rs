//! Cross-crate integration tests for the measurement pipeline itself:
//! methodology invariants (§3.1–3.2) that hold regardless of catalog
//! calibration.

use appvsweb::adblock::Categorizer;
use appvsweb::analysis::analyze_trace;
use appvsweb::core::study::{run_cell, StudyConfig};
use appvsweb::core::Testbed;
use appvsweb::netsim::Os;
use appvsweb::pii::{CombinedDetector, PiiType};
use appvsweb::services::catalog::Exclusion;
use appvsweb::services::{Catalog, Medium, SessionConfig};
use appvsweb_testkit::fixtures::quick_study_config;

fn quick() -> StudyConfig {
    quick_study_config()
}

#[test]
fn selection_criteria_exclusions_are_enforced_by_the_pipeline() {
    // Criterion (4): pinned services cannot be measured. Run Facebook's
    // app through the testbed and verify the pipeline yields nothing
    // analyzable — the mechanical reason the paper excluded it.
    let catalog = Catalog::paper();
    let fb = catalog.get("facebook-app").unwrap();
    assert_eq!(fb.excluded, Some(Exclusion::CertificatePinning));

    let mut tb = Testbed::for_cell(fb, Os::Android, 2016);
    let trace = tb.run_session(fb, Os::Android, Medium::App, &SessionConfig::default());
    let first_party: Vec<_> = trace
        .connections
        .iter()
        .filter(|c| c.host.contains("facebook.com"))
        .collect();
    assert!(!first_party.is_empty(), "connections are attempted");
    assert!(
        first_party.iter().all(|c| !c.decrypted),
        "pinning defeats interception on every first-party flow"
    );

    let detector = CombinedDetector::new(&tb.truth, None);
    let categorizer = Categorizer::bundled(fb.first_party);
    let cell = analyze_trace(
        &trace,
        fb,
        Os::Android,
        Medium::App,
        &detector,
        &categorizer,
    );
    assert!(
        !cell.leak_domains.iter().any(|d| d.contains("facebook.com")),
        "no PII can be observed on pinned first-party flows"
    );
}

#[test]
fn credentials_to_first_party_are_not_leaks() {
    // Yelp requires login; its email+password go to yelp.com over HTTPS.
    // Under §3.2's rule these are NOT leaks — but they are real traffic.
    let catalog = Catalog::paper();
    let spec = catalog.get("yelp").unwrap();
    let mut tb = Testbed::for_cell(spec, Os::Ios, 2016);
    let trace = tb.run_session(spec, Os::Ios, Medium::App, &SessionConfig::default());

    // The password really is on the wire to the first party (in its
    // form-urlencoded representation)…
    let wire_pw = appvsweb::pii::encode::Encoding::FormPercent.apply(&tb.truth.password);
    let has_pw_on_wire = trace.transactions.iter().any(|t| {
        t.host.contains("yelp.com")
            && String::from_utf8_lossy(&t.request_bytes()).contains(&wire_pw)
    });
    assert!(
        has_pw_on_wire,
        "login credentials do travel to the first party"
    );

    // …yet the leak classifier must not count them.
    let detector = CombinedDetector::new(&tb.truth, None);
    let categorizer = Categorizer::bundled(spec.first_party);
    let cell = analyze_trace(&trace, spec, Os::Ios, Medium::App, &detector, &categorizer);
    assert!(
        !cell.leaked_types.contains(&PiiType::Password),
        "first-party HTTPS credentials are exempt by rule"
    );
    assert!(
        !cell.leaked_types.contains(&PiiType::Username),
        "usernames to the first party are exempt too"
    );
}

#[test]
fn plaintext_transmissions_always_count() {
    // Accuweather's plaintext API puts coordinates on the wire over HTTP;
    // rule (1) makes that a leak even to the first party.
    let cell = run_cell(
        Catalog::paper().get("accuweather").unwrap(),
        Os::Android,
        Medium::App,
        &quick(),
        None,
    );
    let plaintext_location = cell
        .leaks
        .iter()
        .any(|l| l.pii_type == PiiType::Location && l.plaintext);
    assert!(
        plaintext_location,
        "plaintext first-party location must be a leak"
    );
}

#[test]
fn background_os_traffic_never_reaches_analysis() {
    let catalog = Catalog::paper();
    for os in [Os::Android, Os::Ios] {
        let spec = catalog.get("streamflix").unwrap();
        let cell = run_cell(spec, os, Medium::App, &quick(), None);
        // No Google Play Services / iCloud domains anywhere in results.
        for domain in cell.aa_domains.iter().chain(cell.leak_domains.iter()) {
            assert!(
                !domain.contains("googleapis")
                    && !domain.contains("icloud")
                    && !domain.contains("apple.com"),
                "{os}: background host {domain} leaked into analysis"
            );
        }
    }
}

#[test]
fn full_determinism_across_runs() {
    let catalog = Catalog::paper();
    let spec = catalog.get("grubhub").unwrap();
    let a = run_cell(spec, Os::Android, Medium::Web, &quick(), None);
    let b = run_cell(spec, Os::Android, Medium::Web, &quick(), None);
    assert_eq!(a.aa_flows, b.aa_flows);
    assert_eq!(a.aa_bytes, b.aa_bytes);
    assert_eq!(a.leaked_types, b.leaked_types);
    assert_eq!(a.leaks.len(), b.leaks.len());
    assert_eq!(a.per_domain_leaks, b.per_domain_leaks);
}

#[test]
fn different_seeds_produce_different_accounts_same_shapes() {
    let catalog = Catalog::paper();
    let spec = catalog.get("chatterbox").unwrap();
    let cfg_a = quick();
    let cfg_b = StudyConfig {
        seed: 777,
        ..quick()
    };
    let a = run_cell(spec, Os::Ios, Medium::App, &cfg_a, None);
    let b = run_cell(spec, Os::Ios, Medium::App, &cfg_b, None);
    // Structural outcome is seed-independent…
    assert_eq!(a.leaked_types, b.leaked_types);
    assert_eq!(a.aa_domains, b.aa_domains);
    // …while the underlying identities differ.
    let ta = Testbed::for_cell(spec, Os::Ios, cfg_a.seed);
    let tb = Testbed::for_cell(spec, Os::Ios, cfg_b.seed);
    assert_ne!(ta.truth.email, tb.truth.email);
}

#[test]
fn recon_improves_or_matches_matcher_only() {
    // The combined pipeline can only add verified detections on top of
    // the matcher; it must never lose any.
    let catalog = Catalog::paper();
    let cfg_with = StudyConfig {
        use_recon: true,
        ..quick()
    };
    let recon = appvsweb::core::study::train_recon(&catalog, &cfg_with);
    let spec = catalog.get("weather-channel").unwrap();
    let base = run_cell(spec, Os::Android, Medium::App, &quick(), None);
    let with = run_cell(spec, Os::Android, Medium::App, &cfg_with, Some(&recon));
    assert!(
        with.leaked_types.is_superset(&base.leaked_types),
        "combined detection must cover matcher-only results"
    );
}

#[test]
fn dataset_export_roundtrips_a_real_cell() {
    let catalog = Catalog::paper();
    let spec = catalog.get("priceline").unwrap();
    let cell = run_cell(spec, Os::Ios, Medium::Web, &quick(), None);
    let study = appvsweb::analysis::Study {
        cells: vec![cell],
        health: Default::default(),
    };
    let json = appvsweb::core::dataset::to_json(&study);
    let parsed = appvsweb::core::dataset::from_json(&json).unwrap();
    assert_eq!(parsed.cells[0].leaks, study.cells[0].leaks);
    assert_eq!(parsed.cells[0].per_type, study.cells[0].per_type);
}

#[test]
fn web_never_accesses_device_identifiers() {
    // The paper's structural invariant, end to end: across every web
    // session of several services, no UID or device model ever leaks.
    let catalog = Catalog::paper();
    for id in [
        "weather-channel",
        "bbc-news",
        "priceline",
        "chatterbox",
        "study-pal",
    ] {
        let spec = catalog.get(id).unwrap();
        for os in [Os::Android, Os::Ios] {
            let cell = run_cell(spec, os, Medium::Web, &quick(), None);
            assert!(
                !cell.leaked_types.contains(&PiiType::UniqueId),
                "{id}/{os}: web leaked a device UID"
            );
            assert!(
                !cell.leaked_types.contains(&PiiType::DeviceInfo),
                "{id}/{os}: web leaked the device model"
            );
        }
    }
}

#[test]
fn gzipped_sdk_uploads_are_inflated_before_detection() {
    // Flurry's SDK gzips its batch uploads (Content-Encoding: gzip).
    // The raw wire bytes do NOT contain the identifiers; only after the
    // proxy inflates the body can the detector see them — exactly the
    // mitmproxy behaviour the methodology depends on.
    let catalog = Catalog::paper();
    let spec = catalog.get("weather-channel").unwrap(); // embeds flurry
    let mut tb = Testbed::for_cell(spec, Os::Android, 2016);
    let trace = tb.run_session(spec, Os::Android, Medium::App, &SessionConfig::default());

    let flurry: Vec<_> = trace
        .transactions
        .iter()
        .filter(|t| t.host.contains("flurry"))
        .collect();
    assert!(!flurry.is_empty(), "flurry beacons expected");
    let gzipped = flurry
        .iter()
        .find(|t| t.request.headers.get("Content-Encoding") == Some("gzip"))
        .expect("flurry uploads must be gzip-encoded");

    // Raw bytes are opaque…
    let ad_id = &tb
        .truth
        .device_ids
        .iter()
        .find(|(k, _)| k == "ad_id")
        .unwrap()
        .1;
    let raw = String::from_utf8_lossy(&gzipped.request_bytes()).into_owned();
    assert!(
        !raw.contains(ad_id.as_str()),
        "identifier must not be visible compressed"
    );

    // …while the inflating scanner sees the identifier.
    let text = appvsweb::analysis::leaks::scan_text_of(&gzipped.request);
    let matcher = appvsweb::pii::GroundTruthMatcher::new(&tb.truth);
    // Not every heartbeat carries PII (flurry sends it every 8th beacon);
    // scan all flurry transactions through the inflating path.
    let found_uid = flurry.iter().any(|t| {
        matcher
            .types_in(&appvsweb::analysis::leaks::scan_text_of(&t.request))
            .contains(&PiiType::UniqueId)
    });
    assert!(found_uid, "UID must be detectable through gzip");
    let _ = text;
}
