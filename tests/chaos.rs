//! Chaos suite: the robustness contract of the pipeline under seeded
//! fault injection.
//!
//! Three guarantees, checked end to end:
//!
//! 1. no fault plan (panics excluded) can crash a cell — sessions
//!    complete and the analysis invariants hold under arbitrary rates,
//! 2. the study runner isolates deliberately panicking cells: they are
//!    recorded as failed in the health ledger, every other cell
//!    survives, and completed + failed always equals attempted,
//! 3. the same `(seed, FaultPlan)` produces a byte-identical dataset
//!    regardless of worker count.

use appvsweb::core::dataset;
use appvsweb::core::study::{run_cell, run_study, StudyConfig};
use appvsweb::core::Testbed;
use appvsweb::netsim::{FaultPlan, Os, SimDuration};
use appvsweb::services::session::RetryPolicy;
use appvsweb::services::{Catalog, Medium, SessionConfig};
use appvsweb_testkit::fixtures::{
    fault_plans as plans, quick_study_config_with, with_quiet_panics,
};
use appvsweb_testkit::{check_with, gen, prop_test, PropConfig};

fn quick_cfg(faults: FaultPlan) -> StudyConfig {
    quick_study_config_with(faults)
}

#[test]
fn single_cells_never_panic_under_arbitrary_plans() {
    let catalog = Catalog::paper();
    let mut cells: Vec<(&str, Os, Medium)> = Vec::new();
    for os in [Os::Android, Os::Ios] {
        for spec in catalog.testable_on(os) {
            for medium in Medium::BOTH {
                cells.push((spec.id, os, medium));
            }
        }
    }
    // Each case is a full 1-minute session; 24 cases keep the suite
    // inside tier-1 time while still sweeping the plan space.
    check_with(
        &PropConfig {
            cases: 24,
            ..PropConfig::default()
        },
        "single_cells_never_panic",
        &(plans(), gen::u64s(0..=1_000_000)),
        |case| {
            let (plan, pick) = case.clone();
            let (id, os, medium) = cells[pick as usize % cells.len()];
            let spec = catalog.get(id).unwrap();
            let cell = run_cell(spec, os, medium, &quick_cfg(plan), None);
            assert!(cell.aa_flows <= cell.total_flows);
            assert_eq!(cell.service_id, id);
            // Leak accounting stays internally consistent even when the
            // session was degraded mid-flight.
            assert!(cell.leak_domains.len() <= cell.leaks.len().max(1));
        },
    );
}

prop_test! {
    fn uniform_plans_are_well_formed(milli in gen::u64s(0..=2_000)) {
        let plan = FaultPlan::uniform(milli as f64 / 1_000.0);
        assert_eq!(plan.cell_panic, 0.0, "no shipping preset panics cells");
        assert!(plan.packet_loss <= 1.0, "rates must clamp to [0, 1]");
        assert_eq!(plan.is_none(), milli == 0);
    }
}

#[test]
fn retry_budget_is_never_exceeded_under_any_plan() {
    // The session's retry ledger is bounded by the policy's budget no
    // matter how hostile the fault plan is, and a no-retry policy keeps
    // the ledger at zero.
    let catalog = Catalog::paper();
    let spec = catalog.get("bbc-news").unwrap();
    check_with(
        &PropConfig {
            cases: 10,
            ..PropConfig::default()
        },
        "retry_budget_is_never_exceeded",
        &(plans(), gen::u64s(0..=15)),
        |case| {
            let (plan, budget) = case.clone();
            let retry = RetryPolicy {
                session_budget: budget as u32,
                ..RetryPolicy::standard()
            };
            let cfg = SessionConfig {
                duration: SimDuration::from_mins(1),
                faults: plan.clone(),
                retry,
                ..SessionConfig::default()
            };
            let mut tb = Testbed::for_cell(spec, Os::Android, 2016);
            let trace = tb.run_session(spec, Os::Android, Medium::Web, &cfg);
            assert!(
                trace.retries <= budget,
                "spent {} retries with a budget of {budget}",
                trace.retries
            );

            let none_cfg = SessionConfig {
                duration: SimDuration::from_mins(1),
                faults: plan,
                retry: RetryPolicy::none(),
                ..SessionConfig::default()
            };
            let mut tb = Testbed::for_cell(spec, Os::Android, 2016);
            let trace = tb.run_session(spec, Os::Android, Medium::Web, &none_cfg);
            assert_eq!(trace.retries, 0, "RetryPolicy::none() must never retry");
        },
    );
}

#[test]
fn panicking_cells_are_isolated_and_ledgered() {
    let mut plan = FaultPlan::moderate();
    plan.cell_panic = 0.3; // ~9% of cells fail even after one retry
    let study = with_quiet_panics(|| run_study(&quick_cfg(plan)));
    let h = &study.health;

    assert_eq!(h.cells_attempted, 196);
    assert!(
        h.all_accounted(),
        "completed ({}) + failed ({}) must equal attempted ({})",
        h.cells_completed,
        h.cells_failed,
        h.cells_attempted
    );
    assert_eq!(study.cells.len() as u64, h.cells_completed);
    assert!(h.cells_failed > 0, "P(double panic) = 9% per cell");
    assert!(h.cells_retried > 0, "some cells must recover on retry");
    assert_eq!(h.failed_cells.len() as u64, h.cells_failed);
    assert!(h.faults.cell_panics > 0);

    // A failed cell is genuinely absent from the dataset — and only
    // failed cells are.
    for label in &h.failed_cells {
        let mut parts = label.split('/');
        let (id, os, medium) = (
            parts.next().unwrap(),
            parts.next().unwrap(),
            parts.next().unwrap(),
        );
        assert!(
            !study.cells.iter().any(|c| c.service_id == id
                && format!("{:?}", c.os) == os
                && format!("{:?}", c.medium) == medium),
            "failed cell {label} must not appear in the dataset"
        );
    }
}

#[test]
fn chaotic_study_is_identical_across_worker_counts() {
    let mut plan = FaultPlan::moderate();
    plan.cell_panic = 0.2;
    let (a, b) = with_quiet_panics(|| {
        let a = run_study(&StudyConfig {
            workers: 1,
            ..quick_cfg(plan.clone())
        });
        let b = run_study(&StudyConfig {
            workers: 5,
            ..quick_cfg(plan)
        });
        (a, b)
    });
    assert_eq!(
        dataset::to_json(&a),
        dataset::to_json(&b),
        "same (seed, plan) must serialize byte-identically at any worker count"
    );
    assert!(a.health.faults.total() > 0);
}
