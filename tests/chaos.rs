//! Chaos suite: the robustness contract of the pipeline under seeded
//! fault injection.
//!
//! Three guarantees, checked end to end:
//!
//! 1. no fault plan (panics excluded) can crash a cell — sessions
//!    complete and the analysis invariants hold under arbitrary rates,
//! 2. the study runner isolates deliberately panicking cells: they are
//!    recorded as failed in the health ledger, every other cell
//!    survives, and completed + failed always equals attempted,
//! 3. the same `(seed, FaultPlan)` produces a byte-identical dataset
//!    regardless of worker count.

use appvsweb::core::dataset;
use appvsweb::core::study::{run_cell, run_study, StudyConfig};
use appvsweb::netsim::{FaultPlan, Os, SimDuration};
use appvsweb::services::{Catalog, Medium};
use appvsweb_testkit::{check_with, gen, prop_test, Gen, PropConfig, SimRng};

fn quick_cfg(faults: FaultPlan) -> StudyConfig {
    StudyConfig {
        duration: SimDuration::from_mins(1),
        use_recon: false,
        faults,
        ..StudyConfig::default()
    }
}

fn prob(rng: &mut SimRng, scale: f64) -> f64 {
    (rng.below(1_001) as f64) / 1_000.0 * scale
}

/// Arbitrary network/origin fault plan with every rate in `[0, 0.25]`
/// and sane spike/flap windows. `cell_panic` stays 0 here — panic
/// isolation is a study-runner property, tested separately below.
fn plans() -> impl Gen<Value = FaultPlan> {
    gen::from_fn(|rng: &mut SimRng| FaultPlan {
        packet_loss: prob(rng, 0.25),
        latency_spike: prob(rng, 0.25),
        latency_spike_ms: rng.below(5_000),
        connection_reset: prob(rng, 0.25),
        link_flap: prob(rng, 0.1),
        link_flap_ms: rng.below(10_000),
        dns_servfail: prob(rng, 0.25),
        dns_timeout: prob(rng, 0.25),
        tls_abort: prob(rng, 0.25),
        truncated_body: prob(rng, 0.25),
        malformed_chunked: prob(rng, 0.25),
        server_error: prob(rng, 0.25),
        cell_panic: 0.0,
    })
}

/// Run the closure with the default panic hook silenced, restoring it
/// after. The injected-panic tests crash cells on purpose; their
/// backtraces are noise, not signal.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn single_cells_never_panic_under_arbitrary_plans() {
    let catalog = Catalog::paper();
    let mut cells: Vec<(&str, Os, Medium)> = Vec::new();
    for os in [Os::Android, Os::Ios] {
        for spec in catalog.testable_on(os) {
            for medium in Medium::BOTH {
                cells.push((spec.id, os, medium));
            }
        }
    }
    // Each case is a full 1-minute session; 24 cases keep the suite
    // inside tier-1 time while still sweeping the plan space.
    check_with(
        &PropConfig {
            cases: 24,
            ..PropConfig::default()
        },
        "single_cells_never_panic",
        &(plans(), gen::u64s(0..=1_000_000)),
        |case| {
            let (plan, pick) = case.clone();
            let (id, os, medium) = cells[pick as usize % cells.len()];
            let spec = catalog.get(id).unwrap();
            let cell = run_cell(spec, os, medium, &quick_cfg(plan), None);
            assert!(cell.aa_flows <= cell.total_flows);
            assert_eq!(cell.service_id, id);
            // Leak accounting stays internally consistent even when the
            // session was degraded mid-flight.
            assert!(cell.leak_domains.len() <= cell.leaks.len().max(1));
        },
    );
}

prop_test! {
    fn uniform_plans_are_well_formed(milli in gen::u64s(0..=2_000)) {
        let plan = FaultPlan::uniform(milli as f64 / 1_000.0);
        assert_eq!(plan.cell_panic, 0.0, "no shipping preset panics cells");
        assert!(plan.packet_loss <= 1.0, "rates must clamp to [0, 1]");
        assert_eq!(plan.is_none(), milli == 0);
    }
}

#[test]
fn panicking_cells_are_isolated_and_ledgered() {
    let mut plan = FaultPlan::moderate();
    plan.cell_panic = 0.3; // ~9% of cells fail even after one retry
    let study = with_quiet_panics(|| run_study(&quick_cfg(plan)));
    let h = &study.health;

    assert_eq!(h.cells_attempted, 196);
    assert!(
        h.all_accounted(),
        "completed ({}) + failed ({}) must equal attempted ({})",
        h.cells_completed,
        h.cells_failed,
        h.cells_attempted
    );
    assert_eq!(study.cells.len() as u64, h.cells_completed);
    assert!(h.cells_failed > 0, "P(double panic) = 9% per cell");
    assert!(h.cells_retried > 0, "some cells must recover on retry");
    assert_eq!(h.failed_cells.len() as u64, h.cells_failed);
    assert!(h.faults.cell_panics > 0);

    // A failed cell is genuinely absent from the dataset — and only
    // failed cells are.
    for label in &h.failed_cells {
        let mut parts = label.split('/');
        let (id, os, medium) = (
            parts.next().unwrap(),
            parts.next().unwrap(),
            parts.next().unwrap(),
        );
        assert!(
            !study.cells.iter().any(|c| c.service_id == id
                && format!("{:?}", c.os) == os
                && format!("{:?}", c.medium) == medium),
            "failed cell {label} must not appear in the dataset"
        );
    }
}

#[test]
fn chaotic_study_is_identical_across_worker_counts() {
    let mut plan = FaultPlan::moderate();
    plan.cell_panic = 0.2;
    let (a, b) = with_quiet_panics(|| {
        let a = run_study(&StudyConfig {
            workers: 1,
            ..quick_cfg(plan.clone())
        });
        let b = run_study(&StudyConfig {
            workers: 5,
            ..quick_cfg(plan)
        });
        (a, b)
    });
    assert_eq!(
        dataset::to_json(&a),
        dataset::to_json(&b),
        "same (seed, plan) must serialize byte-identically at any worker count"
    );
    assert!(a.health.faults.total() > 0);
}
