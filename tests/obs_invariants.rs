//! Cross-layer accounting properties for the observability layer.
//!
//! The journal is only trustworthy if it agrees with the artifacts the
//! pipeline already produces. Under arbitrary (panic-free) fault plans,
//! one session's journal must reconcile with the mitm trace and its HAR
//! export; under forced cell panics, every span must still close
//! exactly once and the swallowed panic payload must surface in both
//! the journal and the study health ledger; and at study scale the obs
//! retry counter must equal the health ledger's. `repro metrics
//! --check` runs the same laws as a CI gate; these tests pin them
//! per-session and under panics, where the CLI gate cannot.

use appvsweb::core::study::{run_cell_journal, run_study};
use appvsweb::core::Testbed;
use appvsweb::mitm::har::to_har;
use appvsweb::netsim::{FaultPlan, Os, SimDuration};
use appvsweb::obs;
use appvsweb::obs::journal::EventKind;
use appvsweb::services::{Catalog, Medium, SessionConfig};
use appvsweb_testkit::fixtures::{fault_plans, quick_study_config_with, with_quiet_panics};
use appvsweb_testkit::{check_with, gen, PropConfig};
use std::sync::Mutex;

/// Journal capture is process-global; serialize the tests in this binary.
static LOCK: Mutex<()> = Mutex::new(());

/// Run one session in a `test/…` pseudo-cell and return its journal
/// alongside the trace the pipeline produced. The §3.2 background
/// filter is disabled: it removes OS-chatter flows from the trace
/// *after* capture, and these laws reconcile the journal against the
/// raw record of what the proxy actually did.
fn captured_session(
    service: &str,
    os: Os,
    medium: Medium,
    plan: FaultPlan,
) -> (appvsweb::mitm::Trace, obs::journal::CellJournal) {
    let catalog = Catalog::paper();
    let spec = catalog.get(service).expect("catalog service");
    let cfg = SessionConfig {
        duration: SimDuration::from_mins(1),
        faults: plan,
        strip_background: false,
        ..SessionConfig::default()
    };
    obs::capture_begin();
    let trace = {
        let _scope = obs::cell_scope("test/session");
        let mut tb = Testbed::for_cell(spec, os, 2016);
        tb.run_session(spec, os, medium, &cfg)
    };
    let journal = obs::capture_end();
    let cell = journal
        .cell("test/session")
        .expect("scoped journal")
        .clone();
    (trace, cell)
}

#[test]
fn session_journals_reconcile_with_trace_and_har_under_arbitrary_plans() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cells = [
        ("weather-channel", Os::Android, Medium::App),
        ("bbc-news", Os::Ios, Medium::Web),
        ("grubhub", Os::Android, Medium::Web),
    ];
    check_with(
        &PropConfig {
            cases: 9,
            ..PropConfig::default()
        },
        "session_journal_accounting",
        &(fault_plans(), gen::u64s(0..=1_000_000)),
        |case| {
            let (plan, pick) = case.clone();
            let (service, os, medium) = cells[pick as usize % cells.len()];
            let (trace, cell) = captured_session(service, os, medium, plan);

            // Sequence numbers are dense and spans balance.
            for (i, ev) in cell.events.iter().enumerate() {
                assert_eq!(ev.seq, i as u64, "seq must be dense");
            }
            assert!(cell.spans_balanced(), "every span closes exactly once");

            // Flow law: one open event per connection record, every open
            // matched by a close (finish_session sweeps the pool).
            let opened = cell.counter("mitm.flows_opened");
            assert_eq!(opened, trace.connections.len() as u64, "flow law: opens");
            assert_eq!(
                opened,
                cell.counter("mitm.flows_closed"),
                "flow law: closes"
            );
            assert_eq!(
                opened,
                cell.count_kind("flow.open", EventKind::Event),
                "flow law: events"
            );

            // HAR law: the export carries one entry per completed
            // transaction plus one error-status entry per connection a
            // fault killed — nothing vanishes, nothing is invented.
            let har = to_har(&trace);
            let aborted = trace
                .connections
                .iter()
                .filter(|c| c.error.is_some())
                .count();
            assert_eq!(
                har.log.entries.len(),
                trace.transactions.len() + aborted,
                "har law"
            );
            assert_eq!(
                cell.counter("mitm.transactions"),
                trace.transactions.len() as u64,
                "har law: journal"
            );

            // Retry law: the obs counter and the trace ledger increment
            // at the same site, and every retry drew one backoff delay.
            assert_eq!(cell.counter("session.retries"), trace.retries, "retry law");
            let backoffs = cell
                .histograms
                .iter()
                .find(|h| h.name == "session.backoff_ms")
                .map_or(0, |h| h.count);
            assert_eq!(backoffs, trace.retries, "retry law: backoff histogram");

            // Exchange-size histogram: one sample per exchange that got
            // a response, so at least one per recorded transaction.
            let wire = cell
                .histograms
                .iter()
                .find(|h| h.name == "mitm.exchange_wire_bytes")
                .map_or(0, |h| h.count);
            assert!(
                wire >= trace.transactions.len() as u64,
                "histogram law: wire samples {wire} < transactions {}",
                trace.transactions.len()
            );

            // Fault law: everything the injectors recorded was counted
            // at the single choke point (plans here never panic cells).
            assert_eq!(
                cell.counter("netsim.faults.injected"),
                trace.faults.total(),
                "fault law"
            );

            // Byte law: bytes moved by simulated TCP == bytes produced
            // by the HTTP codecs + TLS framing + handshake flights,
            // minus bytes destroyed by connection faults.
            let moved =
                cell.counter("netsim.conn.bytes_up") + cell.counter("netsim.conn.bytes_down");
            let produced = cell.counter("httpsim.codec_bytes")
                + cell.counter("tlssim.record_overhead_bytes")
                + cell.counter("mitm.handshake_bytes")
                + cell.counter("mitm.tls_failed_bytes");
            assert_eq!(
                moved + cell.counter("mitm.bytes_lost"),
                produced,
                "byte conservation across netsim/httpsim/tlssim/mitm"
            );
        },
    );
}

#[test]
fn panicked_attempts_balance_spans_and_surface_the_payload() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let catalog = Catalog::paper();
    let spec = catalog.get("weather-channel").expect("catalog service");
    let mut plan = FaultPlan::moderate();
    plan.cell_panic = 1.0; // every attempt unwinds mid-session
    let cfg = quick_study_config_with(plan);
    let (cell, journal) =
        with_quiet_panics(|| run_cell_journal(spec, Os::Android, Medium::App, &cfg, None));
    assert!(cell.is_none(), "a pinned panic rate must fail the cell");

    let j = journal
        .cell("weather-channel/Android/App")
        .expect("failed cell still journals");
    assert!(
        j.spans_balanced(),
        "spans opened before the panic must close exactly once during unwind"
    );
    let attempts = u64::from(cfg.cell_attempts.max(1));
    assert_eq!(
        j.count_kind("study.cell_attempt", EventKind::SpanOpen),
        attempts
    );
    assert_eq!(
        j.count_kind("study.cell_attempt", EventKind::SpanClose),
        attempts
    );
    assert_eq!(j.counter("study.cell_panics"), attempts);
    // The payload the runner used to swallow is now journaled verbatim.
    assert!(
        j.events
            .iter()
            .any(|e| e.name == "study.cell_panic" && e.detail.contains("injected")),
        "panic payload must appear in the journal"
    );
}

#[test]
fn study_retry_counter_matches_the_health_ledger() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = quick_study_config_with(FaultPlan::moderate());
    obs::capture_begin();
    let study = run_study(&cfg);
    let journal = obs::capture_end();

    assert!(study.health.session_retries > 0, "moderate plan must retry");
    assert_eq!(
        journal.counter_total("session.retries"),
        study.health.session_retries,
        "obs retry events must equal the StudyHealth retry ledger"
    );
    assert_eq!(
        journal.counter_total("netsim.faults.injected"),
        study.health.faults.total() - study.health.faults.cell_panics,
        "obs fault events must equal the StudyHealth fault ledger"
    );
    assert!(
        study.health.failures.is_empty(),
        "no panics under a panic-free plan"
    );
    // One journal per measurement cell, in sorted order.
    assert_eq!(journal.cells.len() as u64, study.health.cells_attempted);
    let ids: Vec<&str> = journal.cells.iter().map(|c| c.cell.as_str()).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "capture_end must sort journals by cell id");
}

#[test]
fn failed_cells_carry_their_panic_payload_in_the_health_ledger() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut plan = FaultPlan::moderate();
    plan.cell_panic = 0.3;
    let study = with_quiet_panics(|| run_study(&quick_study_config_with(plan)));
    let h = &study.health;
    assert!(
        h.cells_failed > 0,
        "0.3^2 per cell over 196 cells must fail some"
    );
    assert_eq!(h.failures.len() as u64, h.cells_failed);
    let labels: Vec<&str> = h.failures.iter().map(|f| f.cell.as_str()).collect();
    let mut sorted = labels.clone();
    sorted.sort_unstable();
    assert_eq!(labels, sorted, "failures are sorted by cell label");
    assert_eq!(
        labels,
        h.failed_cells
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
        "failures and failed_cells describe the same set"
    );
    for failure in &h.failures {
        assert!(
            failure.error.contains("injected") && failure.error.contains("attempt"),
            "payload must be the real panic message, got {:?}",
            failure.error
        );
    }
}
