//! Replay the committed fuzz regression corpus on every `cargo test`.
//!
//! Each entry under `tests/corpus/<target>/` was either hand-written to
//! pin a previously fixed bug (the `regress-*` files) or discovered by
//! `repro fuzz` as coverage-expanding. Replaying them all, every time,
//! is what turns the corpus into a regression suite: a target harness
//! that starts panicking on a committed input fails here first.

use appvsweb_bench::fuzz_targets;
use appvsweb_testkit::{fuzz, FuzzConfig};

/// Replay-only configuration: no mutation, just the committed inputs.
fn replay_cfg() -> FuzzConfig {
    FuzzConfig {
        iters: 0,
        ..FuzzConfig::default()
    }
}

fn corpus_for(name: &str) -> Vec<Vec<u8>> {
    let dir = fuzz_targets::corpus_dir(name);
    fuzz::load_corpus_dir(&dir)
        .expect("corpus directory readable")
        .into_iter()
        .map(|(_, data)| data)
        .collect()
}

#[test]
fn every_corpus_entry_replays_without_crashing() {
    for target in fuzz_targets::all() {
        let corpus = corpus_for(target.name);
        let outcome = fuzz::fuzz(&target, &corpus, &replay_cfg());
        let messages: Vec<&str> = outcome
            .replay_crashes
            .iter()
            .map(|c| c.message.as_str())
            .collect();
        assert!(
            outcome.replay_crashes.is_empty(),
            "{}: committed corpus entries crashed on replay: {messages:?}",
            target.name
        );
        assert_eq!(
            outcome.execs, outcome.corpus_in as u64,
            "replay-only run must execute exactly the pool"
        );
    }
}

#[test]
fn regression_pins_are_committed() {
    // The regression families from earlier PRs must stay in the
    // corpus: the PR 2 gzip-trailer truncation and DNS negative-cache
    // fixes, the PR 3 lexer property-test edge cases, the journal
    // renderer's close-without-open totality case, the population
    // sketch hostile-state pins (unsorted buckets, absurd capacities,
    // non-finite op streams), the serve pins (bare-LF request
    // heads, oversized content-length, torn WAL tails, sequence
    // regressions, supervisor records with no enclosing Start), the
    // lint item-parser pins (macro bodies skipped wholesale, unclosed
    // generics bounded, torn fork-label argument lists), and the
    // hot-path differential pins (a DEFLATE stream whose back-reference
    // reaches before the stream start — it must never read a pooled
    // buffer's earlier bytes — the chunk-framing boundary family for
    // the arithmetic wire lengths, and the adblock pre-filter's
    // short-token and caret-separator fallbacks).
    for (target, pin) in [
        ("httpsim_gzip", "regress-trailer-truncated.bin"),
        ("httpsim_gzip", "regress-trailer-missing.bin"),
        ("httpsim_gzip", "regress-backref-past-base.bin"),
        ("httpsim_wire", "regress-chunk-boundary-1024.bin"),
        ("httpsim_wire", "regress-chunk-remainder-1025.bin"),
        ("httpsim_wire", "regress-chunk-torn-trailer.bin"),
        ("httpsim_wire", "regress-header-no-colon.bin"),
        ("adblock_filter", "regress-prefilter-short-token.bin"),
        ("adblock_filter", "regress-prefilter-caret-separator.bin"),
        ("netsim_dns", "regress-negative-cache-timeout.bin"),
        ("netsim_dns", "regress-negative-cache-nxdomain.bin"),
        ("lint_lexer", "regress-raw-string-hashes.bin"),
        ("lint_lexer", "regress-nested-comment.bin"),
        ("lint_lexer", "regress-unterminated-raw.bin"),
        ("lint_parse", "regress-macro-body-allow.bin"),
        ("lint_parse", "regress-unclosed-generics.bin"),
        ("lint_parse", "regress-torn-fork-args.bin"),
        ("trace", "regress-depth-underflow.bin"),
        ("population", "regress-report-roundtrip.bin"),
        ("population", "regress-unsorted-buckets.bin"),
        ("population", "regress-topk-absurd-capacity.bin"),
        ("population", "regress-opstream-nonfinite.bin"),
        ("serve", "regress-http-bare-lf.bin"),
        ("serve", "regress-http-length-overflow.bin"),
        ("serve", "regress-wal-torn-tail.bin"),
        ("serve", "regress-wal-seq-regression.bin"),
        ("serve", "regress-wal-orphan-supervisor-records.bin"),
    ] {
        let path = fuzz_targets::corpus_dir(target).join(pin);
        assert!(path.is_file(), "missing regression pin {}", path.display());
    }
}

#[test]
fn short_fuzz_runs_are_deterministic_per_target() {
    // Same seed + same corpus -> byte-identical schedule. A cheap burst
    // per target keeps this check inside the test budget while still
    // exercising the mutation path (replay alone would not).
    let cfg = FuzzConfig {
        iters: 64,
        ..FuzzConfig::default()
    };
    for target in fuzz_targets::all() {
        let corpus = corpus_for(target.name);
        let a = fuzz::fuzz(&target, &corpus, &cfg);
        let b = fuzz::fuzz(&target, &corpus, &cfg);
        assert_eq!(a.execs, b.execs, "{}: execs diverged", target.name);
        assert_eq!(a.edges, b.edges, "{}: coverage diverged", target.name);
        assert_eq!(
            a.discoveries, b.discoveries,
            "{}: discoveries diverged",
            target.name
        );
    }
}

#[test]
fn json_corpus_inputs_hit_the_serialization_fixed_point() {
    // Differential check (beyond the in-harness assertions): for every
    // committed fuzz input that parses as JSON, parse -> serialize ->
    // parse -> serialize must reach a byte-level fixed point in both the
    // compact and pretty forms, and float formatting must be total.
    let mut parsed = 0usize;
    for data in corpus_for("json") {
        let text = String::from_utf8_lossy(&data);
        let Ok(value) = appvsweb_json::parse(&text) else {
            continue;
        };
        parsed += 1;
        let compact = value.to_compact();
        let reparsed = appvsweb_json::parse(&compact).expect("compact form must reparse");
        assert_eq!(reparsed.to_compact(), compact, "compact fixed point");
        let pretty = value.to_pretty();
        let repretty = appvsweb_json::parse(&pretty).expect("pretty form must reparse");
        assert_eq!(repretty, reparsed, "pretty and compact forms agree");
    }
    assert!(
        parsed >= 10,
        "the json corpus should contain plenty of parseable documents, got {parsed}"
    );
}

#[test]
fn trace_corpus_journals_hit_the_codec_fixed_point() {
    // Same differential law, one type layer up: every committed trace
    // input that decodes as a StudyJournal must survive decode ->
    // encode -> decode losslessly, and the span-tree renderer must be
    // total on it — even on journals no real capture would produce
    // (unbalanced spans, absurd depths).
    use appvsweb::obs::journal::{render_tree, StudyJournal};
    let mut decoded = 0usize;
    for data in corpus_for("trace") {
        let text = String::from_utf8_lossy(&data);
        let Ok(journal) = appvsweb::json::decode::<StudyJournal>(&text) else {
            continue;
        };
        decoded += 1;
        let compact = appvsweb::json::encode(&journal);
        let back: StudyJournal =
            appvsweb::json::decode(&compact).expect("re-encoded journal must reparse");
        assert_eq!(back, journal, "journal codec fixed point");
        for cell in &journal.cells {
            let _ = render_tree(cell);
        }
    }
    assert!(
        decoded >= 2,
        "the trace corpus should contain decodable journals, got {decoded}"
    );
}

#[test]
fn serve_corpus_wal_lines_hit_the_codec_fixed_point() {
    // Differential law for the revision journal: every committed fuzz
    // input in WAL mode (odd first byte) that replays must have each
    // record survive encode -> decode -> encode at a byte-level fixed
    // point, and the replayed fold must produce a state whose JSON
    // codec roundtrips.
    use appvsweb::json::{FromJson, ToJson};
    use appvsweb::serve::{ServeState, WalRecord};
    let mut replayed = 0usize;
    for data in corpus_for("serve") {
        let Some((mode, rest)) = data.split_first() else {
            continue;
        };
        if mode % 2 == 0 {
            continue;
        }
        let text = String::from_utf8_lossy(rest);
        let Ok(records) = appvsweb::serve::replay_lines(&text) else {
            continue;
        };
        if records.is_empty() {
            continue;
        }
        replayed += 1;
        let mut state = ServeState::default();
        for rec in &records {
            let line = rec.encode();
            let back = WalRecord::decode(&line).expect("re-encoded record must decode");
            assert_eq!(back.encode(), line, "WAL codec fixed point");
            state.apply(rec);
        }
        state.requeue_inflight();
        let back = ServeState::from_json(&state.to_json()).expect("state JSON reparses");
        assert_eq!(back, state, "state codec fixed point");
    }
    assert!(
        replayed >= 3,
        "the serve corpus should contain replayable journals, got {replayed}"
    );
}

#[test]
fn population_corpus_sketches_hit_the_codec_fixed_point() {
    // Differential law for the population codecs: every committed input
    // that decodes as a report or sketch must survive decode -> encode
    // -> decode losslessly, every consumer must be total on it (the
    // renderer, quantiles, rankings), and an identity merge must leave
    // the re-encoded bytes at a fixed point.
    use appvsweb::analysis::population::render_population_report;
    use appvsweb::analysis::{PopulationReport, QuantileSketch, TopKSketch};
    let mut decoded = 0usize;
    for data in corpus_for("population") {
        let text = String::from_utf8_lossy(&data);
        if let Ok(report) = appvsweb::json::decode::<PopulationReport>(&text) {
            decoded += 1;
            let compact = appvsweb::json::encode(&report);
            let back: PopulationReport =
                appvsweb::json::decode(&compact).expect("re-encoded report must reparse");
            assert_eq!(back, report, "report codec fixed point");
            let _ = render_population_report(&report);
        } else if let Ok(sketch) = appvsweb::json::decode::<QuantileSketch>(&text) {
            decoded += 1;
            let mut merged = sketch.clone();
            merged.merge(&QuantileSketch::new());
            let canonical = appvsweb::json::encode(&merged);
            let mut twice = merged.clone();
            twice.merge(&QuantileSketch::new());
            assert_eq!(
                appvsweb::json::encode(&twice),
                canonical,
                "identity merge must normalize hostile sketches idempotently"
            );
            let _ = sketch.quantile(0.5);
        } else if let Ok(sketch) = appvsweb::json::decode::<TopKSketch>(&text) {
            decoded += 1;
            let _ = sketch.top(10);
            let compact = appvsweb::json::encode(&sketch);
            let back: TopKSketch =
                appvsweb::json::decode(&compact).expect("re-encoded top-k must reparse");
            assert_eq!(back, sketch, "top-k codec fixed point");
        }
    }
    assert!(
        decoded >= 3,
        "the population corpus should contain decodable documents, got {decoded}"
    );
}
