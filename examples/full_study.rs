//! The full measurement campaign: 50 services × 2 OSes × 2 media.
//!
//! ```text
//! cargo run --release --example full_study [dataset.json]
//! ```
//!
//! Reproduces the complete study of the paper and prints Tables 1–3 plus
//! the headline statistics; optionally exports the dataset as JSON (the
//! original authors publish theirs at recon.meddle.mobi/appvsweb/).

use appvsweb::analysis::figures::{self, FigureId};
use appvsweb::analysis::{render, tables};
use appvsweb::core::dataset;
use appvsweb::core::study::{run_study, StudyConfig};
use appvsweb::netsim::Os;

fn main() {
    let cfg = StudyConfig::default();
    eprintln!("running the full study (this takes a few seconds in release mode)...");
    let t0 = std::time::Instant::now();
    let study = run_study(&cfg);
    eprintln!(
        "done in {:.2?}: {} cells\n",
        t0.elapsed(),
        study.cells.len()
    );

    println!(
        "== Table 1 ==\n{}",
        render::render_table1(&tables::table1(&study))
    );
    println!(
        "== Table 2 ==\n{}",
        render::render_table2(&tables::table2(&study, 20))
    );
    println!(
        "== Table 3 ==\n{}",
        render::render_table3(&tables::table3(&study))
    );

    println!("== Headline comparisons ==");
    for os in [Os::Android, Os::Ios] {
        let aa = figures::cdf(&study, FigureId::AaDomains, os);
        let jac = figures::cdf(&study, FigureId::Jaccard, os);
        let pdf = figures::pdf_1e(&study, os);
        println!(
            "{os}: web contacts more A&A domains for {:.0}% of services; \
             {:.0}% of services share no leaked types across media; \
             modal type difference {:+}",
            aa.fraction_negative() * 100.0,
            jac.at(0.0) * 100.0,
            pdf.mode().unwrap_or(0),
        );
    }

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, dataset::to_json(&study)).expect("write dataset");
        println!("\ndataset exported to {path}");
    }
}
