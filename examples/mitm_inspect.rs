//! Drive the Meddle/mitmproxy substrate directly: intercept a custom
//! origin, inspect decrypted transactions, and watch certificate pinning
//! defeat the proxy — the exact behaviours that shaped the paper's
//! service-selection criteria.
//!
//! ```text
//! cargo run --release --example mitm_inspect
//! ```

use appvsweb::httpsim::{Body, Request, Response, Url};
use appvsweb::mitm::{Meddle, MeddleConfig, OriginServer, ReusePolicy};
use appvsweb::netsim::{SimRng, SimTime};
use appvsweb::tlssim::{CertificateAuthority, PinSet, ServerConfig, TrustStore};

/// A small custom origin: a login API under a public CA.
struct DemoOrigin {
    ca: CertificateAuthority,
}

impl OriginServer for DemoOrigin {
    fn tls_config(&self, host: &str) -> ServerConfig {
        ServerConfig {
            chain: self.ca.chain_for(host),
            supports_resumption: true,
        }
    }
    fn handle(&mut self, req: &Request, _now: SimTime) -> Response {
        if req.url.path.contains("login") {
            Response::ok(Body::json(r#"{"token":"tk_81f4c"}"#))
        } else {
            Response::ok(Body::json(r#"{"items":[1,2,3]}"#))
        }
    }
}

fn main() {
    // Build the world: a public CA every server chains to…
    let public_ca = CertificateAuthority::new("PublicRoot");
    let mut origin = DemoOrigin {
        ca: public_ca.clone(),
    };
    let mut upstream = TrustStore::new();
    upstream.add_root(&public_ca.root);

    // …and the Meddle tunnel, whose CA we install on the "device".
    let mut meddle = Meddle::new(MeddleConfig::default(), upstream.clone(), &SimRng::new(42));
    let mut device_trust = TrustStore::new();
    device_trust.add_root(&public_ca.root);
    device_trust.add_root(&meddle.ca().root);
    println!(
        "installed proxy CA {} on the device\n",
        meddle.ca().root.subject
    );

    // 1. An HTTPS login: decrypted in flight.
    let login = Request::post(
        Url::parse("https://api.demo.example/v1/login").unwrap(),
        Body::form(&[("email", "jane@testmail.example"), ("password", "hunter2!")]),
    );
    meddle
        .exchange(
            &device_trust,
            &PinSet::none(),
            &mut origin,
            login,
            SimTime(0),
            ReusePolicy::app(),
        )
        .expect("interception succeeds");

    // 2. A plaintext beacon: visible without any interception at all.
    let beacon = Request::get(
        Url::parse("http://tracker.demo.example/pixel?gaid=aaaa-bbbb&lat=42.36").unwrap(),
    );
    meddle
        .exchange(
            &device_trust,
            &PinSet::none(),
            &mut origin,
            beacon,
            SimTime(50),
            ReusePolicy::one_shot(),
        )
        .expect("plaintext always flows");

    // 3. A pinned client (the Facebook/Twitter case): interception fails.
    let pinned_leaf = origin
        .tls_config("pinned.demo.example")
        .chain
        .leaf()
        .unwrap()
        .key;
    let pins = PinSet::of([pinned_leaf]);
    let pinned_req = Request::get(Url::parse("https://pinned.demo.example/feed").unwrap());
    let err = meddle
        .exchange(
            &device_trust,
            &pins,
            &mut origin,
            pinned_req,
            SimTime(90),
            ReusePolicy::app(),
        )
        .expect_err("pinning must defeat the forged chain");
    println!("pinned client rejected the proxy: {err}\n");

    // Inspect the capture, mitmproxy-style.
    let trace = meddle.finish_session(SimTime(100));
    println!(
        "captured {} connections, {} decrypted transactions:\n",
        trace.connections.len(),
        trace.transactions.len()
    );
    for conn in &trace.connections {
        println!(
            "  conn #{:<2} {:<28} tls={:<5} decrypted={:<5} {:>6} bytes  {:?}",
            conn.id,
            format!("{}:{}", conn.host, conn.port),
            conn.tls,
            conn.decrypted,
            conn.stats.total_bytes(),
            conn.opaque_reason,
        );
    }
    println!();
    for txn in &trace.transactions {
        let raw = txn.request_bytes();
        let first_line = String::from_utf8_lossy(&raw);
        let first_line = first_line.lines().next().unwrap_or("");
        println!(
            "  {} {} [{}]",
            if txn.plaintext { "HTTP " } else { "HTTPS" },
            first_line,
            txn.host
        );
        if !txn.request.body.is_empty() {
            println!("        body: {}", txn.request.body.as_text());
        }
    }
    println!("\nnote: the pinned connection produced no transaction — exactly why the");
    println!("paper had to exclude Facebook and Twitter from the measured set (§3.1).");
}
