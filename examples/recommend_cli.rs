//! The paper's interactive recommender as a CLI.
//!
//! ```text
//! cargo run --release --example recommend_cli [profile]
//! ```
//!
//! Profiles: `balanced` (default), `location`, `identity`, `device`,
//! `tracking`. Reproduces the custom-suggestion interface the authors
//! hosted at recon.meddle.mobi/appvsweb/: given your privacy priorities,
//! which medium should you use for each service?

use appvsweb::core::study::{run_study, StudyConfig};
use appvsweb::netsim::Os;
use appvsweb::recommend::{recommend, Preferences, Verdict};

fn main() {
    let profile = std::env::args().nth(1).unwrap_or_else(|| "balanced".into());
    let prefs = match profile.as_str() {
        "balanced" => Preferences::balanced(),
        "location" => Preferences::location_sensitive(),
        "identity" => Preferences::identity_sensitive(),
        "device" => Preferences::device_sensitive(),
        "tracking" => Preferences::tracking_averse(),
        other => {
            eprintln!("unknown profile '{other}' (use balanced|location|identity|device|tracking)");
            std::process::exit(2);
        }
    };

    eprintln!("measuring 50 services (profile: {profile})...");
    let study = run_study(&StudyConfig::default());
    let recs = recommend(&study, &prefs);

    let mut app = 0;
    let mut web = 0;
    let mut either = 0;
    println!(
        "{:<28} {:<8} {:>9} {:>9}  {:<8} reasons",
        "service", "os", "app", "web", "verdict"
    );
    println!("{}", "-".repeat(110));
    for r in recs.iter().filter(|r| r.os == Os::Android) {
        let verdict = match r.verdict {
            Verdict::UseApp => {
                app += 1;
                "APP"
            }
            Verdict::UseWeb => {
                web += 1;
                "WEB"
            }
            Verdict::Either => {
                either += 1;
                "either"
            }
        };
        println!(
            "{:<28} {:<8} {:>9.2} {:>9.2}  {:<8} {}",
            r.service_name,
            r.os.to_string(),
            r.app_score,
            r.web_score,
            verdict,
            r.reasons.first().map(String::as_str).unwrap_or("-")
        );
    }
    println!(
        "\nVerdicts under '{profile}': use the APP for {app}, the WEB for {web}, either for {either}."
    );

    // The what-if matrix: how every preset would advise each service.
    let matrix = appvsweb::recommend::what_if_matrix(&study);
    println!("\n== What-if matrix (Android): every preset profile at a glance ==");
    println!("{:<18} {}", "service", matrix.profiles.join("  "));
    for (service, verdicts) in matrix.rows.iter().take(15) {
        let cells: Vec<&str> = verdicts
            .iter()
            .map(|v| match v {
                appvsweb::recommend::Verdict::UseApp => "app",
                appvsweb::recommend::Verdict::UseWeb => "WEB",
                appvsweb::recommend::Verdict::Either => "~",
            })
            .collect();
        println!(
            "{:<18} {:>8}  {:>8}  {:>8}  {:>6}  {:>8}",
            service, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
    println!(
        "({} more services; run full_study for the dataset)",
        matrix.rows.len().saturating_sub(15)
    );
    println!("\nAs the paper found: there is no single answer — it depends on your priorities.");
}
