//! Quickstart: measure one service both ways and compare.
//!
//! ```text
//! cargo run --release --example quickstart [service-id]
//! ```
//!
//! Runs the app and Web versions of a service (default: The Weather
//! Channel) through the full pipeline — Meddle capture, TLS interception,
//! PII detection, EasyList categorization — and prints what each medium
//! exposed, exactly the comparison the paper makes per service.

use appvsweb::adblock::Categorizer;
use appvsweb::analysis::{analyze_trace, CellAnalysis};
use appvsweb::core::Testbed;
use appvsweb::netsim::Os;
use appvsweb::pii::CombinedDetector;
use appvsweb::services::{Catalog, Medium, SessionConfig};

fn describe(cell: &CellAnalysis) {
    let medium = match cell.medium {
        Medium::App => "APP",
        Medium::Web => "WEB",
    };
    println!("--- {medium} ---");
    println!("  A&A domains contacted: {}", cell.aa_domains.len());
    println!("  flows to A&A domains:  {}", cell.aa_flows);
    println!(
        "  bytes to A&A domains:  {:.2} MB",
        cell.aa_bytes as f64 / 1e6
    );
    println!("  domains receiving PII: {}", cell.leak_domains.len());
    if cell.leaked_types.is_empty() {
        println!("  leaked PII types:      (none)");
    } else {
        let types: Vec<&str> = cell.leaked_types.iter().map(|t| t.label()).collect();
        println!("  leaked PII types:      {}", types.join(", "));
        for (t, agg) in &cell.per_type {
            println!(
                "    {:<12} {:>4} leak(s) to {}",
                t.label(),
                agg.count,
                agg.domains.iter().cloned().collect::<Vec<_>>().join(", ")
            );
        }
    }
}

fn main() {
    let service_id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "weather-channel".into());
    let catalog = Catalog::paper();
    let Some(spec) = catalog.get(&service_id) else {
        eprintln!("unknown service '{service_id}'. Available:");
        for s in catalog.testable() {
            eprintln!("  {}", s.id);
        }
        std::process::exit(2);
    };

    let os = Os::Android;
    println!("Should you use the app for {}? (on {os})\n", spec.name);

    let mut cells = Vec::new();
    for medium in Medium::BOTH {
        // Fresh testbed per arm: factory-reset phone, fresh account,
        // Meddle tunnel with its CA installed — the §3.2 procedure.
        let mut tb = Testbed::for_cell(spec, os, 2016);
        let trace = tb.run_session(spec, os, medium, &SessionConfig::default());
        let detector = CombinedDetector::new(&tb.truth, None);
        let categorizer = Categorizer::bundled(spec.first_party);
        let cell = analyze_trace(&trace, spec, os, medium, &detector, &categorizer);
        describe(&cell);
        cells.push(cell);
    }

    let (app, web) = (&cells[0], &cells[1]);
    println!("\n=== Verdict ===");
    if app.leaked_types.is_empty() && web.leaked_types.is_empty() {
        println!("Neither medium leaked PII in this session. Use whichever you like.");
        return;
    }
    let app_only: Vec<&str> = app
        .leaked_types
        .difference(&web.leaked_types)
        .map(|t| t.label())
        .collect();
    let web_only: Vec<&str> = web
        .leaked_types
        .difference(&app.leaked_types)
        .map(|t| t.label())
        .collect();
    if !app_only.is_empty() {
        println!("Only the app leaks:  {}", app_only.join(", "));
    }
    if !web_only.is_empty() {
        println!("Only the web leaks:  {}", web_only.join(", "));
    }
    println!(
        "The web version contacts {} A&A domains vs {} in the app.",
        web.aa_domains.len(),
        app.aa_domains.len()
    );
    println!("As the paper concludes: it depends on which PII you care about.");
}
