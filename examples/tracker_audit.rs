//! Audit one service's tracker ecosystem in depth: who is contacted,
//! who receives PII, under which encodings, and over which transport.
//!
//! ```text
//! cargo run --release --example tracker_audit [service-id] [android|ios]
//! ```

use appvsweb::adblock::{Categorizer, Category};
use appvsweb::analysis::leaks::scan_text;
use appvsweb::core::Testbed;
use appvsweb::httpsim::Host;
use appvsweb::netsim::Os;
use appvsweb::pii::GroundTruthMatcher;
use appvsweb::services::{Catalog, Medium, SessionConfig};
use std::collections::BTreeMap;

fn main() {
    let service_id = std::env::args().nth(1).unwrap_or_else(|| "grubhub".into());
    let os = match std::env::args().nth(2).as_deref() {
        Some("ios") => Os::Ios,
        _ => Os::Android,
    };
    let catalog = Catalog::paper();
    let Some(spec) = catalog.get(&service_id) else {
        eprintln!("unknown service '{service_id}'");
        std::process::exit(2);
    };
    println!("=== Tracker audit: {} on {os} ===\n", spec.name);

    let categorizer = Categorizer::bundled(spec.first_party);
    for medium in Medium::BOTH {
        let mut tb = Testbed::for_cell(spec, os, 2016);
        let matcher = GroundTruthMatcher::new(&tb.truth);
        let trace = tb.run_session(spec, os, medium, &SessionConfig::default());

        let label = match medium {
            Medium::App => "APP",
            Medium::Web => "WEB",
        };
        println!(
            "--- {label}: {} connections, {} transactions ---",
            trace.connections.len(),
            trace.transactions.len()
        );

        // Per-domain rollup: flows, bytes, category, findings w/ encodings.
        #[derive(Default)]
        struct DomainStat {
            flows: u64,
            bytes: u64,
            category: Option<Category>,
            plaintext: bool,
            findings: BTreeMap<String, String>, // type label -> encoding
        }
        let mut domains: BTreeMap<String, DomainStat> = BTreeMap::new();
        for conn in &trace.connections {
            let d = Host::new(&conn.host).registrable_domain();
            let e = domains.entry(d).or_default();
            e.flows += 1;
            e.bytes += conn.stats.total_bytes();
            e.category
                .get_or_insert_with(|| categorizer.categorize_host(&conn.host));
            e.plaintext |= !conn.tls;
        }
        for txn in &trace.transactions {
            let d = Host::new(&txn.host).registrable_domain();
            let text = scan_text(&txn.request_bytes());
            for f in matcher.scan(&text) {
                domains
                    .entry(d.clone())
                    .or_default()
                    .findings
                    .insert(f.pii_type.label().to_string(), f.encoding.clone());
            }
        }

        let mut rows: Vec<(&String, &DomainStat)> = domains.iter().collect();
        rows.sort_by_key(|(_, stat)| std::cmp::Reverse(stat.bytes));
        for (domain, stat) in rows {
            let cat = match stat.category {
                Some(Category::FirstParty) => "1st-party",
                Some(Category::Advertising) => "ADVERT",
                Some(Category::Analytics) => "ANALYT",
                Some(Category::OtherThirdParty) => "3rd-party",
                None => "?",
            };
            let findings: Vec<String> = stat
                .findings
                .iter()
                .map(|(t, enc)| format!("{t}({enc})"))
                .collect();
            println!(
                "  {:<26} {:<9} {:>4} flows {:>9} B{}  {}",
                domain,
                cat,
                stat.flows,
                stat.bytes,
                if stat.plaintext { "  PLAINTEXT" } else { "" },
                if findings.is_empty() {
                    "-".to_string()
                } else {
                    findings.join(", ")
                }
            );
        }
        println!();
    }
    println!("(encodings show HOW each value travelled: plain, percent, stripseparators,");
    println!(" lowercase>md5 hashes, base64(payload) wrappers, …)");
}
