//! Measure the detection pipeline's accuracy on a labelled corpus.
//!
//! ```text
//! cargo run --release --example detector_eval
//! ```
//!
//! The paper manually verifies ReCon predictions against ground truth;
//! this example mechanizes that audit: plant every PII type under every
//! encoding chain, mix in clean flows and decoy flows carrying somebody
//! else's identity, and score the matcher (and the combined pipeline)
//! with precision/recall per type and per encoding.

use appvsweb::pii::eval::{build_corpus, evaluate};
use appvsweb::pii::{CombinedDetector, GroundTruth, GroundTruthMatcher};

fn main() {
    let truth = GroundTruth::synthetic(2016).with_device(
        "Nexus 5",
        &[
            ("imei", "354436069633711"),
            ("mac", "02:00:4c:4f:4f:50"),
            ("ad_id", "9d2a1f6c-0b51-4ef2-a1b0-cc9e34ad8f01"),
        ],
        Some((42.361145, -71.057083)),
    );
    let corpus = build_corpus(&truth, 200);
    println!(
        "corpus: {} flows ({} positives, 200 clean, {} decoys)\n",
        corpus.len(),
        corpus.iter().filter(|f| !f.truth.is_empty()).count(),
        corpus.iter().filter(|f| f.encoding == "decoy").count()
    );

    let matcher = GroundTruthMatcher::new(&truth);
    let combined = CombinedDetector::new(&truth, None);

    for (name, eval) in [
        (
            "ground-truth matcher",
            evaluate(&corpus, |t| matcher.types_in(t)),
        ),
        (
            "combined detector",
            evaluate(&corpus, |t| combined.scan("sink.example", t).types()),
        ),
    ] {
        println!("=== {name} ===");
        println!(
            "overall: precision {:.3}  recall {:.3}  F1 {:.3}",
            eval.overall.precision(),
            eval.overall.recall(),
            eval.overall.f1()
        );
        println!("\nper PII type:");
        for (t, c) in &eval.per_type {
            if c.true_positives + c.false_negatives + c.false_positives == 0 {
                continue;
            }
            println!(
                "  {:<12} P {:.2}  R {:.2}  (tp {} fp {} fn {})",
                t.label(),
                c.precision(),
                c.recall(),
                c.true_positives,
                c.false_positives,
                c.false_negatives
            );
        }
        println!("\nper encoding (worst first):");
        let mut rows: Vec<_> = eval
            .per_encoding
            .iter()
            .filter(|(label, c)| *label != "none" && c.true_positives + c.false_negatives > 0)
            .collect();
        rows.sort_by(|a, b| a.1.recall().partial_cmp(&b.1.recall()).unwrap());
        for (label, c) in rows.iter().take(12) {
            println!(
                "  {:<24} R {:.2}  ({} planted)",
                label,
                c.recall(),
                c.true_positives + c.false_negatives
            );
        }
        println!();
    }
    println!("decoy flows (another identity's PII) must never be attributed to our user;");
    println!("false positives above would indicate the controlled-experiment premise broke.");
}
