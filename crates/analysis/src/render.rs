//! Text rendering of tables and figures, in the paper's layout.

use crate::figures::Figure;
use crate::tables::{Table1, Table2Row, Table3Row};
use appvsweb_pii::PiiType;
use appvsweb_services::Medium;
use std::fmt::Write as _;

fn medium_label(m: Medium) -> &'static str {
    match m {
        Medium::App => "App",
        Medium::Web => "Web",
    }
}

/// Render Table 1 with the identifier ✓-matrix.
pub fn render_table1(t: &Table1) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<15} {:<4} {:>4} {:>6} {:>8} {:>12}  {}",
        "Group",
        "Med",
        "#Svc",
        "Rank",
        "%Leak",
        "Domains",
        PiiType::ALL.map(|t| t.abbrev()).join(" ")
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for row in &t.rows {
        let matrix: Vec<&str> = PiiType::ALL
            .iter()
            .map(|t| {
                if row.leaked_types.contains(t) {
                    "x"
                } else {
                    "."
                }
            })
            .collect();
        let rank = row
            .avg_rank
            .map(|r| format!("{r:.1}"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<15} {:<4} {:>4} {:>6} {:>7.1}% {:>5.1} ± {:<4.1}  {}",
            row.group,
            medium_label(row.medium),
            row.services,
            rank,
            row.pct_leaking * 100.0,
            row.avg_leak_domains,
            row.std_leak_domains,
            matrix.join("  ")
        );
    }
    out
}

/// Render Table 2 (top A&A domains).
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>4} {:>3} {:>4}  {:>9} {:>9}  {:>3} {:>3} {:>3}  {:>7}",
        "A&A Domain", "App", "∩", "Web", "AvgL:App", "AvgL:Web", "App", "∩", "Web", "Total"
    );
    let _ = writeln!(out, "{}", "-".repeat(84));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<20} {:>4} {:>3} {:>4}  {:>9.1} {:>9.1}  {:>3} {:>3} {:>3}  {:>7}",
            r.organization,
            r.services_app,
            r.services_both,
            r.services_web,
            r.avg_leaks_app,
            r.avg_leaks_web,
            r.ids_app,
            r.ids_both,
            r.ids_web,
            r.total_leaks
        );
    }
    out
}

/// Render Table 3 (PII types).
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>4} {:>3} {:>4}  {:>9} {:>9}  {:>4} {:>3} {:>4}",
        "PII", "App", "∩", "Web", "AvgL:App", "AvgL:Web", "App", "∩", "Web"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>4} {:>3} {:>4}  {:>9.1} {:>9.1}  {:>4} {:>3} {:>4}",
            r.pii_type.label(),
            r.services_app,
            r.services_both,
            r.services_web,
            r.avg_leaks_app,
            r.avg_leaks_web,
            r.domains_app,
            r.domains_both,
            r.domains_web
        );
    }
    out
}

/// Render a figure as plot-ready series (x\ty rows per OS), the format a
/// gnuplot/matplotlib script consumes to redraw the paper's plots.
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure {}", fig.id.label());
    for series in &fig.series {
        let _ = writeln!(out, "## series: {}", series.os);
        for (x, y) in &series.points {
            let _ = writeln!(out, "{x:.4}\t{y:.2}");
        }
    }
    out
}

/// A compact ASCII plot of a figure (for terminal inspection).
pub fn ascii_plot(fig: &Figure, width: usize, height: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", fig.id.label());
    let all: Vec<(f64, f64)> = fig.series.iter().flat_map(|s| s.points.clone()).collect();
    if all.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (xmin, xmax) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), (x, _)| {
        (lo.min(*x), hi.max(*x))
    });
    let span = (xmax - xmin).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (si, series) in fig.series.iter().enumerate() {
        let glyph = if si == 0 { '*' } else { 'o' };
        for (x, y) in &series.points {
            let col = (((x - xmin) / span) * (width - 1) as f64).round() as usize;
            let row = ((1.0 - (y / 100.0).clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }
    for row in grid {
        let _ = writeln!(out, "|{}", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    let _ = writeln!(out, " x: [{xmin:.1} .. {xmax:.1}]   * = Android, o = iOS");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{FigureId, FigureSeries};
    use appvsweb_netsim::Os;

    #[test]
    fn figure_rendering_includes_both_series() {
        let fig = Figure {
            id: FigureId::AaDomains,
            series: vec![
                FigureSeries {
                    os: Os::Android,
                    points: vec![(-5.0, 50.0), (0.0, 100.0)],
                },
                FigureSeries {
                    os: Os::Ios,
                    points: vec![(-3.0, 100.0)],
                },
            ],
        };
        let text = render_figure(&fig);
        assert!(text.contains("series: Android"));
        assert!(text.contains("series: iOS"));
        assert!(text.contains("-5.0000\t50.00"));
        let plot = ascii_plot(&fig, 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
    }

    #[test]
    fn empty_figure_plots_gracefully() {
        let fig = Figure {
            id: FigureId::Jaccard,
            series: vec![],
        };
        assert!(ascii_plot(&fig, 20, 5).contains("no data"));
    }
}
