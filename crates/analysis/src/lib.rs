//! # appvsweb-analysis
//!
//! Leak classification, aggregation, and the table/figure builders for
//! the `appvsweb` reproduction of *"Should You Use the App for That?"*
//! (IMC 2016).
//!
//! The pipeline stage order mirrors the paper:
//!
//! 1. [`leaks::analyze_trace`] takes one session's captured [`Trace`],
//!    runs the combined PII detector over every decrypted transaction,
//!    categorizes destinations with the EasyList engine, applies the
//!    paper's leak definition (§3.2 "Defining a PII Leak"), and produces
//!    a [`CellAnalysis`].
//! 2. [`tables`] and [`figures`] aggregate the 200 cells
//!    (50 services × 2 OSes × 2 media) into Table 1, Table 2, Table 3
//!    and Figures 1a–1f.
//! 3. [`sketch`] and [`population`] scale the same aggregation to
//!    population campaigns: mergeable quantile/top-k sketches and the
//!    per-shard [`population::PopulationAggregate`] that
//!    `appvsweb-population` folds across 10k–1M simulated users.
//! 4. [`stats`] provides the CDF/PDF/Jaccard machinery; [`render`]
//!    formats tables and figure series as text, in the same layout the
//!    paper prints; [`osdiff`] computes the paper's Android-vs-iOS
//!    comparisons; [`report`] renders the whole evaluation as markdown.
//!
//! [`Trace`]: appvsweb_mitm::Trace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod figures;
pub mod leaks;
pub mod osdiff;
pub mod population;
pub mod render;
pub mod report;
pub mod sketch;
pub mod stats;
pub mod tables;

pub use drift::{
    diff_profiles, headline_stats, profiles_of, DriftAlarm, DriftKind, HeadlineStats, LeakProfile,
};
pub use leaks::{
    analyze_trace, CellAnalysis, CellFailure, LeakEvent, ServiceComparison, Study, StudyHealth,
};
pub use population::{PopulationAggregate, PopulationReport};
pub use sketch::{QuantileSketch, TopKSketch};
pub use stats::{Cdf, Pdf};
