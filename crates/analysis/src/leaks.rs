//! Leak classification (§3.2 "Defining a PII Leak").
//!
//! The paper's rule, verbatim: a transmission of PII is a **leak** when
//! "(1) it is transmitted over the Internet unencrypted, thus exposing
//! the data to eavesdroppers, or (2) it is sent to third parties
//! (encrypted or plaintext) and is not required for logging into the
//! service". Credentials (username, password, e-mail) sent to a first
//! party — or a single sign-on service — over HTTPS are not leaks; all
//! other transmitted PII is, including a birthday sent to the first
//! party over HTTPS.

use appvsweb_adblock::{Categorizer, Category};
use appvsweb_httpsim::Host;
use appvsweb_mitm::Trace;
use appvsweb_netsim::{FaultCounts, Os};
use appvsweb_pii::{CombinedDetector, PiiType};
use appvsweb_services::{Medium, ServiceCategory, ServiceSpec};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

/// One leaked (transaction, PII-type) instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakEvent {
    /// The PII class.
    pub pii_type: PiiType,
    /// Destination registrable domain.
    pub domain: String,
    /// Destination category.
    pub category: Category,
    /// Whether it travelled in plaintext.
    pub plaintext: bool,
}

/// Per-PII-type aggregates within one cell.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TypeAggregate {
    /// Total leak instances of this type.
    pub count: u64,
    /// Domains that received it.
    pub domains: BTreeSet<String>,
}

/// The analysis of one (service, OS, medium) session.
#[derive(Clone, Debug)]
pub struct CellAnalysis {
    /// Service slug.
    pub service_id: String,
    /// Service display name.
    pub service_name: String,
    /// Service category.
    pub category: ServiceCategory,
    /// App Annie rank.
    pub rank: u32,
    /// Test OS.
    pub os: Os,
    /// App or Web.
    pub medium: Medium,
    /// Unique A&A registrable domains contacted (paper Fig. 1a).
    pub aa_domains: BTreeSet<String>,
    /// TCP connections to A&A domains (paper Fig. 1b).
    pub aa_flows: u64,
    /// Bytes to/from A&A domains (paper Fig. 1c).
    pub aa_bytes: u64,
    /// All TCP connections in the session.
    pub total_flows: u64,
    /// Every leak instance.
    pub leaks: Vec<LeakEvent>,
    /// Registrable domains that received at least one leak (Fig. 1d).
    pub leak_domains: BTreeSet<String>,
    /// Distinct leaked PII types (Figs. 1e/1f, Table 1 matrix).
    pub leaked_types: BTreeSet<PiiType>,
    /// Per-type aggregates (Table 3).
    pub per_type: BTreeMap<PiiType, TypeAggregate>,
    /// Per-A&A-domain leak counts (Table 2).
    pub per_domain_leaks: BTreeMap<String, u64>,
    /// Per-A&A-domain leaked types (Table 2).
    pub per_domain_types: BTreeMap<String, BTreeSet<PiiType>>,
    /// Injected faults observed during this cell's session (all zero on
    /// the golden path).
    pub fault_counts: FaultCounts,
    /// Client retries the session spent recovering from transient
    /// failures.
    pub retries: u64,
}

impl CellAnalysis {
    /// Whether this cell leaked any PII at all.
    pub fn leaked(&self) -> bool {
        !self.leaked_types.is_empty()
    }

    /// Total leak instances.
    pub fn leak_count(&self) -> u64 {
        self.leaks.len() as u64
    }
}

/// Analyze one captured trace.
///
/// `detector` must be built from the same ground truth the session used;
/// `categorizer` must carry the service's first-party domains.
pub fn analyze_trace(
    trace: &Trace,
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    detector: &CombinedDetector,
    categorizer: &Categorizer,
) -> CellAnalysis {
    let _span = appvsweb_obs::span!("analysis.analyze", "{}/{os:?}/{medium:?}", spec.id);
    appvsweb_obs::counter!("analysis.cells_analyzed");
    let mut cell = CellAnalysis {
        service_id: spec.id.to_string(),
        service_name: spec.name.to_string(),
        category: spec.category,
        rank: spec.rank,
        os,
        medium,
        aa_domains: BTreeSet::new(),
        aa_flows: 0,
        aa_bytes: 0,
        total_flows: trace.connections.len() as u64,
        leaks: Vec::new(),
        leak_domains: BTreeSet::new(),
        leaked_types: BTreeSet::new(),
        per_type: BTreeMap::new(),
        per_domain_leaks: BTreeMap::new(),
        per_domain_types: BTreeMap::new(),
        fault_counts: trace.faults.clone(),
        retries: trace.retries,
    };

    // Hosts repeat heavily within a trace (every beacon to the same
    // endpoint); memoize the registrable-domain split and the EasyList
    // categorization per host. Categorization is a pure function of the
    // host, so this is observationally identical to recomputing.
    let mut host_memo: HashMap<&str, (String, Category)> = HashMap::new();

    // --- Connection-level accounting (works even for opaque flows). ---
    for conn in &trace.connections {
        let (domain, category) = memoized_host(&mut host_memo, &conn.host, categorizer);
        if category.is_aa() {
            cell.aa_domains.insert(domain.clone());
            cell.aa_flows += 1;
            cell.aa_bytes += conn.stats.total_bytes();
        }
    }

    // --- Transaction-level PII detection (decrypted flows only). ------
    // Identical request texts (repeated beacons) are scanned once.
    let mut cache: HashMap<u64, Vec<PiiType>> = HashMap::new();
    for txn in &trace.transactions {
        let text = scan_text_of(&txn.request);
        let mut hasher = DefaultHasher::new();
        text.hash(&mut hasher);
        txn.host.hash(&mut hasher);
        let key = hasher.finish();
        let (domain_label, category) = memoized_host(&mut host_memo, &txn.host, categorizer);
        let domain_label = domain_label.clone();
        let types = cache
            .entry(key)
            .or_insert_with(|| detector.scan(&domain_label, &text).types())
            .clone();

        if types.is_empty() {
            continue;
        }
        for t in types {
            if !is_leak(t, category, txn.plaintext) {
                continue;
            }
            let domain = domain_label.clone();
            appvsweb_obs::counter!("analysis.leaks");
            appvsweb_obs::event!(
                "analysis.leak",
                "{t:?} -> {domain} ({category:?}) plaintext={}",
                txn.plaintext
            );
            cell.leaks.push(LeakEvent {
                pii_type: t,
                domain: domain.clone(),
                category,
                plaintext: txn.plaintext,
            });
            cell.leak_domains.insert(domain.clone());
            cell.leaked_types.insert(t);
            let agg = cell.per_type.entry(t).or_default();
            agg.count += 1;
            agg.domains.insert(domain.clone());
            if category.is_aa() {
                *cell.per_domain_leaks.entry(domain.clone()).or_default() += 1;
                cell.per_domain_types.entry(domain).or_default().insert(t);
            }
        }
    }

    appvsweb_obs::event!(
        "analysis.cell",
        "flows={} aa_flows={} leaks={}",
        cell.total_flows,
        cell.aa_flows,
        cell.leaks.len()
    );
    cell
}

/// Memoized `host -> (registrable domain, EasyList category)`; both are
/// pure functions of the host string, recomputed once per distinct host
/// per trace instead of once per connection/transaction.
fn memoized_host<'a>(
    memo: &mut HashMap<&'a str, (String, Category)>,
    host: &'a str,
    categorizer: &Categorizer,
) -> (String, Category) {
    let entry = memo.entry(host).or_insert_with(|| {
        (
            Host::new(host).registrable_domain(),
            categorizer.categorize_host(host),
        )
    });
    (entry.0.clone(), entry.1)
}

/// The flow text the detectors scan: the raw request wire bytes with the
/// `User-Agent` header redacted. Every browser UA carries the hardware
/// model ("Nexus 5 Build/KTU84P"); the paper does not count that ambient
/// header as a Device-Name leak — device info only counts when a party
/// explicitly collects it in a payload (and indeed Table 3 reports zero
/// web-side Device Name leaks).
pub fn scan_text(request_bytes: &[u8]) -> String {
    let text = String::from_utf8_lossy(request_bytes);
    text.lines()
        .filter(|line| {
            let lower = line.to_ascii_lowercase();
            !lower.starts_with("user-agent:")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Structured variant of [`scan_text`]: builds the scan text from a
/// parsed request, *inflating gzip-compressed bodies first* — SDK batch
/// uploads (e.g. Flurry) travel with `Content-Encoding: gzip`, and the
/// plaintext is only visible after decompression, exactly as mitmproxy
/// exposes it.
pub fn scan_text_of(request: &appvsweb_httpsim::Request) -> String {
    use appvsweb_httpsim::compress::gzip_decompress_into;
    let mut out = String::with_capacity(256 + request.body.len());
    out.push_str(request.method.as_str());
    out.push(' ');
    out.push_str(&request.url.request_target());
    out.push_str(" HTTP/1.1\n");
    let mut gzipped = false;
    for (name, value) in request.headers.iter() {
        if name.eq_ignore_ascii_case("user-agent") {
            continue; // ambient hardware-model header, not a leak
        }
        if name.eq_ignore_ascii_case("content-encoding") && value.eq_ignore_ascii_case("gzip") {
            gzipped = true;
        }
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push('\n');
    }
    out.push('\n');
    if gzipped {
        // Decompress into a pooled scratch buffer; the plaintext only
        // lives long enough to be appended to the scan text, and the
        // guard scrubs it before the buffer is recycled.
        let mut plain = appvsweb_netsim::pool::take_with_capacity(request.body.len() * 3);
        match gzip_decompress_into(&request.body.bytes, &mut plain) {
            Ok(()) => out.push_str(&String::from_utf8_lossy(&plain)),
            // Broken compression: fall back to the raw (opaque) bytes.
            Err(_) => out.push_str(&request.body.as_text()),
        }
    } else {
        out.push_str(&request.body.as_text());
    }
    out
}

/// The paper's leak rule for one detected transmission.
pub fn is_leak(t: PiiType, destination: Category, plaintext: bool) -> bool {
    if plaintext {
        return true; // rule (1): anything unencrypted is exposed
    }
    match destination {
        Category::FirstParty => !t.is_credential(),
        // Third parties (A&A or otherwise): everything is a leak.
        _ => true,
    }
}

/// Completeness ledger for a study run. A live measurement campaign
/// never finishes perfectly clean; the ledger says exactly how much of
/// the work list made it into [`Study::cells`] and what went wrong on
/// the way, so every table and figure can annotate its own coverage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StudyHealth {
    /// Cells in the work list (every testable service × OS × medium).
    pub cells_attempted: u64,
    /// Cells that produced an analysis (possibly after retries).
    pub cells_completed: u64,
    /// Cells that needed more than one attempt.
    pub cells_retried: u64,
    /// Cells that exhausted their attempts and are absent from `cells`.
    pub cells_failed: u64,
    /// Injected-fault tally across all completed sessions, plus one
    /// `cell_panics` count per panicked attempt.
    pub faults: FaultCounts,
    /// Client retries spent across all completed sessions.
    pub session_retries: u64,
    /// Labels (`service/os/medium`) of the failed cells, sorted.
    pub failed_cells: Vec<String>,
    /// Failed cells with their captured panic payloads, sorted by cell
    /// label. `failed_cells` stays as the bare-label view; this is the
    /// diagnosable one.
    pub failures: Vec<CellFailure>,
    /// Workers the supervised executor reaped for missing their
    /// sim-clock heartbeat deadline (always 0 under the batch runner,
    /// which has no supervisor).
    pub supervisor_reaps: u64,
    /// Cells quarantined as poison after exhausting their supervised
    /// retries; each also appears in `failures` with its payload.
    pub cells_quarantined: u64,
}

/// Why one cell exhausted its attempts: the label plus the panic payload
/// of the final attempt (the string that used to be swallowed by the
/// study runner's `catch_unwind`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CellFailure {
    /// Cell label, `service/os/medium`.
    pub cell: String,
    /// Panic payload of the last failed attempt.
    pub error: String,
}

impl StudyHealth {
    /// Whether every attempted cell produced an analysis.
    pub fn is_complete(&self) -> bool {
        self.cells_failed == 0
    }

    /// Invariant: every attempted cell is either completed or failed.
    pub fn all_accounted(&self) -> bool {
        self.cells_completed + self.cells_failed == self.cells_attempted
    }

    /// One-line human summary for reports and CLI output.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{}/{} cells completed ({} retried, {} failed); {} faults injected, {} client retries",
            self.cells_completed,
            self.cells_attempted,
            self.cells_retried,
            self.cells_failed,
            self.faults.total(),
            self.session_retries
        );
        // Supervisor columns only exist under the serve executor; the
        // batch runner's summaries stay exactly as they always were.
        if self.supervisor_reaps > 0 || self.cells_quarantined > 0 {
            line.push_str(&format!(
                "; {} workers reaped, {} cells quarantined",
                self.supervisor_reaps, self.cells_quarantined
            ));
        }
        line
    }
}

/// All cells of a full study (50 services × 2 OSes × 2 media).
#[derive(Clone, Debug, Default)]
pub struct Study {
    /// Every analyzed cell.
    pub cells: Vec<CellAnalysis>,
    /// How completely the campaign covered its work list.
    pub health: StudyHealth,
}

/// App-vs-web comparison for one service on one OS (one point in each
/// of Figures 1a–1f).
#[derive(Clone, Debug)]
pub struct ServiceComparison {
    /// Service slug.
    pub service_id: String,
    /// OS this pair was measured on.
    pub os: Os,
    /// (app − web) unique A&A domains contacted.
    pub aa_domain_diff: i64,
    /// (app − web) flows to A&A domains.
    pub aa_flow_diff: i64,
    /// (app − web) bytes to A&A domains.
    pub aa_byte_diff: i64,
    /// (app − web) domains receiving PII.
    pub leak_domain_diff: i64,
    /// (app − web) distinct leaked identifier types.
    pub leaked_type_diff: i64,
    /// Jaccard index of the leaked-type sets.
    pub jaccard: f64,
}

impl Study {
    /// Cells for one OS and medium.
    pub fn cells_for(&self, os: Os, medium: Medium) -> impl Iterator<Item = &CellAnalysis> {
        self.cells
            .iter()
            .filter(move |c| c.os == os && c.medium == medium)
    }

    /// Find a specific cell.
    pub fn cell(&self, service_id: &str, os: Os, medium: Medium) -> Option<&CellAnalysis> {
        self.cells
            .iter()
            .find(|c| c.service_id == service_id && c.os == os && c.medium == medium)
    }

    /// Pair up app and web cells per (service, OS) for the figures.
    pub fn comparisons(&self) -> Vec<ServiceComparison> {
        let mut out = Vec::new();
        for os in [Os::Android, Os::Ios] {
            for app in self.cells_for(os, Medium::App) {
                let Some(web) = self.cell(&app.service_id, os, Medium::Web) else {
                    continue;
                };
                out.push(ServiceComparison {
                    service_id: app.service_id.clone(),
                    os,
                    aa_domain_diff: app.aa_domains.len() as i64 - web.aa_domains.len() as i64,
                    aa_flow_diff: app.aa_flows as i64 - web.aa_flows as i64,
                    aa_byte_diff: app.aa_bytes as i64 - web.aa_bytes as i64,
                    leak_domain_diff: app.leak_domains.len() as i64 - web.leak_domains.len() as i64,
                    leaked_type_diff: app.leaked_types.len() as i64 - web.leaked_types.len() as i64,
                    jaccard: crate::stats::jaccard(&app.leaked_types, &web.leaked_types),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leak_rule_matches_the_paper() {
        use Category::*;
        // Plaintext is always a leak, even credentials to first party.
        assert!(is_leak(PiiType::Password, FirstParty, true));
        assert!(is_leak(PiiType::Location, FirstParty, true));
        // Credentials to first party over HTTPS: NOT leaks.
        assert!(!is_leak(PiiType::Password, FirstParty, false));
        assert!(!is_leak(PiiType::Username, FirstParty, false));
        assert!(!is_leak(PiiType::Email, FirstParty, false));
        // Non-credential PII to first party over HTTPS IS a leak
        // ("a birthday sent to a first party using encryption is a leak").
        assert!(is_leak(PiiType::Birthday, FirstParty, false));
        assert!(is_leak(PiiType::Location, FirstParty, false));
        // Everything to third parties is a leak, encrypted or not.
        assert!(is_leak(PiiType::Password, Analytics, false));
        assert!(is_leak(PiiType::Email, Advertising, false));
        assert!(is_leak(PiiType::UniqueId, OtherThirdParty, false));
    }
}

appvsweb_json::impl_json!(struct LeakEvent { pii_type, domain, category, plaintext });
appvsweb_json::impl_json!(struct TypeAggregate { count, domains });
appvsweb_json::impl_json!(struct CellAnalysis {
    service_id, service_name, category, rank, os, medium, aa_domains, aa_flows, aa_bytes,
    total_flows, leaks, leak_domains, leaked_types, per_type, per_domain_leaks, per_domain_types,
    fault_counts, retries
});
appvsweb_json::impl_json!(struct StudyHealth {
    cells_attempted, cells_completed, cells_retried, cells_failed, faults, session_retries,
    failed_cells, failures, supervisor_reaps, cells_quarantined
});
appvsweb_json::impl_json!(struct CellFailure { cell, error });
appvsweb_json::impl_json!(struct Study { cells, health });
appvsweb_json::impl_json!(struct ServiceComparison {
    service_id, os, aa_domain_diff, aa_flow_diff, aa_byte_diff, leak_domain_diff,
    leaked_type_diff, jaccard
});
