//! Mergeable streaming sketches for population-scale aggregation.
//!
//! A 1M-user campaign cannot keep per-user samples: the shard states it
//! folds must be *sketches* — bounded-size summaries whose `merge` is a
//! homomorphism of stream concatenation. Both sketches here are built
//! around that law (and `tests/population_laws.rs` property-tests it):
//!
//! * [`QuantileSketch`] — a DDSketch-style log-bucketed quantile sketch
//!   with relative value error ≤ [`QUANTILE_ALPHA`]. Bucket counts form
//!   a commutative monoid under addition, so `merge(a, b)` is *exactly*
//!   the sketch of both streams, byte for byte, at any merge fan-in.
//! * [`TopKSketch`] — a space-saving-style heavy-hitter summary with
//!   total-order tie-breaking. Below its capacity it is an exact
//!   multiset of counts and obeys the same merge laws exactly; above
//!   capacity it evicts deterministically (smallest count first, ties
//!   by key) and records how much mass it dropped, so a campaign can
//!   *assert* it stayed in the exact regime.
//!
//! Both serialize via `impl_json!` into canonical sorted forms, which
//! is what makes "byte-identical across worker counts" a meaningful
//! test: equal states encode to equal bytes.

use std::collections::BTreeMap;

/// Relative value-error bound of [`QuantileSketch`]: a reported
/// `q`-quantile `v̂` satisfies `|v̂ - v| ≤ QUANTILE_ALPHA · |v|` for the
/// exact quantile `v` (nonzero, finite values).
pub const QUANTILE_ALPHA: f64 = 0.01;

/// Bucket growth factor `γ = (1 + α) / (1 - α)`.
const GAMMA: f64 = (1.0 + QUANTILE_ALPHA) / (1.0 - QUANTILE_ALPHA);

/// Magnitudes below this collapse into the exact zero bucket (log
/// buckets cannot represent 0, and sub-nano magnitudes are noise for
/// every population metric we track).
const MIN_MAGNITUDE: f64 = 1e-9;

fn ln_gamma() -> f64 {
    GAMMA.ln()
}

/// Log-bucket index of a positive magnitude: the unique `i` with
/// `γ^(i-1) < v ≤ γ^i`, clamped into `i32`.
fn bucket_index(magnitude: f64) -> i32 {
    let raw = (magnitude.ln() / ln_gamma()).ceil();
    if raw <= i32::MIN as f64 {
        i32::MIN
    } else if raw >= i32::MAX as f64 {
        i32::MAX
    } else {
        raw as i32
    }
}

/// Representative value of bucket `i`: `2γ^i / (γ + 1)`, the midpoint
/// guaranteeing the α relative-error bound for the whole bucket.
fn bucket_value(index: i32) -> f64 {
    2.0 * GAMMA.powi(index) / (GAMMA + 1.0)
}

/// Add `n` to bucket `index` of a sorted `(index, count)` vector.
fn bump(buckets: &mut Vec<(i32, u64)>, index: i32, n: u64) {
    match buckets.binary_search_by_key(&index, |&(i, _)| i) {
        Ok(pos) => {
            if let Some(slot) = buckets.get_mut(pos) {
                slot.1 = slot.1.saturating_add(n);
            }
        }
        Err(pos) => buckets.insert(pos, (index, n)),
    }
}

/// Merge two bucket vectors into canonical sorted-unique form.
///
/// Goes through a `BTreeMap` so even hostile states (unsorted or
/// duplicated indices, as a fuzzer-decoded sketch may carry) merge
/// totally and symmetrically: saturating addition of non-negative
/// counts is order-independent.
fn merge_buckets(a: &[(i32, u64)], b: &[(i32, u64)]) -> Vec<(i32, u64)> {
    let mut merged: BTreeMap<i32, u64> = BTreeMap::new();
    for &(i, n) in a.iter().chain(b) {
        let slot = merged.entry(i).or_insert(0);
        *slot = slot.saturating_add(n);
    }
    merged.into_iter().collect()
}

fn bucket_sum(buckets: &[(i32, u64)]) -> u64 {
    buckets
        .iter()
        .fold(0u64, |acc, &(_, n)| acc.saturating_add(n))
}

/// A mergeable quantile sketch with bounded relative value error.
///
/// State is a pair of log-bucket histograms (positive and mirrored
/// negative magnitudes) plus exact counters for zeros and non-finite
/// inputs — every field a commutative monoid, so [`merge`] equals
/// re-ingestion of both streams exactly.
///
/// [`merge`]: QuantileSketch::merge
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Positive-value buckets, sorted by index, counts > 0 on the
    /// canonical ingestion path.
    pub pos: Vec<(i32, u64)>,
    /// Negative-value buckets over `|v|`, sorted by index.
    pub neg: Vec<(i32, u64)>,
    /// Exact count of (near-)zero samples.
    pub zeros: u64,
    /// NaN / infinite samples, counted for totality but excluded from
    /// quantiles.
    pub non_finite: u64,
}

impl QuantileSketch {
    /// The empty sketch (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one sample.
    pub fn add(&mut self, value: f64) {
        self.add_n(value, 1);
    }

    /// Ingest `n` copies of a sample.
    pub fn add_n(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        if !value.is_finite() {
            self.non_finite = self.non_finite.saturating_add(n);
        } else if value.abs() < MIN_MAGNITUDE {
            self.zeros = self.zeros.saturating_add(n);
        } else if value > 0.0 {
            bump(&mut self.pos, bucket_index(value), n);
        } else {
            bump(&mut self.neg, bucket_index(-value), n);
        }
    }

    /// Fold another sketch in. Exactly equivalent to having ingested
    /// the other sketch's stream into `self`.
    pub fn merge(&mut self, other: &Self) {
        self.pos = merge_buckets(&self.pos, &other.pos);
        self.neg = merge_buckets(&self.neg, &other.neg);
        self.zeros = self.zeros.saturating_add(other.zeros);
        self.non_finite = self.non_finite.saturating_add(other.non_finite);
    }

    /// Number of finite samples ingested.
    pub fn len(&self) -> u64 {
        bucket_sum(&self.pos)
            .saturating_add(bucket_sum(&self.neg))
            .saturating_add(self.zeros)
    }

    /// Whether no finite sample was ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `q`-quantile (`q` clamped into `[0, 1]`) over finite
    /// samples; `0.0` for an empty sketch. Nonzero results carry the
    /// [`QUANTILE_ALPHA`] relative error bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.len();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        // Ascending value order: most-negative first (negative buckets
        // in descending index order), then zeros, then positives.
        for &(i, n) in self.neg.iter().rev() {
            seen = seen.saturating_add(n);
            if seen > rank {
                return -bucket_value(i);
            }
        }
        seen = seen.saturating_add(self.zeros);
        if seen > rank {
            return 0.0;
        }
        for &(i, n) in &self.pos {
            seen = seen.saturating_add(n);
            if seen > rank {
                return bucket_value(i);
            }
        }
        // Unreachable on well-formed states; a deterministic fallback
        // keeps hostile decoded states total.
        self.pos
            .last()
            .map(|&(i, _)| bucket_value(i))
            .unwrap_or(0.0)
    }

    /// Fraction of finite samples that are strictly negative — the
    /// population analogue of the paper's "X% of services contact more
    /// A&A domains via Web" headline.
    pub fn fraction_negative(&self) -> f64 {
        let total = self.len();
        if total == 0 {
            return 0.0;
        }
        bucket_sum(&self.neg) as f64 / total as f64
    }

    /// Approximate heap footprint, for the constant-memory accounting
    /// in `BENCH_population.json`.
    pub fn approx_bytes(&self) -> u64 {
        48 + 16 * (self.pos.len() as u64 + self.neg.len() as u64)
    }
}

/// One heavy-hitter entry of a [`TopKSketch`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopKEntry {
    /// The tracked key (domain, organization, PII label, …).
    pub key: String,
    /// Estimated count (exact while `err == 0`).
    pub count: u64,
    /// Maximum overestimation inherited from evictions (space-saving
    /// style); `0` while the sketch has never evicted.
    pub err: u64,
}

/// A deterministic space-saving-style top-k summary.
///
/// Entries live in canonical key-sorted order (so equal states encode
/// to equal bytes); [`top`] derives the ranked view on demand with a
/// total order — count descending, then key ascending — so merges and
/// renders are order-insensitive.
///
/// `capacity == 0` means unbounded (exact counting). With a bound, the
/// sketch stays exact until it holds more than `capacity` distinct
/// keys, then evicts the smallest-count entry (ties broken by key,
/// ascending) and records the dropped mass; campaigns size `capacity`
/// above their key universe and assert `evictions == 0`, keeping every
/// merge law exact.
///
/// [`top`]: TopKSketch::top
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopKSketch {
    /// Maximum distinct keys retained (0 = unbounded).
    pub capacity: u32,
    /// Entries in key-sorted canonical order.
    pub entries: Vec<TopKEntry>,
    /// Total count mass lost to evictions.
    pub dropped: u64,
    /// Number of evictions performed.
    pub evictions: u64,
}

impl TopKSketch {
    /// An empty sketch retaining at most `capacity` distinct keys
    /// (0 = unbounded).
    pub fn with_capacity(capacity: u32) -> Self {
        TopKSketch {
            capacity,
            ..Self::default()
        }
    }

    /// Ingest `n` occurrences of `key`.
    pub fn add(&mut self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        match self.entries.binary_search_by(|e| e.key.as_str().cmp(key)) {
            Ok(pos) => {
                if let Some(entry) = self.entries.get_mut(pos) {
                    entry.count = entry.count.saturating_add(n);
                }
            }
            Err(pos) => {
                self.entries.insert(
                    pos,
                    TopKEntry {
                        key: key.to_string(),
                        count: n,
                        err: 0,
                    },
                );
                self.shrink_to_capacity();
            }
        }
    }

    /// Evict smallest-count entries (ties by key, ascending) until the
    /// capacity bound holds again.
    fn shrink_to_capacity(&mut self) {
        if self.capacity == 0 {
            return;
        }
        while self.entries.len() > self.capacity as usize {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| (a.count, &a.key).cmp(&(b.count, &b.key)))
                .map(|(i, _)| i);
            let Some(victim) = victim else {
                return;
            };
            let gone = self.entries.remove(victim);
            self.dropped = self.dropped.saturating_add(gone.count);
            self.evictions = self.evictions.saturating_add(1);
        }
    }

    /// Fold another sketch in: key-wise count/err addition, then the
    /// deterministic eviction pass. While both operands are in the
    /// exact regime and the union fits, this equals re-ingestion of the
    /// other stream exactly.
    pub fn merge(&mut self, other: &Self) {
        // Through a BTreeMap so hostile states (unsorted or duplicate
        // keys from a fuzzer-decoded sketch) still merge totally and
        // symmetrically.
        let mut merged: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for entry in self.entries.iter().chain(&other.entries) {
            let slot = merged.entry(entry.key.as_str()).or_insert((0, 0));
            slot.0 = slot.0.saturating_add(entry.count);
            slot.1 = slot.1.saturating_add(entry.err);
        }
        let entries = merged
            .into_iter()
            .map(|(key, (count, err))| TopKEntry {
                key: key.to_string(),
                count,
                err,
            })
            .collect();
        let capacity = if self.capacity == 0 || other.capacity == 0 {
            self.capacity.max(other.capacity)
        } else {
            self.capacity.min(other.capacity)
        };
        *self = TopKSketch {
            capacity,
            entries,
            dropped: self.dropped.saturating_add(other.dropped),
            evictions: self.evictions.saturating_add(other.evictions),
        };
        self.shrink_to_capacity();
    }

    /// The `n` heaviest entries: count descending, ties by key
    /// ascending — a total order, so the ranking is unique.
    pub fn top(&self, n: usize) -> Vec<&TopKEntry> {
        let mut ranked: Vec<&TopKEntry> = self.entries.iter().collect();
        ranked.sort_by(|a, b| (b.count, &a.key).cmp(&(a.count, &b.key)));
        ranked.truncate(n);
        ranked
    }

    /// Exact count of a key while the sketch has never evicted.
    pub fn count(&self, key: &str) -> u64 {
        self.entries
            .binary_search_by(|e| e.key.as_str().cmp(key))
            .ok()
            .and_then(|pos| self.entries.get(pos))
            .map(|e| e.count)
            .unwrap_or(0)
    }

    /// Total count mass currently retained.
    pub fn total(&self) -> u64 {
        self.entries
            .iter()
            .fold(0u64, |acc, e| acc.saturating_add(e.count))
    }

    /// Whether the sketch has been exact for its whole history.
    pub fn is_exact(&self) -> bool {
        self.evictions == 0
    }

    /// Approximate heap footprint, for constant-memory accounting.
    pub fn approx_bytes(&self) -> u64 {
        40 + self
            .entries
            .iter()
            .fold(0u64, |acc, e| acc.saturating_add(40 + e.key.len() as u64))
    }
}

appvsweb_json::impl_json!(struct QuantileSketch { pos, neg, zeros, non_finite });
appvsweb_json::impl_json!(struct TopKEntry { key, count, err });
appvsweb_json::impl_json!(struct TopKSketch { capacity, entries, dropped, evictions });

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let idx = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Deterministic synthetic distributions for accuracy tests.
    fn distributions() -> Vec<(&'static str, Vec<f64>)> {
        let uniform: Vec<f64> = (1..=4000).map(|i| i as f64).collect();
        let exponentialish: Vec<f64> = (0..2000).map(|i| 1.001f64.powi(i) * 3.0).collect();
        let bimodal: Vec<f64> = (0..3000)
            .map(|i| {
                if i % 3 == 0 {
                    5.0 + (i % 7) as f64
                } else {
                    5_000.0 + (i % 11) as f64
                }
            })
            .collect();
        let signed: Vec<f64> = (-1500..1500).map(|i| i as f64 * 0.25).collect();
        vec![
            ("uniform", uniform),
            ("exponentialish", exponentialish),
            ("bimodal", bimodal),
            ("signed", signed),
        ]
    }

    fn assert_within_alpha(name: &str, sketch: &QuantileSketch, sorted: &[f64]) {
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let exact = exact_quantile(sorted, q);
            let approx = sketch.quantile(q);
            if exact.abs() < MIN_MAGNITUDE {
                assert!(
                    approx.abs() <= MIN_MAGNITUDE,
                    "{name} q={q}: exact 0 reported as {approx}"
                );
            } else {
                let rel = (approx - exact).abs() / exact.abs();
                assert!(
                    rel <= QUANTILE_ALPHA + 1e-12,
                    "{name} q={q}: exact {exact}, sketch {approx}, rel err {rel}"
                );
            }
        }
    }

    #[test]
    fn quantiles_stay_within_documented_epsilon() {
        for (name, samples) in distributions() {
            let mut sketch = QuantileSketch::new();
            for &v in &samples {
                sketch.add(v);
            }
            let mut sorted = samples.clone();
            crate::stats::sort_floats(&mut sorted);
            assert_eq!(sketch.len(), samples.len() as u64);
            assert_within_alpha(name, &sketch, &sorted);
        }
    }

    #[test]
    fn quantiles_survive_a_64_way_merge() {
        for (name, samples) in distributions() {
            // Round-robin the stream over 64 shard sketches, then fold
            // them pairwise like the campaign reduction tree does.
            let mut shards = vec![QuantileSketch::new(); 64];
            for (i, &v) in samples.iter().enumerate() {
                shards[i % 64].add(v);
            }
            while shards.len() > 1 {
                let mut next = Vec::with_capacity(shards.len() / 2 + 1);
                for pair in shards.chunks(2) {
                    let mut left = pair[0].clone();
                    if let Some(right) = pair.get(1) {
                        left.merge(right);
                    }
                    next.push(left);
                }
                shards = next;
            }
            let merged = &shards[0];
            // Byte-identical to single-stream ingestion, not merely close.
            let mut single = QuantileSketch::new();
            for &v in &samples {
                single.add(v);
            }
            assert_eq!(
                appvsweb_json::encode(merged),
                appvsweb_json::encode(&single),
                "{name}: 64-way merge must equal sequential ingestion"
            );
            let mut sorted = samples.clone();
            crate::stats::sort_floats(&mut sorted);
            assert_within_alpha(name, merged, &sorted);
        }
    }

    #[test]
    fn sketch_handles_zeros_negatives_and_non_finite() {
        let mut s = QuantileSketch::new();
        s.add(0.0);
        s.add(-0.0);
        s.add(f64::NAN);
        s.add(f64::INFINITY);
        s.add(-3.0);
        s.add(7.0);
        assert_eq!(s.zeros, 2);
        assert_eq!(s.non_finite, 2);
        assert_eq!(s.len(), 4);
        assert!(s.quantile(0.0) < 0.0);
        assert!(s.quantile(1.0) > 0.0);
        assert_eq!(s.quantile(0.4), 0.0, "zeros sit between signs");
        assert!((s.fraction_negative() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_sketch_is_total() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.fraction_negative(), 0.0);
    }

    #[test]
    fn topk_is_exact_below_capacity() {
        let mut t = TopKSketch::with_capacity(8);
        for (key, n) in [("a", 5), ("b", 3), ("c", 3), ("d", 1)] {
            t.add(key, n);
        }
        assert!(t.is_exact());
        assert_eq!(t.count("b"), 3);
        assert_eq!(t.total(), 12);
        let ranked: Vec<(&str, u64)> = t.top(3).iter().map(|e| (e.key.as_str(), e.count)).collect();
        // Ties (b, c) break by key ascending.
        assert_eq!(ranked, vec![("a", 5), ("b", 3), ("c", 3)]);
    }

    #[test]
    fn topk_eviction_is_deterministic_and_accounted() {
        let mut t = TopKSketch::with_capacity(2);
        t.add("a", 5);
        t.add("b", 2);
        t.add("c", 9); // evicts b (smallest count)
        assert_eq!(t.evictions, 1);
        assert_eq!(t.dropped, 2);
        assert_eq!(t.count("b"), 0);
        assert_eq!(t.count("a"), 5);
        // Tie on count: the key-ascending victim goes first.
        let mut u = TopKSketch::with_capacity(2);
        u.add("x", 1);
        u.add("y", 1);
        u.add("z", 4);
        assert_eq!(
            u.count("x"),
            0,
            "tie evicts the lexicographically first key"
        );
        assert_eq!(u.count("y"), 1);
    }

    #[test]
    fn topk_merge_matches_sequential_ingestion_in_exact_regime() {
        let streams = [
            vec![("alpha", 2u64), ("beta", 1), ("alpha", 3)],
            vec![("gamma", 7), ("beta", 4)],
        ];
        let mut merged = TopKSketch::with_capacity(16);
        let mut sequential = TopKSketch::with_capacity(16);
        for stream in &streams {
            let mut shard = TopKSketch::with_capacity(16);
            for &(k, n) in stream {
                shard.add(k, n);
                sequential.add(k, n);
            }
            merged.merge(&shard);
        }
        assert_eq!(
            appvsweb_json::encode(&merged),
            appvsweb_json::encode(&sequential)
        );
        assert!(merged.is_exact());
    }

    #[test]
    fn codec_round_trip() {
        let mut s = QuantileSketch::new();
        s.add(3.5);
        s.add(-42.0);
        s.add(0.0);
        let back: QuantileSketch =
            appvsweb_json::decode(&appvsweb_json::encode(&s)).expect("sketch decodes");
        assert_eq!(back, s);
        let mut t = TopKSketch::with_capacity(4);
        t.add("doubleclick", 3);
        let back: TopKSketch =
            appvsweb_json::decode(&appvsweb_json::encode(&t)).expect("topk decodes");
        assert_eq!(back, t);
    }
}
