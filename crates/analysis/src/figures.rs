//! Builders for Figures 1a–1f.
//!
//! Each figure is a per-OS series over the per-service app-vs-web
//! comparisons ([`crate::leaks::ServiceComparison`]). Figures 1a–1d are
//! CDFs of (app − web) differences; 1e is a PDF of leaked-identifier
//! count differences; 1f is a CDF of Jaccard indices.

use crate::leaks::Study;
use crate::stats::{Cdf, Pdf};
use appvsweb_netsim::Os;

/// Which figure of the paper a series reproduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FigureId {
    /// 1a: (app − web) unique A&A domains contacted.
    AaDomains,
    /// 1b: (app − web) flows to A&A domains.
    AaFlows,
    /// 1c: (app − web) megabytes of traffic to A&A.
    AaBytes,
    /// 1d: (app − web) domains receiving PII.
    LeakDomains,
    /// 1e: (app − web) distinct leaked identifiers (PDF).
    LeakedIdentifiers,
    /// 1f: Jaccard index of leaked identifier sets.
    Jaccard,
}

impl FigureId {
    /// All figures in paper order.
    pub const ALL: [FigureId; 6] = [
        FigureId::AaDomains,
        FigureId::AaFlows,
        FigureId::AaBytes,
        FigureId::LeakDomains,
        FigureId::LeakedIdentifiers,
        FigureId::Jaccard,
    ];

    /// Paper subfigure label.
    pub fn label(self) -> &'static str {
        match self {
            FigureId::AaDomains => "1a: (App - Web) A&A Domains Contacted",
            FigureId::AaFlows => "1b: (App - Web) Flows to A&A Domains",
            FigureId::AaBytes => "1c: (App - Web) MB of Traffic to A&A",
            FigureId::LeakDomains => "1d: (App - Web) Domains Sent PII",
            FigureId::LeakedIdentifiers => "1e: (App - Web) Leaked Identifiers (PDF)",
            FigureId::Jaccard => "1f: Jaccard of Leaked Identifiers",
        }
    }
}

/// One per-OS data series of a figure.
#[derive(Clone, Debug)]
pub struct FigureSeries {
    /// OS the series belongs to (the paper plots Android and iOS curves).
    pub os: Os,
    /// `(x, y)` plot points: `y` is "% of services" for CDFs and PDFs.
    pub points: Vec<(f64, f64)>,
}

/// A full figure: one series per OS.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Which subfigure.
    pub id: FigureId,
    /// Per-OS series.
    pub series: Vec<FigureSeries>,
}

/// Raw per-OS samples for a figure (useful for assertions on shape).
pub fn samples(study: &Study, id: FigureId, os: Os) -> Vec<f64> {
    study
        .comparisons()
        .into_iter()
        .filter(|c| c.os == os)
        .map(|c| match id {
            FigureId::AaDomains => c.aa_domain_diff as f64,
            FigureId::AaFlows => c.aa_flow_diff as f64,
            FigureId::AaBytes => c.aa_byte_diff as f64 / 1_000_000.0,
            FigureId::LeakDomains => c.leak_domain_diff as f64,
            FigureId::LeakedIdentifiers => c.leaked_type_diff as f64,
            FigureId::Jaccard => c.jaccard,
        })
        .collect()
}

/// The CDF for a CDF-style figure and OS.
pub fn cdf(study: &Study, id: FigureId, os: Os) -> Cdf {
    Cdf::new(samples(study, id, os))
}

/// The PDF for Figure 1e.
pub fn pdf_1e(study: &Study, os: Os) -> Pdf {
    let samples: Vec<i64> = study
        .comparisons()
        .into_iter()
        .filter(|c| c.os == os)
        .map(|c| c.leaked_type_diff)
        .collect();
    Pdf::new(&samples)
}

/// Build a complete figure (both OS series).
pub fn figure(study: &Study, id: FigureId) -> Figure {
    let series = [Os::Android, Os::Ios]
        .into_iter()
        .map(|os| {
            let points = match id {
                FigureId::LeakedIdentifiers => pdf_1e(study, os)
                    .bins
                    .iter()
                    .map(|(v, p)| (*v as f64, *p))
                    .collect(),
                _ => cdf(study, id, os).points(),
            };
            FigureSeries { os, points }
        })
        .collect();
    Figure { id, series }
}

/// Build all six figures.
pub fn all_figures(study: &Study) -> Vec<Figure> {
    FigureId::ALL.iter().map(|&id| figure(study, id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaks::CellAnalysis;
    use appvsweb_pii::PiiType;
    use appvsweb_services::{Medium, ServiceCategory};
    use std::collections::BTreeMap;

    fn cell(service: &str, medium: Medium, aa_domains: usize, types: &[PiiType]) -> CellAnalysis {
        CellAnalysis {
            service_id: service.into(),
            service_name: service.into(),
            category: ServiceCategory::News,
            rank: 1,
            os: Os::Android,
            medium,
            aa_domains: (0..aa_domains).map(|i| format!("d{i}.com")).collect(),
            aa_flows: aa_domains as u64 * 5,
            aa_bytes: aa_domains as u64 * 500_000,
            total_flows: 10,
            leaks: vec![],
            leak_domains: types.iter().map(|t| format!("{t:?}.com")).collect(),
            leaked_types: types.iter().copied().collect(),
            per_type: BTreeMap::new(),
            per_domain_leaks: BTreeMap::new(),
            per_domain_types: BTreeMap::new(),
            fault_counts: Default::default(),
            retries: 0,
        }
    }

    fn study() -> Study {
        Study {
            cells: vec![
                cell("a", Medium::App, 2, &[PiiType::UniqueId, PiiType::Location]),
                cell("a", Medium::Web, 10, &[PiiType::Location]),
                cell("b", Medium::App, 3, &[PiiType::UniqueId]),
                cell("b", Medium::Web, 1, &[PiiType::Name]),
            ],
            health: Default::default(),
        }
    }

    #[test]
    fn fig1a_samples_are_app_minus_web() {
        let s = samples(&study(), FigureId::AaDomains, Os::Android);
        let mut sorted = s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, vec![-8.0, 2.0]);
    }

    #[test]
    fn fig1e_pdf_and_1f_jaccard() {
        let pdf = pdf_1e(&study(), Os::Android);
        // a: 2-1 = +1 ; b: 1-1 = 0
        assert_eq!(pdf.bins.len(), 2);
        let jac = samples(&study(), FigureId::Jaccard, Os::Android);
        // a: {UID,L} vs {L} → 1/2 ; b: {UID} vs {N} → 0
        assert!(jac.contains(&0.5));
        assert!(jac.contains(&0.0));
    }

    #[test]
    fn all_figures_have_both_series() {
        let figs = all_figures(&study());
        assert_eq!(figs.len(), 6);
        for f in figs {
            assert_eq!(f.series.len(), 2);
        }
    }

    #[test]
    fn bytes_figure_is_in_megabytes() {
        let s = samples(&study(), FigureId::AaBytes, Os::Android);
        assert!(
            s.iter().all(|v| v.abs() < 10.0),
            "expected MB-scale values: {s:?}"
        );
    }
}

appvsweb_json::impl_json!(
    enum FigureId {
        AaDomains,
        AaFlows,
        AaBytes,
        LeakDomains,
        LeakedIdentifiers,
        Jaccard,
    }
);
appvsweb_json::impl_json!(struct FigureSeries { os, points });
appvsweb_json::impl_json!(struct Figure { id, series });
