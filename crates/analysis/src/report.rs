//! Full-study markdown report generation.
//!
//! [`markdown_report`] renders everything the paper's evaluation section
//! reports — headline statistics, Tables 1–3, figure summaries, OS
//! agreement — as a single self-contained markdown document. The `repro
//! --report` command writes it to disk; it is the reproduction's analogue
//! of the paper's results section.

use crate::figures::{self, FigureId};
use crate::leaks::Study;
use crate::osdiff;
use crate::render;
use crate::tables;
use appvsweb_netsim::Os;
use appvsweb_services::Medium;
use std::fmt::Write as _;

/// Render a complete markdown report for `study`.
pub fn markdown_report(study: &Study) -> String {
    let mut out = String::with_capacity(16 * 1024);
    let _ = writeln!(out, "# appvsweb study report\n");
    let _ = writeln!(
        out,
        "Cells analyzed: **{}** (services × OS × medium).\n",
        study.cells.len()
    );

    // ---- campaign completeness --------------------------------------
    // Only worth a section when the ledger says anything happened: the
    // golden path renders exactly the report it always did.
    let h = &study.health;
    if h.cells_attempted > 0 && (!h.is_complete() || h.faults.total() > 0 || h.session_retries > 0)
    {
        let _ = writeln!(out, "## Campaign health\n");
        let _ = writeln!(out, "- {}.", h.summary());
        if !h.failed_cells.is_empty() {
            let _ = writeln!(
                out,
                "- Failed cells (excluded from every table and figure): {}.",
                h.failed_cells.join(", ")
            );
        }
        let _ = writeln!(out);
    }

    // ---- headline numbers -------------------------------------------
    let _ = writeln!(out, "## Headlines\n");
    let t1 = tables::table1(study);
    let pct = |group: &str, medium| {
        t1.rows
            .iter()
            .find(|r| r.group == group && r.medium == medium)
            .map(|r| r.pct_leaking * 100.0)
            .unwrap_or(0.0)
    };
    let _ = writeln!(
        out,
        "- Services leaking PII: **{:.0}%** via app, **{:.0}%** via Web \
         (paper: 92% / 78%).",
        pct("All", Medium::App),
        pct("All", Medium::Web)
    );
    let _ = writeln!(
        out,
        "- Web leak rate by browser: Chrome/Android **{:.1}%** vs Safari/iOS \
         **{:.1}%** (paper: 52.1% / 76%).",
        pct("Android", Medium::Web),
        pct("iOS", Medium::Web)
    );
    for os in [Os::Android, Os::Ios] {
        let aa = figures::cdf(study, FigureId::AaDomains, os);
        let jac = figures::cdf(study, FigureId::Jaccard, os);
        let pdf = figures::pdf_1e(study, os);
        let _ = writeln!(
            out,
            "- {os}: Web contacts more A&A domains for **{:.0}%** of services; \
             **{:.0}%** share no leaked types across media; modal (app−web) \
             identifier difference **{:+}**.",
            aa.fraction_negative() * 100.0,
            jac.at(0.0) * 100.0,
            pdf.mode().unwrap_or(0)
        );
    }
    let _ = writeln!(out);

    // ---- tables -------------------------------------------------------
    let _ = writeln!(out, "## Table 1 — services by OS and category\n");
    let _ = writeln!(out, "```text\n{}```\n", render::render_table1(&t1));
    let _ = writeln!(out, "## Table 2 — top-20 A&A domains\n");
    let _ = writeln!(
        out,
        "```text\n{}```\n",
        render::render_table2(&tables::table2(study, 20))
    );
    let _ = writeln!(out, "## Table 3 — PII types\n");
    let _ = writeln!(
        out,
        "```text\n{}```\n",
        render::render_table3(&tables::table3(study))
    );

    // ---- figures ------------------------------------------------------
    let _ = writeln!(out, "## Figures 1a–1f\n");
    for id in FigureId::ALL {
        let fig = figures::figure(study, id);
        let _ = writeln!(out, "```text\n{}```\n", render::ascii_plot(&fig, 64, 12));
    }

    // ---- OS agreement ---------------------------------------------------
    let _ = writeln!(out, "## Android vs iOS agreement\n");
    for medium in Medium::BOTH {
        let agg = osdiff::os_agreement(study, medium);
        let label = match medium {
            Medium::App => "App",
            Medium::Web => "Web",
        };
        let divergent: Vec<&str> = agg.divergent_types.iter().map(|t| t.label()).collect();
        let _ = writeln!(
            out,
            "- **{label}**: {} services compared on both OSes; {:.0}% leak \
             identical type sets; divergent types: {}.",
            agg.services,
            agg.identical_fraction * 100.0,
            if divergent.is_empty() {
                "none".to_string()
            } else {
                divergent.join(", ")
            }
        );
    }
    let _ = writeln!(out);

    // ---- per-service appendix ------------------------------------------
    let _ = writeln!(out, "## Appendix: per-service leak profiles (Android)\n");
    let _ = writeln!(out, "| service | app leaks | web leaks |");
    let _ = writeln!(out, "|---|---|---|");
    for app in study.cells_for(Os::Android, Medium::App) {
        let web = study.cell(&app.service_id, Os::Android, Medium::Web);
        let fmt_types = |cell: &crate::CellAnalysis| {
            if cell.leaked_types.is_empty() {
                "—".to_string()
            } else {
                cell.leaked_types
                    .iter()
                    .map(|t| t.abbrev())
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} |",
            app.service_name,
            fmt_types(app),
            web.map(fmt_types).unwrap_or_else(|| "n/a".into())
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaks::CellAnalysis;
    use appvsweb_pii::PiiType;
    use appvsweb_services::ServiceCategory;
    use std::collections::{BTreeMap, BTreeSet};

    fn cell(service: &str, os: Os, medium: Medium, types: &[PiiType]) -> CellAnalysis {
        CellAnalysis {
            service_id: service.into(),
            service_name: service.into(),
            category: ServiceCategory::Weather,
            rank: 1,
            os,
            medium,
            aa_domains: BTreeSet::new(),
            aa_flows: 0,
            aa_bytes: 0,
            total_flows: 0,
            leaks: vec![],
            leak_domains: BTreeSet::new(),
            leaked_types: types.iter().copied().collect(),
            per_type: BTreeMap::new(),
            per_domain_leaks: BTreeMap::new(),
            per_domain_types: BTreeMap::new(),
            fault_counts: Default::default(),
            retries: 0,
        }
    }

    #[test]
    fn report_contains_all_sections() {
        let study = Study {
            cells: vec![
                cell("svc", Os::Android, Medium::App, &[PiiType::UniqueId]),
                cell("svc", Os::Android, Medium::Web, &[PiiType::Location]),
                cell("svc", Os::Ios, Medium::App, &[PiiType::UniqueId]),
                cell("svc", Os::Ios, Medium::Web, &[PiiType::Location]),
            ],
            health: Default::default(),
        };
        let report = markdown_report(&study);
        for heading in [
            "# appvsweb study report",
            "## Headlines",
            "## Table 1",
            "## Table 2",
            "## Table 3",
            "## Figures 1a–1f",
            "## Android vs iOS agreement",
            "## Appendix",
        ] {
            assert!(report.contains(heading), "missing section {heading}");
        }
        // The appendix row shows the service with its abbreviations.
        assert!(report.contains("| svc | UID | L |"));
        // A clean campaign renders no health section at all.
        assert!(!report.contains("## Campaign health"));
    }

    #[test]
    fn degraded_campaign_is_annotated() {
        let mut study = Study {
            cells: vec![
                cell("svc", Os::Android, Medium::App, &[PiiType::UniqueId]),
                cell("svc", Os::Android, Medium::Web, &[PiiType::Location]),
            ],
            health: Default::default(),
        };
        study.health.cells_attempted = 3;
        study.health.cells_completed = 2;
        study.health.cells_failed = 1;
        study.health.failed_cells = vec!["svc/Ios/Web".into()];
        study.health.faults.connection_resets = 7;
        study.health.session_retries = 4;
        let report = markdown_report(&study);
        assert!(report.contains("## Campaign health"));
        assert!(report.contains("2/3 cells completed"));
        assert!(report.contains("svc/Ios/Web"));
    }
}
