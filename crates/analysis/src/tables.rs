//! Builders for the paper's three tables.

use crate::leaks::{CellAnalysis, Study};
use crate::stats::{mean, std_dev};
use appvsweb_netsim::Os;
use appvsweb_pii::PiiType;
use appvsweb_services::{Medium, ServiceCategory};
use std::collections::{BTreeMap, BTreeSet};

// --------------------------------------------------------------------
// Table 1
// --------------------------------------------------------------------

/// One row of Table 1 (a service group × medium).
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Row label, e.g. "All", "Android", "Weather".
    pub group: String,
    /// App or Web.
    pub medium: Medium,
    /// Number of services in the group.
    pub services: usize,
    /// Average App Annie rank (apps only; `None` for web rows).
    pub avg_rank: Option<f64>,
    /// Fraction of services leaking any PII.
    pub pct_leaking: f64,
    /// Mean domains receiving leaks per service.
    pub avg_leak_domains: f64,
    /// Std dev of the above.
    pub std_leak_domains: f64,
    /// Which identifier types leak anywhere in the group
    /// (the ✓-matrix columns B D E G L N P# U PW UID).
    pub leaked_types: BTreeSet<PiiType>,
}

/// Table 1: rows for All/OS/category groups × medium.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Rows in paper order.
    pub rows: Vec<Table1Row>,
}

fn summarize<'a>(
    group: &str,
    medium: Medium,
    cells: impl Iterator<Item = &'a CellAnalysis>,
) -> Table1Row {
    let cells: Vec<&CellAnalysis> = cells.collect();
    // A service may appear under both OSes: Table 1's All/category rows
    // treat the service as leaking if it leaks on either OS, and average
    // leak-domain counts across (service, OS) observations that leak.
    let mut services: BTreeMap<&str, (bool, u32)> = BTreeMap::new();
    let mut leak_domain_counts: Vec<f64> = Vec::new();
    let mut leaked_types = BTreeSet::new();
    for c in &cells {
        let e = services
            .entry(c.service_id.as_str())
            .or_insert((false, c.rank));
        e.0 |= c.leaked();
        if c.leaked() {
            leak_domain_counts.push(c.leak_domains.len() as f64);
        }
        leaked_types.extend(c.leaked_types.iter().copied());
    }
    let n = services.len();
    let leaking = services.values().filter(|(l, _)| *l).count();
    let ranks: Vec<f64> = services.values().map(|(_, r)| *r as f64).collect();
    Table1Row {
        group: group.to_string(),
        medium,
        services: n,
        avg_rank: if medium == Medium::App {
            Some(mean(&ranks))
        } else {
            None
        },
        pct_leaking: if n == 0 {
            0.0
        } else {
            leaking as f64 / n as f64
        },
        avg_leak_domains: mean(&leak_domain_counts),
        std_leak_domains: std_dev(&leak_domain_counts),
        leaked_types,
    }
}

/// Build Table 1 from a study.
pub fn table1(study: &Study) -> Table1 {
    let mut rows = Vec::new();
    for medium in Medium::BOTH {
        rows.push(summarize(
            "All",
            medium,
            study.cells.iter().filter(|c| c.medium == medium),
        ));
    }
    for os in [Os::Android, Os::Ios] {
        for medium in Medium::BOTH {
            rows.push(summarize(
                &os.to_string(),
                medium,
                study
                    .cells
                    .iter()
                    .filter(move |c| c.medium == medium && c.os == os),
            ));
        }
    }
    for cat in ServiceCategory::ALL {
        for medium in Medium::BOTH {
            rows.push(summarize(
                cat.label(),
                medium,
                study
                    .cells
                    .iter()
                    .filter(move |c| c.medium == medium && c.category == cat),
            ));
        }
    }
    Table1 { rows }
}

// --------------------------------------------------------------------
// Table 2
// --------------------------------------------------------------------

/// One row of Table 2 (an A&A organization).
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Registrable domain, absent its public suffix (paper style).
    pub organization: String,
    /// Services whose APP contacted it.
    pub services_app: usize,
    /// Services contacting it via BOTH media.
    pub services_both: usize,
    /// Services whose WEB contacted it.
    pub services_web: usize,
    /// Mean leaks per contacting service (app).
    pub avg_leaks_app: f64,
    /// Mean leaks per contacting service (web).
    pub avg_leaks_web: f64,
    /// Distinct identifier types received via apps.
    pub ids_app: usize,
    /// Distinct identifier types received via both media.
    pub ids_both: usize,
    /// Distinct identifier types received via web.
    pub ids_web: usize,
    /// Total leak instances (sort key).
    pub total_leaks: u64,
}

/// Table 2: the top-N A&A domains by total leaks.
pub fn table2(study: &Study, top: usize) -> Vec<Table2Row> {
    #[derive(Default)]
    struct Acc {
        app_services: BTreeSet<String>,
        web_services: BTreeSet<String>,
        /// Leak counts per (service, OS) observation — "avg leaks" is the
        /// mean over individual tests, as in the paper.
        app_leaks: BTreeMap<(String, Os), u64>,
        web_leaks: BTreeMap<(String, Os), u64>,
        app_types: BTreeSet<PiiType>,
        web_types: BTreeSet<PiiType>,
    }
    let mut orgs: BTreeMap<String, Acc> = BTreeMap::new();

    for cell in &study.cells {
        for domain in &cell.aa_domains {
            let org = domain.split('.').next().unwrap_or(domain).to_string();
            let acc = orgs.entry(org).or_default();
            match cell.medium {
                Medium::App => acc.app_services.insert(cell.service_id.clone()),
                Medium::Web => acc.web_services.insert(cell.service_id.clone()),
            };
        }
        for (domain, count) in &cell.per_domain_leaks {
            let org = domain.split('.').next().unwrap_or(domain).to_string();
            let acc = orgs.entry(org).or_default();
            let per_service = match cell.medium {
                Medium::App => &mut acc.app_leaks,
                Medium::Web => &mut acc.web_leaks,
            };
            *per_service
                .entry((cell.service_id.clone(), cell.os))
                .or_default() += count;
        }
        for (domain, types) in &cell.per_domain_types {
            let org = domain.split('.').next().unwrap_or(domain).to_string();
            let acc = orgs.entry(org).or_default();
            match cell.medium {
                Medium::App => acc.app_types.extend(types.iter().copied()),
                Medium::Web => acc.web_types.extend(types.iter().copied()),
            }
        }
    }

    let mut rows: Vec<Table2Row> = orgs
        .into_iter()
        .map(|(org, acc)| {
            let app_leak_values: Vec<f64> = acc.app_leaks.values().map(|v| *v as f64).collect();
            let web_leak_values: Vec<f64> = acc.web_leaks.values().map(|v| *v as f64).collect();
            let total = acc.app_leaks.values().sum::<u64>() + acc.web_leaks.values().sum::<u64>();
            Table2Row {
                services_both: acc.app_services.intersection(&acc.web_services).count(),
                services_app: acc.app_services.len(),
                services_web: acc.web_services.len(),
                avg_leaks_app: mean(&app_leak_values),
                avg_leaks_web: mean(&web_leak_values),
                ids_both: acc.app_types.intersection(&acc.web_types).count(),
                ids_app: acc.app_types.len(),
                ids_web: acc.web_types.len(),
                total_leaks: total,
                organization: org,
            }
        })
        .filter(|r| r.total_leaks > 0)
        .collect();
    rows.sort_by(|a, b| {
        b.total_leaks
            .cmp(&a.total_leaks)
            .then(a.organization.cmp(&b.organization))
    });
    rows.truncate(top);
    rows
}

// --------------------------------------------------------------------
// Table 3
// --------------------------------------------------------------------

/// One row of Table 3 (a PII type).
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// The PII type.
    pub pii_type: PiiType,
    /// Services leaking it via app.
    pub services_app: usize,
    /// Services leaking it via both media.
    pub services_both: usize,
    /// Services leaking it via web.
    pub services_web: usize,
    /// Mean leak instances per leaking service (app).
    pub avg_leaks_app: f64,
    /// Mean leak instances per leaking service (web).
    pub avg_leaks_web: f64,
    /// Domains it leaked to via app.
    pub domains_app: usize,
    /// Domains it leaked to via both media.
    pub domains_both: usize,
    /// Domains it leaked to via web.
    pub domains_web: usize,
    /// Total leak instances (sort key).
    pub total_leaks: u64,
}

/// Table 3: every PII type, sorted by total leaks.
pub fn table3(study: &Study) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for t in PiiType::ALL {
        let mut app_services = BTreeSet::new();
        let mut web_services = BTreeSet::new();
        let mut app_leaks: BTreeMap<(String, Os), u64> = BTreeMap::new();
        let mut web_leaks: BTreeMap<(String, Os), u64> = BTreeMap::new();
        let mut app_domains = BTreeSet::new();
        let mut web_domains = BTreeSet::new();

        for cell in &study.cells {
            let Some(agg) = cell.per_type.get(&t) else {
                continue;
            };
            match cell.medium {
                Medium::App => {
                    app_services.insert(cell.service_id.clone());
                    *app_leaks
                        .entry((cell.service_id.clone(), cell.os))
                        .or_default() += agg.count;
                    app_domains.extend(agg.domains.iter().cloned());
                }
                Medium::Web => {
                    web_services.insert(cell.service_id.clone());
                    *web_leaks
                        .entry((cell.service_id.clone(), cell.os))
                        .or_default() += agg.count;
                    web_domains.extend(agg.domains.iter().cloned());
                }
            }
        }

        let app_leak_values: Vec<f64> = app_leaks.values().map(|v| *v as f64).collect();
        let web_leak_values: Vec<f64> = web_leaks.values().map(|v| *v as f64).collect();
        let total = app_leaks.values().sum::<u64>() + web_leaks.values().sum::<u64>();
        rows.push(Table3Row {
            pii_type: t,
            services_both: app_services.intersection(&web_services).count(),
            services_app: app_services.len(),
            services_web: web_services.len(),
            avg_leaks_app: mean(&app_leak_values),
            avg_leaks_web: mean(&web_leak_values),
            domains_both: app_domains.intersection(&web_domains).count(),
            domains_app: app_domains.len(),
            domains_web: web_domains.len(),
            total_leaks: total,
        });
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.total_leaks));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaks::LeakEvent;
    use appvsweb_adblock::Category;

    fn cell(
        service: &str,
        os: Os,
        medium: Medium,
        category: ServiceCategory,
        leaks: &[(PiiType, &str)],
        aa: &[&str],
    ) -> CellAnalysis {
        let mut c = CellAnalysis {
            service_id: service.into(),
            service_name: service.into(),
            category,
            rank: 10,
            os,
            medium,
            aa_domains: aa.iter().map(|s| s.to_string()).collect(),
            aa_flows: aa.len() as u64 * 10,
            aa_bytes: aa.len() as u64 * 1000,
            total_flows: 20,
            leaks: vec![],
            leak_domains: BTreeSet::new(),
            leaked_types: BTreeSet::new(),
            per_type: BTreeMap::new(),
            per_domain_leaks: BTreeMap::new(),
            per_domain_types: BTreeMap::new(),
            fault_counts: Default::default(),
            retries: 0,
        };
        for (t, d) in leaks {
            c.leaks.push(LeakEvent {
                pii_type: *t,
                domain: d.to_string(),
                category: Category::Advertising,
                plaintext: false,
            });
            c.leak_domains.insert(d.to_string());
            c.leaked_types.insert(*t);
            let agg = c.per_type.entry(*t).or_default();
            agg.count += 1;
            agg.domains.insert(d.to_string());
            *c.per_domain_leaks.entry(d.to_string()).or_default() += 1;
            c.per_domain_types
                .entry(d.to_string())
                .or_default()
                .insert(*t);
        }
        c
    }

    fn small_study() -> Study {
        Study {
            cells: vec![
                cell(
                    "svc-a",
                    Os::Android,
                    Medium::App,
                    ServiceCategory::Weather,
                    &[
                        (PiiType::UniqueId, "flurry.com"),
                        (PiiType::Location, "flurry.com"),
                    ],
                    &["flurry.com"],
                ),
                cell(
                    "svc-a",
                    Os::Android,
                    Medium::Web,
                    ServiceCategory::Weather,
                    &[(PiiType::Location, "doubleclick.net")],
                    &["doubleclick.net", "google-analytics.com", "adnxs.com"],
                ),
                cell(
                    "svc-b",
                    Os::Android,
                    Medium::App,
                    ServiceCategory::News,
                    &[],
                    &["comscore.com"],
                ),
                cell(
                    "svc-b",
                    Os::Android,
                    Medium::Web,
                    ServiceCategory::News,
                    &[(PiiType::Location, "doubleclick.net")],
                    &["doubleclick.net", "adnxs.com"],
                ),
            ],
            health: Default::default(),
        }
    }

    #[test]
    fn table1_all_rows() {
        let t = table1(&small_study());
        let all_app = t
            .rows
            .iter()
            .find(|r| r.group == "All" && r.medium == Medium::App)
            .unwrap();
        assert_eq!(all_app.services, 2);
        assert_eq!(all_app.pct_leaking, 0.5); // svc-a leaks, svc-b doesn't
        assert!(all_app.avg_rank.is_some());
        let all_web = t
            .rows
            .iter()
            .find(|r| r.group == "All" && r.medium == Medium::Web)
            .unwrap();
        assert_eq!(all_web.pct_leaking, 1.0);
        assert!(all_web.avg_rank.is_none());
        assert!(all_web.leaked_types.contains(&PiiType::Location));
        // Category rows exist for every category.
        assert_eq!(t.rows.len(), 2 + 4 + 20);
    }

    #[test]
    fn table2_orders_by_total_leaks() {
        let rows = table2(&small_study(), 20);
        assert_eq!(rows[0].organization, "doubleclick");
        assert_eq!(rows[0].services_web, 2);
        assert_eq!(rows[0].services_app, 0);
        assert_eq!(rows[0].total_leaks, 2);
        let flurry = rows.iter().find(|r| r.organization == "flurry").unwrap();
        assert_eq!(flurry.services_app, 1);
        assert_eq!(flurry.ids_app, 2);
        assert_eq!(flurry.ids_web, 0);
    }

    #[test]
    fn table3_marginals() {
        let rows = table3(&small_study());
        let loc = rows
            .iter()
            .find(|r| r.pii_type == PiiType::Location)
            .unwrap();
        assert_eq!(loc.services_app, 1);
        assert_eq!(loc.services_web, 2);
        assert_eq!(loc.services_both, 1);
        assert_eq!(loc.domains_app, 1);
        assert_eq!(loc.domains_web, 1);
        assert_eq!(loc.domains_both, 0, "flurry.com vs doubleclick.net");
        let uid = rows
            .iter()
            .find(|r| r.pii_type == PiiType::UniqueId)
            .unwrap();
        assert_eq!((uid.services_app, uid.services_web), (1, 0));
    }
}

appvsweb_json::impl_json!(struct Table1Row {
    group, medium, services, avg_rank, pct_leaking, avg_leak_domains, std_leak_domains,
    leaked_types
});
appvsweb_json::impl_json!(struct Table1 { rows });
appvsweb_json::impl_json!(struct Table2Row {
    organization, services_app, services_both, services_web, avg_leaks_app, avg_leaks_web,
    ids_app, ids_both, ids_web, total_leaks
});
appvsweb_json::impl_json!(struct Table3Row {
    pii_type, services_app, services_both, services_web, avg_leaks_app, avg_leaks_web,
    domains_app, domains_both, domains_web, total_leaks
});
