//! Cross-OS comparisons (Android vs iOS).
//!
//! Table 1 of the paper splits every metric by OS and the text draws two
//! OS-level conclusions: (1) similar fractions of Android and iOS *apps*
//! leak, but 24% fewer *Web* sites leak in Chrome/Android than in
//! Safari/iOS; (2) "Web sites leak comparable types of PII regardless of
//! whether they are loaded in Chrome or Safari (with phone number being
//! the sole exception)". This module computes those comparisons from a
//! study.

use crate::leaks::Study;
use crate::stats::jaccard;
use appvsweb_netsim::Os;
use appvsweb_pii::PiiType;
use appvsweb_services::Medium;
use std::collections::BTreeSet;

/// Android-vs-iOS comparison for one service and medium.
#[derive(Clone, Debug)]
pub struct OsComparison {
    /// Service slug.
    pub service_id: String,
    /// App or Web.
    pub medium: Medium,
    /// Types leaked on Android.
    pub android_types: BTreeSet<PiiType>,
    /// Types leaked on iOS.
    pub ios_types: BTreeSet<PiiType>,
    /// Jaccard similarity of the two sets.
    pub jaccard: f64,
}

impl OsComparison {
    /// Types leaked only on Android.
    pub fn android_only(&self) -> BTreeSet<PiiType> {
        self.android_types
            .difference(&self.ios_types)
            .copied()
            .collect()
    }

    /// Types leaked only on iOS.
    pub fn ios_only(&self) -> BTreeSet<PiiType> {
        self.ios_types
            .difference(&self.android_types)
            .copied()
            .collect()
    }

    /// Whether the service behaves identically across OSes on this medium.
    pub fn identical(&self) -> bool {
        self.android_types == self.ios_types
    }
}

/// Compute per-service OS comparisons for one medium. Services tested on
/// only one OS are skipped (the 48/50 availability split).
pub fn os_comparisons(study: &Study, medium: Medium) -> Vec<OsComparison> {
    let mut out = Vec::new();
    for android in study.cells_for(Os::Android, medium) {
        let Some(ios) = study.cell(&android.service_id, Os::Ios, medium) else {
            continue;
        };
        out.push(OsComparison {
            service_id: android.service_id.clone(),
            medium,
            android_types: android.leaked_types.clone(),
            ios_types: ios.leaked_types.clone(),
            jaccard: jaccard(&android.leaked_types, &ios.leaked_types),
        });
    }
    out
}

/// Medium-level summary of OS agreement.
#[derive(Clone, Debug)]
pub struct OsAgreement {
    /// App or Web.
    pub medium: Medium,
    /// Services compared on both OSes.
    pub services: usize,
    /// Fraction with identical leaked-type sets.
    pub identical_fraction: f64,
    /// PII types that ever differ between OSes anywhere.
    pub divergent_types: BTreeSet<PiiType>,
}

/// Summarize OS agreement per medium.
pub fn os_agreement(study: &Study, medium: Medium) -> OsAgreement {
    let comparisons = os_comparisons(study, medium);
    let identical = comparisons.iter().filter(|c| c.identical()).count();
    let mut divergent = BTreeSet::new();
    for c in &comparisons {
        divergent.extend(c.android_only());
        divergent.extend(c.ios_only());
    }
    OsAgreement {
        medium,
        services: comparisons.len(),
        identical_fraction: if comparisons.is_empty() {
            1.0
        } else {
            identical as f64 / comparisons.len() as f64
        },
        divergent_types: divergent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaks::CellAnalysis;
    use appvsweb_services::ServiceCategory;
    use std::collections::BTreeMap;

    fn cell(service: &str, os: Os, medium: Medium, types: &[PiiType]) -> CellAnalysis {
        CellAnalysis {
            service_id: service.into(),
            service_name: service.into(),
            category: ServiceCategory::News,
            rank: 1,
            os,
            medium,
            aa_domains: BTreeSet::new(),
            aa_flows: 0,
            aa_bytes: 0,
            total_flows: 0,
            leaks: vec![],
            leak_domains: BTreeSet::new(),
            leaked_types: types.iter().copied().collect(),
            per_type: BTreeMap::new(),
            per_domain_leaks: BTreeMap::new(),
            per_domain_types: BTreeMap::new(),
            fault_counts: Default::default(),
            retries: 0,
        }
    }

    fn study() -> Study {
        Study {
            cells: vec![
                cell(
                    "a",
                    Os::Android,
                    Medium::App,
                    &[PiiType::UniqueId, PiiType::Email],
                ),
                cell(
                    "a",
                    Os::Ios,
                    Medium::App,
                    &[PiiType::UniqueId, PiiType::PhoneNumber],
                ),
                cell("b", Os::Android, Medium::App, &[PiiType::Location]),
                cell("b", Os::Ios, Medium::App, &[PiiType::Location]),
                // c is iOS-only: must be skipped.
                cell("c", Os::Ios, Medium::App, &[PiiType::Gender]),
            ],
            health: Default::default(),
        }
    }

    #[test]
    fn comparisons_pair_by_service() {
        let cmp = os_comparisons(&study(), Medium::App);
        assert_eq!(cmp.len(), 2, "iOS-only service skipped");
        let a = cmp.iter().find(|c| c.service_id == "a").unwrap();
        assert_eq!(a.android_only(), [PiiType::Email].into_iter().collect());
        assert_eq!(a.ios_only(), [PiiType::PhoneNumber].into_iter().collect());
        assert!((a.jaccard - 1.0 / 3.0).abs() < 1e-9);
        let b = cmp.iter().find(|c| c.service_id == "b").unwrap();
        assert!(b.identical());
        assert_eq!(b.jaccard, 1.0);
    }

    #[test]
    fn agreement_summary() {
        let agg = os_agreement(&study(), Medium::App);
        assert_eq!(agg.services, 2);
        assert_eq!(agg.identical_fraction, 0.5);
        assert!(agg.divergent_types.contains(&PiiType::Email));
        assert!(agg.divergent_types.contains(&PiiType::PhoneNumber));
        assert!(!agg.divergent_types.contains(&PiiType::Location));
    }
}

appvsweb_json::impl_json!(struct OsComparison { service_id, medium, android_types, ios_types, jaccard });
appvsweb_json::impl_json!(struct OsAgreement { medium, services, identical_fraction, divergent_types });
