//! Statistics: CDFs, PDFs, Jaccard, mean/std, bootstrap CIs.

use std::collections::BTreeSet;

/// Sort floats in a total, NaN-safe order (IEEE 754 totalOrder).
///
/// `f64::total_cmp` never panics, unlike `partial_cmp(..).unwrap()`,
/// and gives NaNs a defined position (negative NaN first, positive NaN
/// last) so a stray NaN degrades output instead of crashing a run.
pub fn sort_floats(samples: &mut [f64]) {
    samples.sort_by(f64::total_cmp);
}

/// An empirical CDF over integer or real values.
#[derive(Clone, Debug, PartialEq)]
pub struct Cdf {
    values: Vec<f64>,
}

impl Cdf {
    /// Build from samples (order irrelevant).
    pub fn new(mut samples: Vec<f64>) -> Self {
        sort_floats(&mut samples);
        Cdf { values: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of samples ≤ `x`, in `[0, 1]`.
    pub fn at(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let count = self.values.partition_point(|v| *v <= x);
        count as f64 / self.values.len() as f64
    }

    /// The `q`-quantile (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.values.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.values.len() as f64 - 1.0) * q).round() as usize;
        self.values[idx]
    }

    /// Plot points `(x, percent ≤ x)` for every distinct sample value —
    /// the series format of the paper's Figure 1 CDFs.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for (i, v) in self.values.iter().enumerate() {
            let pct = (i + 1) as f64 / self.values.len() as f64 * 100.0;
            match out.last_mut() {
                Some((x, p)) if *x == *v => *p = pct,
                _ => out.push((*v, pct)),
            }
        }
        out
    }

    /// Fraction of samples strictly below zero (the paper's headline
    /// "X% of services contact more domains via Web" statistic).
    pub fn fraction_negative(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let count = self.values.partition_point(|v| *v < 0.0);
        count as f64 / self.values.len() as f64
    }
}

/// A discrete PDF (histogram normalized to percentages).
#[derive(Clone, Debug, PartialEq)]
pub struct Pdf {
    /// `(value, percent of samples)` in ascending value order.
    pub bins: Vec<(i64, f64)>,
}

impl Pdf {
    /// Build from integer samples.
    pub fn new(samples: &[i64]) -> Self {
        let mut counts = std::collections::BTreeMap::new();
        for &s in samples {
            *counts.entry(s).or_insert(0usize) += 1;
        }
        let n = samples.len().max(1) as f64;
        Pdf {
            bins: counts
                .into_iter()
                .map(|(v, c)| (v, c as f64 / n * 100.0))
                .collect(),
        }
    }

    /// The modal value (highest bin; ties break toward the smaller value).
    pub fn mode(&self) -> Option<i64> {
        self.bins
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(v, _)| *v)
    }

    /// Percent of mass at strictly positive values.
    pub fn positive_mass(&self) -> f64 {
        self.bins
            .iter()
            .filter(|(v, _)| *v > 0)
            .map(|(_, p)| p)
            .sum()
    }
}

/// Jaccard index of two sets: |∩| / |∪|, with the empty-∪ convention 0
/// (matching the paper's treatment of services that leak nothing).
pub fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.union(b).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// A deterministic bootstrap confidence interval for the mean.
///
/// Table 1 reports `avg ± std` over small per-category service groups;
/// a bootstrap CI communicates how stable those averages are across
/// resamples. The resampler uses a SplitMix64 stream seeded by the
/// caller, so CIs are reproducible like everything else in the study.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower bound of the interval.
    pub low: f64,
    /// Upper bound of the interval.
    pub high: f64,
    /// Confidence level used (e.g. 0.95).
    pub confidence: f64,
}

/// Percentile-bootstrap CI of the mean with `rounds` resamples.
///
/// Returns `None` for empty input. Deterministic in `(samples, rounds,
/// seed)`.
pub fn bootstrap_mean_ci(
    samples: &[f64],
    confidence: f64,
    rounds: usize,
    seed: u64,
) -> Option<BootstrapCi> {
    if samples.is_empty() || rounds == 0 {
        return None;
    }
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let n = samples.len();
    let mut means = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut total = 0.0;
        for _ in 0..n {
            total += samples[(next() % n as u64) as usize];
        }
        means.push(total / n as f64);
    }
    sort_floats(&mut means);
    let alpha = (1.0 - confidence.clamp(0.0, 1.0)) / 2.0;
    let lo_idx = ((rounds as f64 - 1.0) * alpha).round() as usize;
    let hi_idx = ((rounds as f64 - 1.0) * (1.0 - alpha)).round() as usize;
    Some(BootstrapCi {
        mean: mean(samples),
        low: means[lo_idx.min(rounds - 1)],
        high: means[hi_idx.min(rounds - 1)],
        confidence,
    })
}

/// Mean of samples (0 for empty input).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Population standard deviation (0 for empty input) — Table 1 reports
/// `avg ± std` over the services in each group.
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let m = mean(samples);
    (samples.iter().map(|s| (s - m).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(1.0), 0.25);
        assert_eq!(cdf.at(2.0), 0.75);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 3.0);
    }

    #[test]
    fn cdf_points_are_monotonic_and_end_at_100() {
        let cdf = Cdf::new(vec![5.0, -3.0, 0.0, 5.0, 7.0]);
        let pts = cdf.points();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 100.0);
    }

    #[test]
    fn fraction_negative() {
        let cdf = Cdf::new(vec![-2.0, -1.0, 0.0, 1.0]);
        assert_eq!(cdf.fraction_negative(), 0.5);
        assert_eq!(Cdf::new(vec![]).fraction_negative(), 0.0);
    }

    #[test]
    fn pdf_mode_and_mass() {
        let pdf = Pdf::new(&[1, 1, 1, 0, -1, 2]);
        assert_eq!(pdf.mode(), Some(1));
        assert!((pdf.positive_mass() - (4.0 / 6.0 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn jaccard_cases() {
        let a: BTreeSet<i32> = [1, 2, 3].into();
        let b: BTreeSet<i32> = [2, 3, 4].into();
        let e: BTreeSet<i32> = BTreeSet::new();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-9);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &e), 0.0);
        assert_eq!(jaccard(&e, &e), 0.0);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let samples: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let ci = bootstrap_mean_ci(&samples, 0.95, 500, 42).unwrap();
        assert!(ci.low <= ci.mean && ci.mean <= ci.high);
        assert!(
            ci.high - ci.low < 2.0,
            "tight-ish CI for 40 samples: {ci:?}"
        );
        // Deterministic.
        assert_eq!(ci, bootstrap_mean_ci(&samples, 0.95, 500, 42).unwrap());
        // Different seed, similar interval.
        let other = bootstrap_mean_ci(&samples, 0.95, 500, 43).unwrap();
        assert!((ci.low - other.low).abs() < 0.5);
    }

    #[test]
    fn bootstrap_ci_edge_cases() {
        assert!(bootstrap_mean_ci(&[], 0.95, 100, 1).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 0, 1).is_none());
        let single = bootstrap_mean_ci(&[5.0], 0.95, 50, 1).unwrap();
        assert_eq!((single.low, single.mean, single.high), (5.0, 5.0, 5.0));
    }

    #[test]
    fn mean_std() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[2.0, 4.0]), 1.0);
        assert_eq!(std_dev(&[]), 0.0);
    }
}

appvsweb_json::impl_json!(struct BootstrapCi { mean, low, high, confidence });
