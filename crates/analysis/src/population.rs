//! Population-scale aggregation: the mergeable shard state behind
//! `repro population`, plus its table/figure builders and renderer.
//!
//! A population campaign simulates 10k–1M users on top of the 196-cell
//! study. Each user streams into exactly one shard's
//! [`PopulationAggregate`]; shard states then fold pairwise in a fixed
//! reduction tree (see `appvsweb-population`). Every field here is a
//! commutative-monoid summary — counters, `BTreeMap`s of counters, and
//! the [`sketch`](crate::sketch) types — so the fold is a homomorphism
//! of user-stream concatenation and the final report is byte-identical
//! no matter how many workers raced over the shards.
//!
//! The builders at the bottom render the population analogues of the
//! paper's tables (per-PII-type reach, heavy-hitter A&A organizations,
//! OS × medium cohorts) and the per-user app-vs-web difference CDFs
//! ("Figures 2–7", the population counterparts of Figures 1a–1f).

use crate::sketch::{QuantileSketch, TopKSketch};
use appvsweb_netsim::Os;
use appvsweb_pii::PiiType;
use appvsweb_services::Medium;
use std::collections::BTreeMap;

/// Default top-k capacity. The simulator's registrable-domain universe
/// is a few hundred strings, so this keeps campaigns in the exact
/// (zero-eviction) regime with room to spare while still bounding
/// hostile inputs.
pub const DEFAULT_TOPK_CAPACITY: u32 = 1024;

/// The population figure catalogue: `(key, description)` in report
/// order. Figures 2–7 are the per-user analogues of the paper's
/// Figures 1a–1f (app − web differences; figure 7 is the Jaccard
/// similarity of leaked-type sets).
pub const FIGURES: &[(&str, &str)] = &[
    ("fig2", "A&A domains contacted, app - web, per user"),
    ("fig3", "A&A flows, app - web, per user"),
    ("fig4", "A&A megabytes, app - web, per user"),
    ("fig5", "domains receiving leaks, app - web, per user"),
    ("fig6", "leaked PII types, app - web, per user"),
    (
        "fig7",
        "Jaccard similarity of leaked types, app vs web, per user",
    ),
];

/// Canonical per-(figure, OS) sketch key, e.g. `"fig2:Android"`.
pub fn figure_key(figure: &str, os: Os) -> String {
    format!("{figure}:{os:?}")
}

/// Canonical per-(OS, medium) cohort key, e.g. `"Android:App"`.
pub fn cohort_key(os: Os, medium: Medium) -> String {
    format!("{os:?}:{medium:?}")
}

/// Per-(OS, medium) cohort counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CohortStats {
    /// Users who used this (OS, medium) at least once.
    pub users: u64,
    /// Sessions run in the cohort.
    pub sessions: u64,
    /// TCP flows to A&A domains.
    pub aa_flows: u64,
    /// Bytes to/from A&A domains.
    pub aa_bytes: u64,
    /// PII leak instances.
    pub leak_instances: u64,
}

impl CohortStats {
    fn merge(&mut self, other: &Self) {
        self.users = self.users.saturating_add(other.users);
        self.sessions = self.sessions.saturating_add(other.sessions);
        self.aa_flows = self.aa_flows.saturating_add(other.aa_flows);
        self.aa_bytes = self.aa_bytes.saturating_add(other.aa_bytes);
        self.leak_instances = self.leak_instances.saturating_add(other.leak_instances);
    }
}

/// Per-PII-type population counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PiiStats {
    /// Users who leaked this type at least once.
    pub users: u64,
    /// Total leak instances.
    pub instances: u64,
    /// Instances attributed to app sessions.
    pub app_instances: u64,
    /// Instances attributed to web sessions.
    pub web_instances: u64,
}

impl PiiStats {
    fn merge(&mut self, other: &Self) {
        self.users = self.users.saturating_add(other.users);
        self.instances = self.instances.saturating_add(other.instances);
        self.app_instances = self.app_instances.saturating_add(other.app_instances);
        self.web_instances = self.web_instances.saturating_add(other.web_instances);
    }
}

/// One shard's mergeable population state.
///
/// Every field is a commutative monoid, so [`merge`] is associative,
/// commutative up to byte-identical serialization, has the empty state
/// as identity, and equals sequential ingestion of both shards' user
/// streams — the laws `tests/population_laws.rs` property-tests.
///
/// [`merge`]: PopulationAggregate::merge
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PopulationAggregate {
    /// Users ingested (each user lands in exactly one shard).
    pub users: u64,
    /// Users who leaked at least one PII instance.
    pub users_leaking: u64,
    /// Sessions simulated across all users.
    pub sessions: u64,
    /// Total TCP flows across sessions.
    pub flows: u64,
    /// Flows to A&A domains.
    pub aa_flows: u64,
    /// Bytes to/from A&A domains.
    pub aa_bytes: u64,
    /// PII leak instances.
    pub leak_instances: u64,
    /// Per-(OS, medium) cohort counters, keyed by [`cohort_key`].
    pub cohorts: BTreeMap<String, CohortStats>,
    /// Per-PII-type counters.
    pub pii: BTreeMap<PiiType, PiiStats>,
    /// Leak instances per A&A organization (heavy hitters).
    pub leak_orgs: TopKSketch,
    /// Users reached per A&A organization.
    pub org_reach: TopKSketch,
    /// Per-(figure, OS) difference sketches, keyed by [`figure_key`].
    pub figures: BTreeMap<String, QuantileSketch>,
}

impl PopulationAggregate {
    /// The empty state (the merge identity), with bounded top-k
    /// sketches sized for the simulator's domain universe.
    pub fn new() -> Self {
        PopulationAggregate {
            leak_orgs: TopKSketch::with_capacity(DEFAULT_TOPK_CAPACITY),
            org_reach: TopKSketch::with_capacity(DEFAULT_TOPK_CAPACITY),
            ..Self::default()
        }
    }

    /// Fold another shard's state in. Equals having ingested the other
    /// shard's user stream into `self` (exactly, while the top-k
    /// sketches stay in their zero-eviction regime).
    pub fn merge(&mut self, other: &Self) {
        self.users = self.users.saturating_add(other.users);
        self.users_leaking = self.users_leaking.saturating_add(other.users_leaking);
        self.sessions = self.sessions.saturating_add(other.sessions);
        self.flows = self.flows.saturating_add(other.flows);
        self.aa_flows = self.aa_flows.saturating_add(other.aa_flows);
        self.aa_bytes = self.aa_bytes.saturating_add(other.aa_bytes);
        self.leak_instances = self.leak_instances.saturating_add(other.leak_instances);
        for (key, stats) in &other.cohorts {
            self.cohorts.entry(key.clone()).or_default().merge(stats);
        }
        for (ty, stats) in &other.pii {
            self.pii.entry(*ty).or_default().merge(stats);
        }
        self.leak_orgs.merge(&other.leak_orgs);
        self.org_reach.merge(&other.org_reach);
        for (key, sketch) in &other.figures {
            self.figures.entry(key.clone()).or_default().merge(sketch);
        }
    }

    /// Whether every top-k summary stayed exact (no evictions), i.e.
    /// all merge laws held exactly for this state's whole history.
    pub fn is_exact(&self) -> bool {
        self.leak_orgs.is_exact() && self.org_reach.is_exact()
    }

    /// Approximate heap footprint of this state. Bounded by the fixed
    /// key/bucket universes — *not* by the number of users ingested —
    /// which is the constant-memory claim `BENCH_population.json`
    /// reports and `tests/population_laws.rs` checks.
    pub fn approx_bytes(&self) -> u64 {
        let mut bytes = 64u64;
        bytes = bytes.saturating_add(self.cohorts.len() as u64 * 96);
        bytes = bytes.saturating_add(self.pii.len() as u64 * 48);
        bytes = bytes.saturating_add(self.leak_orgs.approx_bytes());
        bytes = bytes.saturating_add(self.org_reach.approx_bytes());
        for (key, sketch) in &self.figures {
            bytes = bytes.saturating_add(24 + key.len() as u64);
            bytes = bytes.saturating_add(sketch.approx_bytes());
        }
        bytes
    }
}

/// A finished population campaign: configuration echo plus the fully
/// reduced aggregate. Pure function of `(study, users, shards, seed)`;
/// byte-identical across worker counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PopulationReport {
    /// Simulated users.
    pub users: u64,
    /// Shard count the users were partitioned into.
    pub shards: u32,
    /// Population seed (independent of the study seed).
    pub seed: u64,
    /// Largest single shard state observed before reduction, in
    /// approximate bytes — the constant-memory witness.
    pub peak_state_bytes: u64,
    /// The reduced population state.
    pub aggregate: PopulationAggregate,
}

appvsweb_json::impl_json!(struct CohortStats { users, sessions, aa_flows, aa_bytes, leak_instances });
appvsweb_json::impl_json!(struct PiiStats { users, instances, app_instances, web_instances });
appvsweb_json::impl_json!(struct PopulationAggregate {
    users,
    users_leaking,
    sessions,
    flows,
    aa_flows,
    aa_bytes,
    leak_instances,
    cohorts,
    pii,
    leak_orgs,
    org_reach,
    figures,
});
appvsweb_json::impl_json!(struct PopulationReport { users, shards, seed, peak_state_bytes, aggregate });

// --------------------------------------------------------------------
// Population tables (the report's Tables 3–5)
// --------------------------------------------------------------------

/// One row of population Table 3: a PII type's population reach.
#[derive(Clone, Debug)]
pub struct PopTypeRow {
    /// The PII class.
    pub pii_type: PiiType,
    /// Users who leaked it.
    pub users: u64,
    /// Fraction of the population affected, in `[0, 1]`.
    pub pct_users: f64,
    /// Total leak instances.
    pub instances: u64,
    /// Instances via app sessions.
    pub app_instances: u64,
    /// Instances via web sessions.
    pub web_instances: u64,
}

/// Population Table 3: per-PII-type reach, every type in Table 1
/// column order (zero rows included, so the layout is stable).
pub fn population_table3(report: &PopulationReport) -> Vec<PopTypeRow> {
    let users = report.aggregate.users.max(1) as f64;
    PiiType::ALL
        .iter()
        .map(|ty| {
            let stats = report.aggregate.pii.get(ty).cloned().unwrap_or_default();
            PopTypeRow {
                pii_type: *ty,
                users: stats.users,
                pct_users: stats.users as f64 / users,
                instances: stats.instances,
                app_instances: stats.app_instances,
                web_instances: stats.web_instances,
            }
        })
        .collect()
}

/// One row of population Table 4: a heavy-hitter A&A organization.
#[derive(Clone, Debug)]
pub struct PopOrgRow {
    /// Organization (registrable domain sans public suffix).
    pub organization: String,
    /// Total leak instances it received.
    pub instances: u64,
    /// Users whose traffic reached it.
    pub users: u64,
    /// Fraction of the population reached, in `[0, 1]`.
    pub pct_users: f64,
}

/// Population Table 4: the `n` organizations receiving the most leak
/// instances, ranked by the top-k total order (count desc, key asc).
pub fn population_table4(report: &PopulationReport, n: usize) -> Vec<PopOrgRow> {
    let users = report.aggregate.users.max(1) as f64;
    report
        .aggregate
        .leak_orgs
        .top(n)
        .into_iter()
        .map(|entry| {
            let reach = report.aggregate.org_reach.count(&entry.key);
            PopOrgRow {
                organization: entry.key.clone(),
                instances: entry.count,
                users: reach,
                pct_users: reach as f64 / users,
            }
        })
        .collect()
}

/// One row of population Table 5: an (OS, medium) cohort.
#[derive(Clone, Debug)]
pub struct PopCohortRow {
    /// Cohort label ([`cohort_key`] form).
    pub cohort: String,
    /// Users active in the cohort.
    pub users: u64,
    /// Sessions run.
    pub sessions: u64,
    /// Mean A&A flows per session.
    pub aa_flows_per_session: f64,
    /// Total A&A megabytes.
    pub aa_mb: f64,
    /// Mean leak instances per user in the cohort.
    pub leaks_per_user: f64,
}

/// Population Table 5: cohort summaries in key order.
pub fn population_table5(report: &PopulationReport) -> Vec<PopCohortRow> {
    report
        .aggregate
        .cohorts
        .iter()
        .map(|(key, stats)| PopCohortRow {
            cohort: key.clone(),
            users: stats.users,
            sessions: stats.sessions,
            aa_flows_per_session: stats.aa_flows as f64 / stats.sessions.max(1) as f64,
            aa_mb: stats.aa_bytes as f64 / 1.0e6,
            leaks_per_user: stats.leak_instances as f64 / stats.users.max(1) as f64,
        })
        .collect()
}

/// A rendered summary of one population CDF sketch.
#[derive(Clone, Debug)]
pub struct FigureSummary {
    /// Sketch key ([`figure_key`] form).
    pub key: String,
    /// Figure description from [`FIGURES`].
    pub description: String,
    /// Finite samples in the sketch (== users contributing).
    pub count: u64,
    /// Selected quantiles `(q, value)`.
    pub quantiles: Vec<(f64, f64)>,
    /// Fraction of strictly negative samples (web-heavier users).
    pub fraction_negative: f64,
}

/// Quantiles every figure summary reports.
const SUMMARY_QUANTILES: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

/// Summaries of every figure sketch in the report, in [`FIGURES`] ×
/// OS order.
pub fn figure_summaries(report: &PopulationReport) -> Vec<FigureSummary> {
    let mut out = Vec::new();
    for (figure, description) in FIGURES {
        for os in [Os::Android, Os::Ios] {
            let key = figure_key(figure, os);
            let Some(sketch) = report.aggregate.figures.get(&key) else {
                continue;
            };
            out.push(FigureSummary {
                key,
                description: description.to_string(),
                count: sketch.len(),
                quantiles: SUMMARY_QUANTILES
                    .iter()
                    .map(|&q| (q, sketch.quantile(q)))
                    .collect(),
                fraction_negative: sketch.fraction_negative(),
            });
        }
    }
    out
}

// --------------------------------------------------------------------
// Rendering
// --------------------------------------------------------------------

/// Render the whole population report — header, Tables 3–5, CDF
/// summaries — as the text `repro population` prints and the golden
/// test snapshots.
pub fn render_population_report(report: &PopulationReport) -> String {
    let mut out = String::new();
    let agg = &report.aggregate;
    out.push_str(&format!(
        "== Population campaign: {} users, {} shards, seed {} ==\n",
        report.users, report.shards, report.seed
    ));
    out.push_str(&format!(
        "peak shard state: {} bytes (approx); exact top-k regime: {}\n",
        report.peak_state_bytes,
        if agg.is_exact() {
            "yes"
        } else {
            "NO (evicted)"
        }
    ));
    out.push_str(&format!(
        "users leaking: {} ({:.1}%)  sessions: {}  flows: {}  A&A flows: {}  leaks: {}\n\n",
        agg.users_leaking,
        agg.users_leaking as f64 / agg.users.max(1) as f64 * 100.0,
        agg.sessions,
        agg.flows,
        agg.aa_flows,
        agg.leak_instances
    ));

    out.push_str("== Population Table 3: PII types across the population ==\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>8} {:>12} {:>12} {:>12}\n",
        "type", "users", "%users", "instances", "app", "web"
    ));
    for row in population_table3(report) {
        out.push_str(&format!(
            "{:<12} {:>10} {:>7.1}% {:>12} {:>12} {:>12}\n",
            row.pii_type.abbrev(),
            row.users,
            row.pct_users * 100.0,
            row.instances,
            row.app_instances,
            row.web_instances
        ));
    }
    out.push('\n');

    out.push_str("== Population Table 4: top A&A organizations by leak instances ==\n");
    out.push_str(&format!(
        "{:<20} {:>12} {:>10} {:>8}\n",
        "organization", "instances", "users", "%users"
    ));
    for row in population_table4(report, 15) {
        out.push_str(&format!(
            "{:<20} {:>12} {:>10} {:>7.1}%\n",
            row.organization,
            row.instances,
            row.users,
            row.pct_users * 100.0
        ));
    }
    out.push('\n');

    out.push_str("== Population Table 5: OS x medium cohorts ==\n");
    out.push_str(&format!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "cohort", "users", "sessions", "aaF/sess", "aaMB", "leaks/usr"
    ));
    for row in population_table5(report) {
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>10.2} {:>10.2} {:>10.2}\n",
            row.cohort,
            row.users,
            row.sessions,
            row.aa_flows_per_session,
            row.aa_mb,
            row.leaks_per_user
        ));
    }
    out.push('\n');

    out.push_str("== Population CDF summaries (Figures 2-7, app - web per user) ==\n");
    for s in figure_summaries(report) {
        out.push_str(&format!("{} — {}\n", s.key, s.description));
        let quantiles: Vec<String> = s
            .quantiles
            .iter()
            .map(|(q, v)| format!("p{:02.0}={v:.2}", q * 100.0))
            .collect();
        out.push_str(&format!(
            "  n={} {}  neg={:.1}%\n",
            s.count,
            quantiles.join(" "),
            s.fraction_negative * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aggregate() -> PopulationAggregate {
        let mut agg = PopulationAggregate::new();
        agg.users = 10;
        agg.users_leaking = 7;
        agg.sessions = 40;
        agg.flows = 400;
        agg.aa_flows = 120;
        agg.aa_bytes = 3_000_000;
        agg.leak_instances = 25;
        agg.cohorts.insert(
            cohort_key(Os::Android, Medium::App),
            CohortStats {
                users: 6,
                sessions: 20,
                aa_flows: 80,
                aa_bytes: 2_000_000,
                leak_instances: 15,
            },
        );
        agg.pii.insert(
            PiiType::Email,
            PiiStats {
                users: 5,
                instances: 12,
                app_instances: 9,
                web_instances: 3,
            },
        );
        agg.leak_orgs.add("doubleclick", 9);
        agg.leak_orgs.add("crashlytics", 4);
        agg.org_reach.add("doubleclick", 6);
        agg.org_reach.add("crashlytics", 3);
        agg.figures
            .entry(figure_key("fig2", Os::Android))
            .or_default()
            .add(3.0);
        agg
    }

    #[test]
    fn merge_is_identity_on_empty() {
        let a = sample_aggregate();
        let mut b = a.clone();
        b.merge(&PopulationAggregate::new());
        assert_eq!(appvsweb_json::encode(&a), appvsweb_json::encode(&b));
    }

    #[test]
    fn tables_and_render_are_total() {
        let report = PopulationReport {
            users: 10,
            shards: 4,
            seed: 1,
            peak_state_bytes: sample_aggregate().approx_bytes(),
            aggregate: sample_aggregate(),
        };
        let t3 = population_table3(&report);
        assert_eq!(t3.len(), PiiType::ALL.len());
        let email = t3
            .iter()
            .find(|r| r.pii_type == PiiType::Email)
            .expect("email row");
        assert_eq!(email.instances, 12);
        assert!((email.pct_users - 0.5).abs() < 1e-12);
        let t4 = population_table4(&report, 10);
        assert_eq!(
            t4.first().map(|r| r.organization.as_str()),
            Some("doubleclick")
        );
        assert_eq!(t4.first().map(|r| r.users), Some(6));
        let t5 = population_table5(&report);
        assert_eq!(t5.len(), 1);
        let text = render_population_report(&report);
        assert!(text.contains("Population Table 3"));
        assert!(text.contains("doubleclick"));
        assert!(text.contains("fig2:Android"));
        // Empty report renders too.
        let empty = PopulationReport::default();
        assert!(render_population_report(&empty).contains("0 users"));
    }

    #[test]
    fn report_codec_round_trips() {
        let report = PopulationReport {
            users: 10,
            shards: 4,
            seed: 9,
            peak_state_bytes: 123,
            aggregate: sample_aggregate(),
        };
        let back: PopulationReport =
            appvsweb_json::decode(&appvsweb_json::encode(&report)).expect("report decodes");
        assert_eq!(back, report);
    }

    #[test]
    fn approx_bytes_tracks_structure_not_mass() {
        let mut a = sample_aggregate();
        let before = a.approx_bytes();
        // Pour in a lot more mass over the same keys: footprint stable.
        for _ in 0..1000 {
            a.leak_orgs.add("doubleclick", 1000);
            a.users = a.users.saturating_add(1000);
        }
        assert_eq!(a.approx_bytes(), before);
    }
}
