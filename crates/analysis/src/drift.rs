//! Revision diffing: drift alarms between successive leak profiles.
//!
//! The paper's longitudinal observation — services' leak behaviour
//! changes over time, so the app-vs-web answer must be re-measured —
//! becomes actionable once successive campaign revisions can be
//! *compared*. This module distils each [`CellAnalysis`] into a compact
//! [`LeakProfile`] and diffs two revisions' profiles into structured
//! [`DriftAlarm`]s covering the three regressions the resident service
//! (`repro serve`) monitors for:
//!
//! * a **new third-party A&A domain** contacted by the cell,
//! * a **new PII type** leaking from the cell, and
//! * an **HTTPS→plaintext regression**: a type that previously leaked
//!   only over TLS now observed in cleartext.
//!
//! Both profile extraction and diffing are pure folds over sorted sets,
//! so the alarm list is deterministic and byte-stable across runs and
//! worker counts — the same discipline as every other report surface.

use crate::leaks::{CellAnalysis, Study};
use appvsweb_netsim::Os;
use appvsweb_pii::PiiType;
use appvsweb_services::Medium;
use std::collections::BTreeSet;

/// The drift-relevant distillation of one cell's [`CellAnalysis`].
///
/// Everything a revision diff needs, and nothing more: the leak/contact
/// sets plus the A&A traffic counters that the serve-mode report
/// surfaces alongside alarms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakProfile {
    /// Service slug.
    pub service: String,
    /// Test OS.
    pub os: Os,
    /// App or Web.
    pub medium: Medium,
    /// Distinct PII types leaked by the cell.
    pub leaked_types: Vec<PiiType>,
    /// PII types observed leaking in plaintext at least once.
    pub plaintext_types: Vec<PiiType>,
    /// Registrable domains that received at least one leak.
    pub leak_domains: Vec<String>,
    /// Unique A&A registrable domains contacted.
    pub aa_domains: Vec<String>,
    /// TCP connections to A&A domains.
    pub aa_flows: u64,
    /// Bytes to/from A&A domains.
    pub aa_bytes: u64,
}

appvsweb_json::impl_json!(struct LeakProfile {
    service,
    os,
    medium,
    leaked_types,
    plaintext_types,
    leak_domains,
    aa_domains,
    aa_flows,
    aa_bytes,
});

impl LeakProfile {
    /// Distil one cell's analysis into its drift profile.
    pub fn of_cell(cell: &CellAnalysis) -> LeakProfile {
        let plaintext: BTreeSet<PiiType> = cell
            .leaks
            .iter()
            .filter(|l| l.plaintext)
            .map(|l| l.pii_type)
            .collect();
        LeakProfile {
            service: cell.service_id.clone(),
            os: cell.os,
            medium: cell.medium,
            leaked_types: cell.leaked_types.iter().copied().collect(),
            plaintext_types: plaintext.into_iter().collect(),
            leak_domains: cell.leak_domains.iter().cloned().collect(),
            aa_domains: cell.aa_domains.iter().cloned().collect(),
            aa_flows: cell.aa_flows,
            aa_bytes: cell.aa_bytes,
        }
    }

    /// The `service/Os/Medium` cell label this profile describes.
    pub fn label(&self) -> String {
        format!("{}/{:?}/{:?}", self.service, self.os, self.medium)
    }
}

/// Profiles for every cell of a study, in the study's (sorted) cell
/// order.
pub fn profiles_of(study: &Study) -> Vec<LeakProfile> {
    study.cells.iter().map(LeakProfile::of_cell).collect()
}

/// What kind of regression a [`DriftAlarm`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftKind {
    /// The cell now contacts an A&A domain it did not before.
    NewThirdPartyDomain,
    /// The cell now leaks a PII type it did not before.
    NewPiiType,
    /// A type that previously leaked only over TLS now travels in
    /// plaintext.
    PlaintextRegression,
}

appvsweb_json::impl_json!(
    enum DriftKind {
        NewThirdPartyDomain,
        NewPiiType,
        PlaintextRegression,
    }
);

/// One structured drift notification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftAlarm {
    /// Service slug.
    pub service: String,
    /// Test OS.
    pub os: Os,
    /// App or Web.
    pub medium: Medium,
    /// Which regression class fired.
    pub kind: DriftKind,
    /// The domain or PII-type label the alarm is about.
    pub subject: String,
}

appvsweb_json::impl_json!(struct DriftAlarm {
    service,
    os,
    medium,
    kind,
    subject,
});

impl DriftAlarm {
    /// Render as a single stable line for reports and logs.
    pub fn render(&self) -> String {
        let what = match self.kind {
            DriftKind::NewThirdPartyDomain => "new third-party domain",
            DriftKind::NewPiiType => "new PII type",
            DriftKind::PlaintextRegression => "HTTPS->plaintext regression",
        };
        format!(
            "{}/{:?}/{:?}: {} {}",
            self.service, self.os, self.medium, what, self.subject
        )
    }
}

/// Diff two revisions' profiles into drift alarms.
///
/// Cells are matched by `(service, os, medium)`; cells present in only
/// one revision produce no alarms (a brand-new cell is coverage change,
/// not drift). Within a matched cell the three regression classes are
/// emitted in `(kind, subject)` order, and cells in `new`'s order, so
/// the alarm list is deterministic.
pub fn diff_profiles(old: &[LeakProfile], new: &[LeakProfile]) -> Vec<DriftAlarm> {
    let mut alarms = Vec::new();
    for cur in new {
        let Some(prev) = old
            .iter()
            .find(|p| p.service == cur.service && p.os == cur.os && p.medium == cur.medium)
        else {
            continue;
        };
        let mut cell_alarms = Vec::new();
        let prev_aa: BTreeSet<&String> = prev.aa_domains.iter().collect();
        for domain in &cur.aa_domains {
            if !prev_aa.contains(domain) {
                cell_alarms.push((DriftKind::NewThirdPartyDomain, domain.clone()));
            }
        }
        let prev_types: BTreeSet<PiiType> = prev.leaked_types.iter().copied().collect();
        for ty in &cur.leaked_types {
            if !prev_types.contains(ty) {
                cell_alarms.push((DriftKind::NewPiiType, ty.label().to_string()));
            }
        }
        let prev_plain: BTreeSet<PiiType> = prev.plaintext_types.iter().copied().collect();
        for ty in &cur.plaintext_types {
            // A regression needs the type to have leaked before (over
            // TLS only); a never-seen type is already a NewPiiType.
            if prev_types.contains(ty) && !prev_plain.contains(ty) {
                cell_alarms.push((DriftKind::PlaintextRegression, ty.label().to_string()));
            }
        }
        cell_alarms.sort();
        alarms.extend(cell_alarms.into_iter().map(|(kind, subject)| DriftAlarm {
            service: cur.service.clone(),
            os: cur.os,
            medium: cur.medium,
            kind,
            subject,
        }));
    }
    alarms
}

/// The four golden headline rates (Table 1, rounded to 0.1%) that the
/// no-fault serve path must reproduce unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HeadlineStats {
    /// All-services app leak rate (paper: 92.0%).
    pub app_pct: f64,
    /// All-services web leak rate (reproduction: 74.0%).
    pub web_pct: f64,
    /// Android web leak rate (53.1%).
    pub android_web_pct: f64,
    /// iOS web leak rate (75.5%).
    pub ios_web_pct: f64,
}

appvsweb_json::impl_json!(struct HeadlineStats {
    app_pct,
    web_pct,
    android_web_pct,
    ios_web_pct,
});

/// Compute the golden headline rates from a study, with the same
/// one-decimal rounding `tests/study_golden.rs` pins.
pub fn headline_stats(study: &Study) -> HeadlineStats {
    let t1 = crate::tables::table1(study);
    let pct = |group: &str, medium: Medium| {
        t1.rows
            .iter()
            .find(|r| r.group == group && r.medium == medium)
            .map(|r| (r.pct_leaking * 1000.0).round() / 10.0)
            .unwrap_or(0.0)
    };
    HeadlineStats {
        app_pct: pct("All", Medium::App),
        web_pct: pct("All", Medium::Web),
        android_web_pct: pct("Android", Medium::Web),
        ios_web_pct: pct("iOS", Medium::Web),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaks::LeakEvent;
    use appvsweb_adblock::Category;
    use appvsweb_json::{FromJson, ToJson};
    use appvsweb_services::ServiceCategory;

    fn profile(service: &str) -> LeakProfile {
        LeakProfile {
            service: service.to_string(),
            os: Os::Android,
            medium: Medium::App,
            leaked_types: vec![PiiType::Email, PiiType::Location],
            plaintext_types: vec![PiiType::Location],
            leak_domains: vec!["ads.example".to_string()],
            aa_domains: vec!["ads.example".to_string(), "track.example".to_string()],
            aa_flows: 4,
            aa_bytes: 2048,
        }
    }

    #[test]
    fn identical_revisions_produce_no_alarms() {
        let rev = vec![profile("svc")];
        assert!(diff_profiles(&rev, &rev).is_empty());
    }

    #[test]
    fn each_regression_class_fires_once_in_sorted_order() {
        let old = vec![profile("svc")];
        let mut cur = profile("svc");
        cur.aa_domains.push("new-tracker.example".to_string());
        cur.leaked_types.push(PiiType::UniqueId);
        // Email previously leaked TLS-only; now also plaintext.
        cur.plaintext_types.insert(0, PiiType::Email);
        let alarms = diff_profiles(&old, std::slice::from_ref(&cur));
        let kinds: Vec<DriftKind> = alarms.iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DriftKind::NewThirdPartyDomain,
                DriftKind::NewPiiType,
                DriftKind::PlaintextRegression
            ]
        );
        assert_eq!(alarms[0].subject, "new-tracker.example");
        assert_eq!(alarms[1].subject, PiiType::UniqueId.label());
        assert_eq!(alarms[2].subject, PiiType::Email.label());
    }

    #[test]
    fn brand_new_pii_type_is_not_also_a_plaintext_regression() {
        let old = vec![profile("svc")];
        let mut cur = profile("svc");
        cur.leaked_types.push(PiiType::UniqueId);
        cur.plaintext_types.push(PiiType::UniqueId);
        let alarms = diff_profiles(&old, std::slice::from_ref(&cur));
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].kind, DriftKind::NewPiiType);
    }

    #[test]
    fn unmatched_cells_are_skipped() {
        let old = vec![profile("a")];
        let new = vec![profile("b")];
        assert!(diff_profiles(&old, &new).is_empty());
    }

    #[test]
    fn profiles_and_alarms_roundtrip_through_json() {
        let p = profile("svc");
        let back = LeakProfile::from_json(&p.to_json()).expect("profile roundtrip");
        assert_eq!(back, p);
        let alarm = DriftAlarm {
            service: "svc".to_string(),
            os: Os::Ios,
            medium: Medium::Web,
            kind: DriftKind::PlaintextRegression,
            subject: "email".to_string(),
        };
        let back = DriftAlarm::from_json(&alarm.to_json()).expect("alarm roundtrip");
        assert_eq!(back, alarm);
    }

    #[test]
    fn profile_of_cell_extracts_plaintext_types() {
        let cell = CellAnalysis {
            service_id: "svc".to_string(),
            service_name: "Svc".to_string(),
            category: ServiceCategory::Weather,
            rank: 1,
            os: Os::Android,
            medium: Medium::App,
            aa_domains: ["t.example".to_string()].into_iter().collect(),
            aa_flows: 1,
            aa_bytes: 10,
            total_flows: 3,
            leaks: vec![
                LeakEvent {
                    pii_type: PiiType::Email,
                    domain: "t.example".to_string(),
                    category: Category::Analytics,
                    plaintext: false,
                },
                LeakEvent {
                    pii_type: PiiType::Location,
                    domain: "t.example".to_string(),
                    category: Category::Analytics,
                    plaintext: true,
                },
            ],
            leak_domains: ["t.example".to_string()].into_iter().collect(),
            leaked_types: [PiiType::Email, PiiType::Location].into_iter().collect(),
            per_type: Default::default(),
            per_domain_leaks: Default::default(),
            per_domain_types: Default::default(),
            fault_counts: Default::default(),
            retries: 0,
        };
        let p = LeakProfile::of_cell(&cell);
        assert_eq!(p.leaked_types, vec![PiiType::Email, PiiType::Location]);
        assert_eq!(p.plaintext_types, vec![PiiType::Location]);
        assert_eq!(p.label(), "svc/Android/App");
    }
}
