//! TLS record-layer sizing.
//!
//! Figure 1c of the paper compares megabytes of A&A traffic between app
//! and Web versions of services, so the simulation needs a credible model
//! of how many bytes TLS adds to a given application payload. We model
//! TLS 1.2 with an AES-GCM suite (the dominant configuration in 2016):
//! 5-byte record header + 8-byte explicit nonce + 16-byte tag per record,
//! records capped at 16 KiB of plaintext, plus a fixed handshake cost.

/// Maximum plaintext fragment per TLS record.
pub const MAX_FRAGMENT: usize = 16 * 1024;

/// Per-record overhead: 5 (header) + 8 (explicit nonce) + 16 (GCM tag).
pub const RECORD_OVERHEAD: usize = 29;

/// Approximate bytes exchanged by a full TLS 1.2 handshake
/// (ClientHello + ServerHello/cert chain/ServerHelloDone + client key
/// exchange + Finished in both directions). Dominated by the certificate
/// chain; 4 KiB is a representative 2016 value for a two-cert chain.
pub const FULL_HANDSHAKE_BYTES: usize = 4096;

/// Approximate bytes for an abbreviated (session-resumption) handshake.
pub const RESUMED_HANDSHAKE_BYTES: usize = 330;

/// Bytes on the wire for `plaintext_len` bytes of application data.
///
/// ```
/// use appvsweb_tlssim::record::wire_bytes;
/// assert_eq!(wire_bytes(0), 0);
/// assert_eq!(wire_bytes(100), 129);
/// // Two records needed just past the fragment cap:
/// assert_eq!(wire_bytes(16 * 1024 + 1), 16 * 1024 + 1 + 2 * 29);
/// ```
pub fn wire_bytes(plaintext_len: usize) -> usize {
    if plaintext_len == 0 {
        appvsweb_cover::cover!();
        return 0;
    }
    let records = plaintext_len.div_ceil(MAX_FRAGMENT);
    if records > 1 {
        appvsweb_cover::cover!();
    }
    plaintext_len + records * RECORD_OVERHEAD
}

/// Number of TLS records needed for `plaintext_len` bytes.
pub fn record_count(plaintext_len: usize) -> usize {
    plaintext_len.div_ceil(MAX_FRAGMENT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_payload_zero_records() {
        assert_eq!(record_count(0), 0);
        assert_eq!(wire_bytes(0), 0);
    }

    #[test]
    fn single_record_boundary() {
        assert_eq!(record_count(MAX_FRAGMENT), 1);
        assert_eq!(record_count(MAX_FRAGMENT + 1), 2);
        assert_eq!(wire_bytes(MAX_FRAGMENT), MAX_FRAGMENT + RECORD_OVERHEAD);
    }

    #[test]
    fn overhead_is_monotonic() {
        let mut prev = 0;
        for len in [1, 10, 1000, 20_000, 100_000] {
            let w = wire_bytes(len);
            assert!(w > prev);
            assert!(w >= len);
            prev = w;
        }
    }
}
