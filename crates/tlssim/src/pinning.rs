//! Certificate pinning.
//!
//! Apps that pin (Facebook, Twitter in the original study) reject any
//! chain whose keys are not in their pin set — including the MITM proxy's
//! forged chains, which is why pinned services could not be measured and
//! were excluded by selection criterion (4) in §3.1 of the paper.

use crate::cert::{CertificateChain, KeyId};
use std::collections::BTreeSet;

/// A set of pinned public keys for a specific service.
///
/// Matching follows HPKP-style semantics: the chain is accepted if *any*
/// certificate in it carries a pinned key. An empty pin set means "no
/// pinning" and accepts everything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PinSet {
    pins: BTreeSet<KeyId>,
}

impl PinSet {
    /// No pinning: every chain acceptable.
    pub fn none() -> Self {
        Self::default()
    }

    /// Pin the given keys.
    pub fn of(keys: impl IntoIterator<Item = KeyId>) -> Self {
        PinSet {
            pins: keys.into_iter().collect(),
        }
    }

    /// Whether this set actually pins anything.
    pub fn is_pinning(&self) -> bool {
        !self.pins.is_empty()
    }

    /// Whether `chain` satisfies the pins.
    pub fn accepts(&self, chain: &CertificateChain) -> bool {
        if self.pins.is_empty() {
            return true;
        }
        chain.0.iter().any(|c| self.pins.contains(&c.key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;

    #[test]
    fn empty_pinset_accepts_all() {
        let ca = CertificateAuthority::new("Root");
        assert!(PinSet::none().accepts(&ca.chain_for("x.com")));
        assert!(!PinSet::none().is_pinning());
    }

    #[test]
    fn pinned_leaf_accepts_only_matching_key() {
        let ca = CertificateAuthority::new("Root");
        let chain = ca.chain_for("facebook.com");
        let pins = PinSet::of([chain.leaf().unwrap().key]);
        assert!(pins.is_pinning());
        assert!(pins.accepts(&chain));
        // A forged chain for the same host under a proxy CA has different keys.
        let proxy = CertificateAuthority::new("MeddleProxyCA");
        assert!(!pins.accepts(&proxy.chain_for("facebook.com")));
    }

    #[test]
    fn pinning_the_ca_key_accepts_reissued_leaves() {
        let ca = CertificateAuthority::new("Root");
        let pins = PinSet::of([ca.root.key]);
        assert!(pins.accepts(&ca.chain_for("a.twitter.com")));
        assert!(pins.accepts(&ca.chain_for("b.twitter.com")));
    }
}

appvsweb_json::impl_json!(struct PinSet { pins });
