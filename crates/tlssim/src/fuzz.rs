//! Fuzz entry point for the TLS record-layer sizing model.
//!
//! A structured target: the fuzz bytes are decoded as a stream of `u32`
//! payload lengths (keeping the arithmetic far from `usize` overflow),
//! and the sizing laws Figure 1c depends on are asserted per length —
//! exact record accounting, monotonicity, and the fragment-cap
//! boundary.

use crate::record::{record_count, wire_bytes, MAX_FRAGMENT, RECORD_OVERHEAD};

/// Run the record-sizing target on raw fuzz bytes.
pub fn run(data: &[u8]) {
    for chunk in data.chunks(4) {
        let mut le = [0u8; 4];
        for (slot, &b) in le.iter_mut().zip(chunk) {
            *slot = b;
        }
        let len = u32::from_le_bytes(le) as usize;

        let records = record_count(len);
        let wire = wire_bytes(len);

        // Exact accounting: the wire never carries anything but payload
        // plus per-record overhead.
        assert_eq!(wire, len + records * RECORD_OVERHEAD, "len {len}");
        assert_eq!(records, len.div_ceil(MAX_FRAGMENT), "len {len}");
        assert!(wire >= len, "wire must dominate payload (len {len})");

        // Differential reference: the closed-form arithmetic must agree
        // with a naive fragment-by-fragment loop (the "obviously
        // correct" implementation). Bounded so a u32::MAX length does
        // not loop 256k times per draw; the cap still spans many
        // fragment boundaries.
        if len <= MAX_FRAGMENT * 64 {
            let mut naive_records = 0usize;
            let mut naive_wire = 0usize;
            let mut rem = len;
            while rem > 0 {
                let frag = rem.min(MAX_FRAGMENT);
                naive_records += 1;
                naive_wire += frag + RECORD_OVERHEAD;
                rem -= frag;
            }
            assert_eq!(records, naive_records, "record count diverged at {len}");
            assert_eq!(wire, naive_wire, "wire bytes diverged at {len}");
        }

        // Boundary behaviour: one more byte past a fragment boundary
        // costs exactly one record of overhead extra.
        if len > 0 && len.is_multiple_of(MAX_FRAGMENT) {
            assert_eq!(
                wire_bytes(len + 1),
                wire + 1 + RECORD_OVERHEAD,
                "crossing the fragment cap at {len}"
            );
        }
        // Monotone in the payload: adding a byte never shrinks the wire.
        if len > 0 {
            assert!(
                wire_bytes(len - 1) <= wire,
                "wire_bytes not monotone at {len}"
            );
        }
    }
}

/// Dictionary: little-endian encodings of the interesting boundaries.
pub const DICT: &[&[u8]] = &[
    &[0, 0, 0, 0],
    &[1, 0, 0, 0],
    &[0xff, 0x3f, 0, 0],
    &[0x00, 0x40, 0, 0],
    &[0x01, 0x40, 0, 0],
    &[0xff, 0xff, 0xff, 0xff],
];

/// Seeds: a sweep crossing several fragment boundaries.
pub const SEEDS: &[&[u8]] = &[
    &[0, 0, 0, 0, 100, 0, 0, 0, 0x00, 0x40, 0, 0, 0x01, 0x40, 0, 0],
    &[0xff, 0xff, 0, 0, 0x00, 0x00, 0x01, 0x00],
];
