//! # appvsweb-tlssim
//!
//! A TLS *behaviour* model for the `appvsweb` reproduction of
//! *"Should You Use the App for That?"* (IMC 2016).
//!
//! The paper decrypts HTTPS with mitmproxy: the proxy terminates TLS,
//! presents a leaf certificate forged under a CA the test device trusts,
//! and re-encrypts toward the real server. Two behaviours of that setup
//! matter to the study and are reproduced faithfully here:
//!
//! 1. **Interception succeeds** when the client's trust store contains the
//!    proxy CA and the service does not pin — yielding plaintext
//!    visibility of HTTPS bodies.
//! 2. **Interception fails closed** when the service pins its certificate
//!    or public key — which is why Facebook and Twitter had to be excluded
//!    from the original study.
//!
//! This is not a cryptographic implementation: no key exchange or cipher
//! runs. Certificates carry opaque key identifiers, "signing" is the act
//! of recording the issuer relationship, and "verification" checks chain
//! structure, name matching, validity windows, trust anchoring, and pins —
//! the exact checks whose outcomes drive the measurement pipeline.
//! Record-layer framing overhead is modelled so byte accounting
//! (paper Fig. 1c) reflects TLS costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod fuzz;
pub mod handshake;
pub mod pinning;
pub mod record;
pub mod trust;

pub use cert::{Certificate, CertificateAuthority, CertificateChain, KeyId};
pub use handshake::{ClientConfig, HandshakeError, HandshakeOutcome, ServerConfig, TlsSession};
pub use pinning::PinSet;
pub use trust::TrustStore;
