//! TLS handshake simulation.
//!
//! A handshake takes a client configuration (trust store, pin set, SNI)
//! and a server configuration (certificate chain, resumption support) and
//! produces either an established [`TlsSession`] or a
//! [`HandshakeError`]. The MITM proxy calls this twice per intercepted
//! connection: once as a *server* facing the device (with a forged chain)
//! and once as a *client* facing the real origin.

use crate::cert::CertificateChain;
use crate::pinning::PinSet;
use crate::record::{self, FULL_HANDSHAKE_BYTES, RESUMED_HANDSHAKE_BYTES};
use crate::trust::TrustStore;

/// Client-side handshake parameters.
#[derive(Clone, Debug)]
pub struct ClientConfig<'a> {
    /// Roots the client trusts.
    pub trust: &'a TrustStore,
    /// Pins the client enforces for this host (empty = none).
    pub pins: &'a PinSet,
    /// Server name sent in the ClientHello SNI extension. The MITM proxy
    /// reads this to know which leaf to forge.
    pub server_name: String,
    /// Current simulation time (for validity checks).
    pub now: u64,
}

/// Server-side handshake parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Chain the server presents.
    pub chain: CertificateChain,
    /// Whether the server offers session resumption.
    pub supports_resumption: bool,
}

/// Why a handshake failed. Mirrors the TLS alerts relevant to the study.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HandshakeError {
    /// Chain failed structural/validity/name/anchor verification
    /// (alert: `bad_certificate` / `unknown_ca`).
    UntrustedCertificate,
    /// Chain verified but violated the client's pin set. This is the
    /// failure that forced Facebook/Twitter out of the original study.
    PinViolation,
    /// The handshake aborted for a network-level reason unrelated to
    /// certificates or pins (lost flight, mid-handshake reset, peer
    /// `internal_error` alert). This is the fault-injection hook: live
    /// 2016 captures were full of handshakes that simply died, and the
    /// chaos layer reproduces them through this variant.
    Aborted,
}

impl HandshakeError {
    /// Whether a client may reasonably retry the connection (certificate
    /// and pin failures are deterministic; aborts are weather).
    pub fn is_transient(&self) -> bool {
        matches!(self, HandshakeError::Aborted)
    }
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::UntrustedCertificate => f.write_str("untrusted certificate chain"),
            HandshakeError::PinViolation => f.write_str("certificate pin violation"),
            HandshakeError::Aborted => f.write_str("handshake aborted (network fault)"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// An established TLS session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlsSession {
    /// SNI value the session was established for.
    pub server_name: String,
    /// Bytes consumed by the handshake itself.
    pub handshake_bytes: usize,
    /// Whether this was an abbreviated (resumed) handshake.
    pub resumed: bool,
}

impl TlsSession {
    /// Wire bytes for sending `plaintext_len` application bytes over this
    /// session (record framing only; the handshake is counted once in
    /// [`TlsSession::handshake_bytes`]).
    pub fn wire_bytes(&self, plaintext_len: usize) -> usize {
        let wire = record::wire_bytes(plaintext_len);
        appvsweb_obs::counter!("tlssim.record_overhead_bytes", wire - plaintext_len);
        wire
    }
}

/// Outcome of [`handshake`].
pub type HandshakeOutcome = Result<TlsSession, HandshakeError>;

/// Run a TLS handshake between `client` and `server`.
///
/// `resume` requests an abbreviated handshake; it is honoured only when
/// the server supports resumption (certificate checks still apply —
/// clients re-validate on resumption in this model, which is the
/// conservative behaviour).
pub fn handshake(
    client: &ClientConfig<'_>,
    server: &ServerConfig,
    resume: bool,
) -> HandshakeOutcome {
    handshake_with_fault(client, server, resume, false)
}

/// [`handshake`] with a fault-injection input: when `abort` is true the
/// handshake dies with [`HandshakeError::Aborted`] *after* certificate
/// and pin evaluation, so an injected abort can never mask — or be
/// masked by — a deterministic trust failure. The proxy rolls `abort`
/// from its fault injector; a plan of zero never reaches here with
/// `true`.
pub fn handshake_with_fault(
    client: &ClientConfig<'_>,
    server: &ServerConfig,
    resume: bool,
    abort: bool,
) -> HandshakeOutcome {
    if !client
        .trust
        .verify(&server.chain, &client.server_name, client.now)
    {
        appvsweb_obs::counter!("tlssim.handshake_failures");
        appvsweb_obs::event!("tls.untrusted", "{}", client.server_name);
        return Err(HandshakeError::UntrustedCertificate);
    }
    if !client.pins.accepts(&server.chain) {
        appvsweb_obs::counter!("tlssim.handshake_failures");
        appvsweb_obs::event!("tls.pin_violation", "{}", client.server_name);
        return Err(HandshakeError::PinViolation);
    }
    if abort {
        appvsweb_obs::counter!("tlssim.aborts");
        appvsweb_obs::event!("tls.abort", "{}", client.server_name);
        return Err(HandshakeError::Aborted);
    }
    let resumed = resume && server.supports_resumption;
    appvsweb_obs::counter!("tlssim.handshakes");
    appvsweb_obs::event!("tls.handshake", "{} resumed={resumed}", client.server_name);
    Ok(TlsSession {
        server_name: client.server_name.clone(),
        handshake_bytes: if resumed {
            RESUMED_HANDSHAKE_BYTES
        } else {
            FULL_HANDSHAKE_BYTES
        },
        resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;

    fn world() -> (CertificateAuthority, TrustStore) {
        let ca = CertificateAuthority::new("PublicRoot");
        let mut trust = TrustStore::new();
        trust.add_root(&ca.root);
        (ca, trust)
    }

    #[test]
    fn successful_full_and_resumed_handshake() {
        let (ca, trust) = world();
        let pins = PinSet::none();
        let server = ServerConfig {
            chain: ca.chain_for("api.bbc.co.uk"),
            supports_resumption: true,
        };
        let client = ClientConfig {
            trust: &trust,
            pins: &pins,
            server_name: "api.bbc.co.uk".into(),
            now: 0,
        };
        let full = handshake(&client, &server, false).unwrap();
        assert!(!full.resumed);
        assert_eq!(full.handshake_bytes, FULL_HANDSHAKE_BYTES);
        let res = handshake(&client, &server, true).unwrap();
        assert!(res.resumed);
        assert!(res.handshake_bytes < full.handshake_bytes);
    }

    #[test]
    fn resumption_requires_server_support() {
        let (ca, trust) = world();
        let pins = PinSet::none();
        let server = ServerConfig {
            chain: ca.chain_for("x.com"),
            supports_resumption: false,
        };
        let client = ClientConfig {
            trust: &trust,
            pins: &pins,
            server_name: "x.com".into(),
            now: 0,
        };
        assert!(!handshake(&client, &server, true).unwrap().resumed);
    }

    #[test]
    fn untrusted_chain_fails() {
        let (_ca, trust) = world();
        let rogue = CertificateAuthority::new("Rogue");
        let pins = PinSet::none();
        let server = ServerConfig {
            chain: rogue.chain_for("x.com"),
            supports_resumption: false,
        };
        let client = ClientConfig {
            trust: &trust,
            pins: &pins,
            server_name: "x.com".into(),
            now: 0,
        };
        assert_eq!(
            handshake(&client, &server, false),
            Err(HandshakeError::UntrustedCertificate)
        );
    }

    #[test]
    fn pin_violation_beats_valid_chain() {
        // The MITM scenario: proxy CA is *trusted* (installed on device)
        // but the app pins the origin's real key.
        let (real_ca, mut trust) = world();
        let proxy = CertificateAuthority::new("MeddleProxyCA");
        trust.add_root(&proxy.root);
        let real_chain = real_ca.chain_for("facebook.com");
        let pins = PinSet::of([real_chain.leaf().unwrap().key]);
        let forged = ServerConfig {
            chain: proxy.chain_for("facebook.com"),
            supports_resumption: true,
        };
        let client = ClientConfig {
            trust: &trust,
            pins: &pins,
            server_name: "facebook.com".into(),
            now: 0,
        };
        assert_eq!(
            handshake(&client, &forged, false),
            Err(HandshakeError::PinViolation)
        );
        // Direct connection to the real origin still succeeds.
        let direct = ServerConfig {
            chain: real_chain,
            supports_resumption: true,
        };
        assert!(handshake(&client, &direct, false).is_ok());
    }

    #[test]
    fn injected_abort_fires_only_after_trust_checks() {
        let (ca, trust) = world();
        let pins = PinSet::none();
        let server = ServerConfig {
            chain: ca.chain_for("api.x.com"),
            supports_resumption: true,
        };
        let client = ClientConfig {
            trust: &trust,
            pins: &pins,
            server_name: "api.x.com".into(),
            now: 0,
        };
        let err = handshake_with_fault(&client, &server, false, true).unwrap_err();
        assert_eq!(err, HandshakeError::Aborted);
        assert!(err.is_transient());
        assert!(!HandshakeError::PinViolation.is_transient());

        // A trust failure wins over an injected abort: the abort must
        // never hide the deterministic outcome.
        let rogue = CertificateAuthority::new("Rogue");
        let bad = ServerConfig {
            chain: rogue.chain_for("api.x.com"),
            supports_resumption: true,
        };
        assert_eq!(
            handshake_with_fault(&client, &bad, false, true),
            Err(HandshakeError::UntrustedCertificate)
        );
        // And without the fault the handshake still succeeds.
        assert!(handshake_with_fault(&client, &server, false, false).is_ok());
    }

    #[test]
    fn sni_mismatch_fails() {
        let (ca, trust) = world();
        let pins = PinSet::none();
        let server = ServerConfig {
            chain: ca.chain_for("a.com"),
            supports_resumption: false,
        };
        let client = ClientConfig {
            trust: &trust,
            pins: &pins,
            server_name: "b.com".into(),
            now: 0,
        };
        assert_eq!(
            handshake(&client, &server, false),
            Err(HandshakeError::UntrustedCertificate)
        );
    }
}

appvsweb_json::impl_json!(
    enum HandshakeError {
        UntrustedCertificate,
        PinViolation,
        Aborted,
    }
);
appvsweb_json::impl_json!(struct TlsSession { server_name, handshake_bytes, resumed });
