//! Certificates, authorities, and chains.
//!
//! Keys are opaque 64-bit identifiers derived deterministically from the
//! authority/subject names, so the same simulated world always produces
//! the same key material — a requirement for reproducible experiments.

use std::fmt;

/// An opaque public-key identifier (stands in for an SPKI hash).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u64);

impl KeyId {
    /// Derive a key id deterministically from a label (FNV-1a over the
    /// label bytes with an avalanche finish). Not cryptographic; only
    /// uniqueness within the simulation matters.
    pub fn derive(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // SplitMix64-style finalizer for avalanche.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        KeyId(h)
    }
}

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A simulated X.509 certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Subject common name (a DNS name or CA label).
    pub subject: String,
    /// Subject alternative names; name matching checks these plus the CN.
    pub san: Vec<String>,
    /// Issuer common name.
    pub issuer: String,
    /// The subject's public key.
    pub key: KeyId,
    /// The key that signed this certificate.
    pub signed_by: KeyId,
    /// Whether the certificate may sign others (CA bit).
    pub is_ca: bool,
    /// Validity start (simulation seconds).
    pub not_before: u64,
    /// Validity end (simulation seconds).
    pub not_after: u64,
}

impl Certificate {
    /// Whether `host` matches this certificate's CN or any SAN, with
    /// left-most-label wildcard support (`*.example.com`).
    pub fn matches_host(&self, host: &str) -> bool {
        std::iter::once(self.subject.as_str())
            .chain(self.san.iter().map(String::as_str))
            .any(|name| name_matches(name, host))
    }

    /// Whether `now` falls within the validity window.
    pub fn valid_at(&self, now: u64) -> bool {
        (self.not_before..=self.not_after).contains(&now)
    }
}

/// Wildcard name matching per RFC 6125: `*` may replace exactly the
/// left-most label and must not match across dots. Comparison is
/// ASCII-case-insensitive in place, so neither side is re-allocated.
fn name_matches(pattern: &str, host: &str) -> bool {
    if let Some(suffix) = pattern.strip_prefix("*.") {
        match host.split_once('.') {
            Some((first_label, rest)) => {
                !first_label.is_empty() && rest.eq_ignore_ascii_case(suffix)
            }
            None => false,
        }
    } else {
        pattern.eq_ignore_ascii_case(host)
    }
}

/// A certificate chain ordered leaf-first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertificateChain(pub Vec<Certificate>);

impl CertificateChain {
    /// The leaf (end-entity) certificate.
    pub fn leaf(&self) -> Option<&Certificate> {
        self.0.first()
    }

    /// Structural validation: every certificate is signed by the next one
    /// in the chain, intermediates have the CA bit, and all are valid at
    /// `now`. Trust anchoring is checked separately by the
    /// [`crate::TrustStore`].
    pub fn structurally_valid(&self, now: u64) -> bool {
        if self.0.is_empty() {
            return false;
        }
        for (i, cert) in self.0.iter().enumerate() {
            if !cert.valid_at(now) {
                return false;
            }
            if i > 0 && !cert.is_ca {
                return false;
            }
            if let Some(parent) = self.0.get(i + 1) {
                if cert.signed_by != parent.key {
                    return false;
                }
            }
        }
        true
    }

    /// The key that signed the last certificate in the chain — where trust
    /// anchoring happens. For a self-signed root this equals the root key.
    pub fn anchor_key(&self) -> Option<KeyId> {
        self.0.last().map(|c| c.signed_by)
    }
}

/// A certificate authority that can issue leaf and intermediate
/// certificates. The MITM proxy owns one of these and forges leaves on
/// the fly, exactly as mitmproxy does with its installed CA.
#[derive(Clone, Debug)]
pub struct CertificateAuthority {
    /// The CA's own (self-signed) certificate.
    pub root: Certificate,
    /// Per-host chain memo. Issuance is a pure function of
    /// `(root, host)` — keys are derived, never drawn — so the chain
    /// for a host is computed once and cloned out on re-issue. Shared
    /// across clones of the authority (same root ⇒ same chains).
    issued: std::sync::Arc<std::sync::Mutex<std::collections::HashMap<String, CertificateChain>>>,
}

/// Default validity horizon used for issued certificates, in simulation
/// seconds (10 years — far beyond any experiment).
pub const DEFAULT_VALIDITY: u64 = 10 * 365 * 24 * 3600;

impl CertificateAuthority {
    /// Create a new root CA named `label`.
    pub fn new(label: &str) -> Self {
        let key = KeyId::derive(&format!("ca-key:{label}"));
        CertificateAuthority {
            root: Certificate {
                subject: label.to_string(),
                san: vec![],
                issuer: label.to_string(),
                key,
                signed_by: key,
                is_ca: true,
                not_before: 0,
                not_after: DEFAULT_VALIDITY,
            },
            issued: Default::default(),
        }
    }

    /// Issue a leaf certificate for `host` (plus a wildcard SAN for its
    /// immediate subdomains, as real CDN certs commonly carry).
    pub fn issue_leaf(&self, host: &str) -> Certificate {
        Certificate {
            subject: host.to_string(),
            san: vec![host.to_string(), format!("*.{host}")],
            issuer: self.root.subject.clone(),
            key: KeyId::derive(&format!("leaf-key:{}:{host}", self.root.subject)),
            signed_by: self.root.key,
            is_ca: false,
            not_before: 0,
            not_after: DEFAULT_VALIDITY,
        }
    }

    /// Issue a leaf with a caller-chosen key (used by servers that pin a
    /// stable key across reissues).
    pub fn issue_leaf_with_key(&self, host: &str, key: KeyId) -> Certificate {
        let mut cert = self.issue_leaf(host);
        cert.key = key;
        cert
    }

    /// A chain consisting of a freshly issued leaf for `host` plus this
    /// CA's root. Memoized per host: the proxy re-forges the same
    /// handful of hosts once per exchange, and issuance is pure.
    pub fn chain_for(&self, host: &str) -> CertificateChain {
        // A poisoned memo only means another thread panicked mid-insert;
        // entries are pure values, so the map is still coherent.
        let mut issued = self.issued.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(chain) = issued.get(host) {
            return chain.clone();
        }
        let chain = CertificateChain(vec![self.issue_leaf(host), self.root.clone()]);
        issued.insert(host.to_string(), chain.clone());
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyid_is_deterministic_and_distinct() {
        assert_eq!(KeyId::derive("a"), KeyId::derive("a"));
        assert_ne!(KeyId::derive("a"), KeyId::derive("b"));
        assert_ne!(KeyId::derive("ca-key:x"), KeyId::derive("leaf-key:x"));
    }

    #[test]
    fn wildcard_matching_rules() {
        let ca = CertificateAuthority::new("TestRoot");
        let cert = ca.issue_leaf("example.com");
        assert!(cert.matches_host("example.com"));
        assert!(cert.matches_host("www.example.com")); // via *.example.com SAN
        assert!(!cert.matches_host("a.b.example.com")); // wildcard is single-label
        assert!(!cert.matches_host("badexample.com"));
        assert!(!cert.matches_host("com"));
    }

    #[test]
    fn chain_structure_validates() {
        let ca = CertificateAuthority::new("Root");
        let chain = ca.chain_for("api.example.com");
        assert!(chain.structurally_valid(100));
        assert_eq!(chain.anchor_key(), Some(ca.root.key));
    }

    #[test]
    fn broken_chain_rejected() {
        let ca = CertificateAuthority::new("Root");
        let other = CertificateAuthority::new("Other");
        // Leaf claims to be signed by Root but we pair it with Other's root.
        let chain = CertificateChain(vec![ca.issue_leaf("x.com"), other.root.clone()]);
        assert!(!chain.structurally_valid(100));
    }

    #[test]
    fn expired_cert_rejected() {
        let ca = CertificateAuthority::new("Root");
        let mut chain = ca.chain_for("x.com");
        chain.0[0].not_after = 10;
        assert!(!chain.structurally_valid(11));
        assert!(chain.structurally_valid(10));
    }

    #[test]
    fn non_ca_intermediate_rejected() {
        let ca = CertificateAuthority::new("Root");
        let leaf1 = ca.issue_leaf("a.com");
        let mut fake_intermediate = ca.issue_leaf("b.com");
        fake_intermediate.is_ca = false;
        // a.com "signed by" b.com's key to test the CA-bit check.
        let mut leaf = leaf1;
        leaf.signed_by = fake_intermediate.key;
        let chain = CertificateChain(vec![leaf, fake_intermediate, ca.root.clone()]);
        assert!(!chain.structurally_valid(100));
    }

    #[test]
    fn empty_chain_invalid() {
        assert!(!CertificateChain(vec![]).structurally_valid(0));
    }
}

appvsweb_json::impl_json!(newtype KeyId(u64));
appvsweb_json::impl_json!(struct Certificate { subject, san, issuer, key, signed_by, is_ca, not_before, not_after });
appvsweb_json::impl_json!(newtype CertificateChain(Vec<Certificate>));

// Hand-rolled (not `impl_json!`): only the root is state — the issued
// memo is a derived cache and must not round-trip. The shape matches
// what `impl_json!(struct CertificateAuthority { root })` emitted.
// lint:allow(R2) impl_json! cannot skip the derived `issued` field
impl appvsweb_json::ToJson for CertificateAuthority {
    fn to_json(&self) -> appvsweb_json::Json {
        appvsweb_json::Json::Obj(vec![(
            "root".to_string(),
            appvsweb_json::ToJson::to_json(&self.root),
        )])
    }
}

// lint:allow(R2) impl_json! cannot skip the derived `issued` field
impl appvsweb_json::FromJson for CertificateAuthority {
    fn from_json(v: &appvsweb_json::Json) -> Result<Self, appvsweb_json::JsonError> {
        Ok(CertificateAuthority {
            root: v.field("root")?,
            issued: Default::default(),
        })
    }
}
