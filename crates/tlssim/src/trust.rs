//! Trust stores.
//!
//! A device's trust store is the set of root keys it accepts as chain
//! anchors. The study's methodology installs the Meddle/mitmproxy CA on
//! each test phone; in the simulation that is literally
//! [`TrustStore::add_root`] with the proxy CA's root certificate.

use crate::cert::{Certificate, CertificateChain, KeyId};
use std::collections::BTreeSet;

/// A set of trusted root keys.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrustStore {
    roots: BTreeSet<KeyId>,
}

impl TrustStore {
    /// An empty trust store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stock mobile trust store: a handful of public roots that sign
    /// every legitimate server certificate in the simulated world.
    pub fn system_default(public_roots: impl IntoIterator<Item = KeyId>) -> Self {
        TrustStore {
            roots: public_roots.into_iter().collect(),
        }
    }

    /// Trust a new root (e.g. installing the interception proxy's CA).
    pub fn add_root(&mut self, root: &Certificate) {
        self.roots.insert(root.key);
    }

    /// Remove a root.
    pub fn remove_root(&mut self, root: &Certificate) {
        self.roots.remove(&root.key);
    }

    /// Whether `key` is a trusted anchor.
    pub fn trusts_key(&self, key: KeyId) -> bool {
        self.roots.contains(&key)
    }

    /// Full chain verification: structure, validity at `now`, host name
    /// match on the leaf, and anchoring in this store.
    pub fn verify(&self, chain: &CertificateChain, host: &str, now: u64) -> bool {
        if !chain.structurally_valid(now) {
            return false;
        }
        let Some(leaf) = chain.leaf() else {
            return false;
        };
        if !leaf.matches_host(host) {
            return false;
        }
        chain.anchor_key().is_some_and(|k| self.trusts_key(k))
    }

    /// Number of trusted roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;

    #[test]
    fn verify_accepts_trusted_chain() {
        let ca = CertificateAuthority::new("PublicRoot");
        let mut store = TrustStore::new();
        store.add_root(&ca.root);
        let chain = ca.chain_for("api.yelp.com");
        assert!(store.verify(&chain, "api.yelp.com", 50));
        assert!(store.verify(&chain, "m.api.yelp.com", 50)); // wildcard SAN
    }

    #[test]
    fn verify_rejects_untrusted_anchor() {
        let ca = CertificateAuthority::new("RogueRoot");
        let store = TrustStore::new();
        assert!(!store.verify(&ca.chain_for("x.com"), "x.com", 0));
    }

    #[test]
    fn verify_rejects_wrong_host() {
        let ca = CertificateAuthority::new("Root");
        let mut store = TrustStore::new();
        store.add_root(&ca.root);
        assert!(!store.verify(&ca.chain_for("a.com"), "b.com", 0));
    }

    #[test]
    fn adding_proxy_ca_enables_interception_trust() {
        let public = CertificateAuthority::new("PublicRoot");
        let proxy = CertificateAuthority::new("MeddleProxyCA");
        let mut device = TrustStore::new();
        device.add_root(&public.root);
        // Before installing the proxy CA, forged chains fail.
        assert!(!device.verify(&proxy.chain_for("bank.com"), "bank.com", 0));
        device.add_root(&proxy.root);
        assert!(device.verify(&proxy.chain_for("bank.com"), "bank.com", 0));
        device.remove_root(&proxy.root);
        assert!(!device.verify(&proxy.chain_for("bank.com"), "bank.com", 0));
    }
}

appvsweb_json::impl_json!(struct TrustStore { roots });
