//! Deterministic per-user models.
//!
//! A population campaign does not re-run the network simulator per
//! user — it samples *who the users are and how they use services*,
//! then scales the measured per-cell results (crowdsourcing style, as
//! ReCon and PrivacyProxy aggregate real users' traffic). Everything a
//! user is comes from SimRng streams forked under
//! `rng_labels::population_user(user_id, cell)`, so:
//!
//! * a user's model is a pure function of `(population seed, user_id)`,
//! * shard boundaries and worker counts can never re-key a user, and
//! * adding services to the catalogue perturbs only the users who
//!   adopt them (per-service usage draws live in per-service streams).

use appvsweb_netsim::{rng_labels, Os, SimRng};
use appvsweb_pii::GroundTruth;

/// The rank-ordered service universes users pick from, one per OS
/// (built by the campaign from the base study's completed cells, so a
/// failed cell under chaos testing simply drops out of adoption).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Universe {
    /// Android service ids, best rank first.
    pub android: Vec<String>,
    /// iOS service ids, best rank first.
    pub ios: Vec<String>,
}

impl Universe {
    /// The universe for one OS.
    pub fn on(&self, os: Os) -> &[String] {
        match os {
            Os::Android => &self.android,
            Os::Ios => &self.ios,
        }
    }
}

/// How one user exercises one service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceUse {
    /// The service adopted.
    pub service_id: String,
    /// Sessions via the native app (0 = doesn't use the app).
    pub app_sessions: u32,
    /// Sessions via the mobile web site (0 = doesn't use the web).
    pub web_sessions: u32,
}

/// One simulated user: identity profile, platform, installed-service
/// mix, usage habits, and device churn.
#[derive(Clone, Debug, PartialEq)]
pub struct UserModel {
    /// Stable user id (the RNG label key).
    pub user_id: u64,
    /// The user's platform.
    pub os: Os,
    /// The user's synthetic PII profile (account identity).
    pub profile: GroundTruth,
    /// Devices owned over the observation window (≥ 1); each
    /// generation re-exposes a fresh set of hardware identifiers, so
    /// churn multiplies UniqueId leak instances.
    pub device_generations: u32,
    /// Probability this user reaches a service via its web site.
    pub web_affinity: f64,
    /// Adopted services with per-medium session counts, in
    /// universe (rank) order.
    pub services: Vec<ServiceUse>,
}

/// Calibration constants for the user sampler. Centralized so the
/// population model is reviewable in one place.
mod calib {
    /// P(Android); the remainder is iOS.
    pub const P_ANDROID: f64 = 0.55;
    /// Minimum / spread of per-user web affinity.
    pub const WEB_AFFINITY_BASE: f64 = 0.20;
    /// Spread added on top of the base, scaled by a unit draw.
    pub const WEB_AFFINITY_SPREAD: f64 = 0.60;
    /// Maximum services a user adopts (uniform 1..=MAX before bias).
    pub const MAX_SERVICES: u64 = 7;
    /// Maximum device generations (1..=MAX).
    pub const MAX_DEVICE_GENERATIONS: u64 = 3;
    /// P(user opens a service's app at all).
    pub const P_USES_APP: f64 = 0.75;
    /// Maximum extra sessions per medium beyond the first.
    pub const MAX_EXTRA_SESSIONS: u64 = 3;
}

/// Quadratically rank-biased index into a universe of `n` services:
/// popular (low-index) services are adopted far more often, like an
/// App Annie rank curve.
fn biased_index(rng: &mut SimRng, n: u64) -> u64 {
    let a = rng.below(n);
    let b = rng.below(n);
    a.min(b)
}

impl UserModel {
    /// Sample user `user_id` of the campaign seeded by `seed`.
    ///
    /// Deterministic in `(seed, user_id, universe)`; independent of
    /// every other user.
    pub fn generate(seed: u64, user_id: u64, universe: &Universe) -> UserModel {
        let mut profile_rng =
            SimRng::new(seed).fork(&rng_labels::population_user(user_id, "profile"));
        let os = if profile_rng.chance(calib::P_ANDROID) {
            Os::Android
        } else {
            Os::Ios
        };
        let profile = GroundTruth::synthetic(profile_rng.next_u64());
        let device_generations = 1 + profile_rng.below(calib::MAX_DEVICE_GENERATIONS) as u32;
        let web_affinity =
            calib::WEB_AFFINITY_BASE + calib::WEB_AFFINITY_SPREAD * profile_rng.unit();

        let pool = universe.on(os);
        let mut services = Vec::new();
        if !pool.is_empty() {
            let want = (1 + profile_rng.below(calib::MAX_SERVICES)) as usize;
            // Rank-biased sampling without replacement, bounded
            // attempts so the draw count stays small and deterministic.
            let mut picked: Vec<usize> = Vec::with_capacity(want);
            for _ in 0..want * 3 {
                if picked.len() >= want {
                    break;
                }
                let idx = biased_index(&mut profile_rng, pool.len() as u64) as usize;
                if !picked.contains(&idx) {
                    picked.push(idx);
                }
            }
            picked.sort_unstable();
            for idx in picked {
                let Some(service_id) = pool.get(idx) else {
                    continue;
                };
                services.push(Self::usage(seed, user_id, service_id, web_affinity));
            }
        }

        UserModel {
            user_id,
            os,
            profile,
            device_generations,
            web_affinity,
            services,
        }
    }

    /// Sample how this user exercises one service, from the user's
    /// per-service stream (the `(user_id, cell)` fork of the issue
    /// spec: one stream per user per service cell).
    fn usage(seed: u64, user_id: u64, service_id: &str, web_affinity: f64) -> ServiceUse {
        // lint:allow(D3x) parameterized label: the "profile" cell and per-service cells are disjoint label sets
        let mut rng = SimRng::new(seed).fork(&rng_labels::population_user(user_id, service_id));
        let mut uses_app = rng.chance(calib::P_USES_APP);
        let uses_web = rng.chance(web_affinity);
        if !uses_app && !uses_web {
            // Adopting a service means using it somehow; default to the
            // app, the paper's mobile-first assumption.
            uses_app = true;
        }
        let sessions = |rng: &mut SimRng, active: bool| {
            if active {
                1 + rng.below(1 + calib::MAX_EXTRA_SESSIONS) as u32
            } else {
                0
            }
        };
        let app_sessions = sessions(&mut rng, uses_app);
        let web_sessions = sessions(&mut rng, uses_web);
        ServiceUse {
            service_id: service_id.to_string(),
            app_sessions,
            web_sessions,
        }
    }

    /// Total sessions this user runs across all services and media.
    pub fn total_sessions(&self) -> u64 {
        self.services
            .iter()
            .map(|s| s.app_sessions as u64 + s.web_sessions as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Universe {
        Universe {
            android: (0..20).map(|i| format!("svc-{i:02}")).collect(),
            ios: (0..20).map(|i| format!("svc-{i:02}")).collect(),
        }
    }

    #[test]
    fn generation_is_deterministic_and_per_user_independent() {
        let u = universe();
        let a = UserModel::generate(2016, 42, &u);
        let b = UserModel::generate(2016, 42, &u);
        assert_eq!(a, b);
        let c = UserModel::generate(2016, 43, &u);
        assert_ne!(
            (a.os, a.profile.email.clone(), a.services.clone()),
            (c.os, c.profile.email.clone(), c.services.clone()),
            "neighbouring users draw from independent streams"
        );
        // Different campaign seed re-keys everyone.
        let d = UserModel::generate(2017, 42, &u);
        assert_ne!(a.profile.email, d.profile.email);
    }

    #[test]
    fn models_are_well_formed() {
        let u = universe();
        let mut oses = std::collections::BTreeSet::new();
        for uid in 0..200 {
            let m = UserModel::generate(7, uid, &u);
            oses.insert(m.os);
            assert!((1..=3).contains(&m.device_generations));
            assert!(!m.services.is_empty(), "every user adopts something");
            assert!(m.services.len() <= 7);
            let mut seen = std::collections::BTreeSet::new();
            for s in &m.services {
                assert!(seen.insert(s.service_id.clone()), "no duplicate adoption");
                assert!(
                    s.app_sessions > 0 || s.web_sessions > 0,
                    "adopted services are used"
                );
                assert!(s.app_sessions <= 4 && s.web_sessions <= 4);
            }
            assert!(m.total_sessions() >= 1);
            assert!(!m.profile.email.is_empty());
        }
        assert_eq!(oses.len(), 2, "both platforms appear in 200 users");
    }

    #[test]
    fn rank_bias_prefers_popular_services() {
        let u = universe();
        let mut head = 0usize;
        let mut tail = 0usize;
        for uid in 0..500 {
            for s in UserModel::generate(11, uid, &u).services {
                // Universe ids encode their rank index.
                let idx: usize = s.service_id[4..].parse().unwrap();
                if idx < 5 {
                    head += 1;
                } else if idx >= 15 {
                    tail += 1;
                }
            }
        }
        assert!(
            head > tail * 2,
            "top-5 services should dominate bottom-5 adoption: head={head} tail={tail}"
        );
    }

    #[test]
    fn empty_universe_yields_no_services() {
        let m = UserModel::generate(1, 1, &Universe::default());
        assert!(m.services.is_empty());
        assert_eq!(m.total_sessions(), 0);
    }
}
