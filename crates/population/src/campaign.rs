//! The population campaign: sharded ingestion plus the fixed pairwise
//! reduction tree.
//!
//! The pipeline is three stages, all deterministic in
//! `(study, users, shards, seed)`:
//!
//! 1. **Shard** — users `0..N` are split into a *fixed* number of
//!    contiguous shards (independent of worker count), and the
//!    work-stealing executor ([`appvsweb_core::exec`]) races workers
//!    over shards. Each shard streams its users into one
//!    [`PopulationAggregate`]; per-user scratch dies with the user, so
//!    peak memory is `shards × |aggregate|`, independent of `N`.
//! 2. **Reduce** — shard states fold pairwise in a fixed binary tree
//!    over shard order: level after level, state `2k` absorbs state
//!    `2k+1`. The pairing is data-independent, and every aggregate's
//!    `merge` is the stream-concatenation homomorphism the law suite
//!    property-tests — so 1, 2, or 8 workers produce byte-identical
//!    reports.
//! 3. **Report** — the reduced state plus config echo and the peak
//!    shard-state footprint (the constant-memory witness).

use crate::model::{ServiceUse, Universe, UserModel};
use appvsweb_analysis::population::{cohort_key, figure_key, PopulationAggregate};
use appvsweb_analysis::{stats, CellAnalysis, PopulationReport, Study};
use appvsweb_core::study::{run_study, StudyConfig};
use appvsweb_netsim::Os;
use appvsweb_pii::PiiType;
use appvsweb_services::Medium;
use std::collections::{BTreeMap, BTreeSet};

/// Population campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Simulated users.
    pub users: u64,
    /// Fixed shard count. Memory scales with shards, *not* users; the
    /// default keeps shard states comfortably under a megabyte total
    /// while giving the scheduler enough grain to steal.
    pub shards: u32,
    /// Worker threads racing over shards (1 = sequential). Output is
    /// byte-identical for every value.
    pub workers: usize,
    /// Population seed, keying every user stream. Independent of the
    /// base study's seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            users: 10_000,
            shards: 64,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            seed: 2016,
        }
    }
}

/// Fast lookup from `(service, OS, medium)` to the base study's cell,
/// plus the rank-ordered adoption universes.
struct CellIndex<'a> {
    cells: BTreeMap<(&'a str, Os, Medium), &'a CellAnalysis>,
    universe: Universe,
}

impl<'a> CellIndex<'a> {
    fn new(study: &'a Study) -> Self {
        let mut cells = BTreeMap::new();
        let mut ranked: BTreeMap<Os, BTreeSet<(u32, &str)>> = BTreeMap::new();
        for cell in &study.cells {
            cells.insert((cell.service_id.as_str(), cell.os, cell.medium), cell);
            ranked
                .entry(cell.os)
                .or_default()
                .insert((cell.rank, cell.service_id.as_str()));
        }
        let ordered = |os: Os| -> Vec<String> {
            ranked
                .get(&os)
                .map(|set| set.iter().map(|(_, id)| id.to_string()).collect())
                .unwrap_or_default()
        };
        CellIndex {
            cells,
            universe: Universe {
                android: ordered(Os::Android),
                ios: ordered(Os::Ios),
            },
        }
    }

    fn get(&self, service_id: &str, os: Os, medium: Medium) -> Option<&'a CellAnalysis> {
        self.cells.get(&(service_id, os, medium)).copied()
    }
}

/// Per-user, per-medium scratch for the figure diffs. Dropped as soon
/// as the user is folded in — this is the state the sketches replace
/// at population scale.
#[derive(Default)]
struct MediumScratch<'a> {
    aa_domains: BTreeSet<&'a str>,
    aa_flows: u64,
    aa_bytes: u64,
    leak_domains: BTreeSet<&'a str>,
    types: BTreeSet<PiiType>,
}

/// Organization view of a registrable domain (paper Table 2 style:
/// the registrable label sans public suffix).
fn organization(domain: &str) -> &str {
    domain.split('.').next().unwrap_or(domain)
}

/// Stream one user into a shard aggregate.
///
/// Scaling model: a user's session of a cell observes the cell's
/// measured per-session traffic, so counts scale linearly with the
/// user's session count; device churn re-exposes hardware identifiers,
/// so UniqueId instances additionally scale with device generations.
fn ingest_user(agg: &mut PopulationAggregate, user: &UserModel, index: &CellIndex) {
    agg.users = agg.users.saturating_add(1);
    let mut app = MediumScratch::default();
    let mut web = MediumScratch::default();
    let mut orgs: BTreeSet<&str> = BTreeSet::new();
    let mut cohorts: BTreeSet<String> = BTreeSet::new();
    let mut leaked = false;

    for ServiceUse {
        service_id,
        app_sessions,
        web_sessions,
    } in &user.services
    {
        for (medium, sessions) in [(Medium::App, *app_sessions), (Medium::Web, *web_sessions)] {
            if sessions == 0 {
                continue;
            }
            let Some(cell) = index.get(service_id, user.os, medium) else {
                continue;
            };
            let s = sessions as u64;
            let scratch = match medium {
                Medium::App => &mut app,
                Medium::Web => &mut web,
            };

            agg.sessions = agg.sessions.saturating_add(s);
            agg.flows = agg.flows.saturating_add(cell.total_flows.saturating_mul(s));
            agg.aa_flows = agg.aa_flows.saturating_add(cell.aa_flows.saturating_mul(s));
            agg.aa_bytes = agg.aa_bytes.saturating_add(cell.aa_bytes.saturating_mul(s));

            let mut cell_leaks = 0u64;
            for (ty, type_agg) in &cell.per_type {
                let churn = if *ty == PiiType::UniqueId {
                    user.device_generations as u64
                } else {
                    1
                };
                let instances = type_agg.count.saturating_mul(s).saturating_mul(churn);
                cell_leaks = cell_leaks.saturating_add(instances);
                let stats = agg.pii.entry(*ty).or_default();
                stats.instances = stats.instances.saturating_add(instances);
                match medium {
                    Medium::App => {
                        stats.app_instances = stats.app_instances.saturating_add(instances)
                    }
                    Medium::Web => {
                        stats.web_instances = stats.web_instances.saturating_add(instances)
                    }
                }
                scratch.types.insert(*ty);
            }
            agg.leak_instances = agg.leak_instances.saturating_add(cell_leaks);
            leaked |= cell_leaks > 0;

            for (domain, leaks) in &cell.per_domain_leaks {
                let org = organization(domain);
                agg.leak_orgs.add(org, leaks.saturating_mul(s));
                orgs.insert(org);
            }
            for domain in &cell.aa_domains {
                scratch.aa_domains.insert(domain.as_str());
            }
            for domain in &cell.leak_domains {
                scratch.leak_domains.insert(domain.as_str());
            }
            scratch.aa_flows = scratch
                .aa_flows
                .saturating_add(cell.aa_flows.saturating_mul(s));
            scratch.aa_bytes = scratch
                .aa_bytes
                .saturating_add(cell.aa_bytes.saturating_mul(s));

            let cohort = cohort_key(user.os, medium);
            let cohort_stats = agg.cohorts.entry(cohort.clone()).or_default();
            cohort_stats.sessions = cohort_stats.sessions.saturating_add(s);
            cohort_stats.aa_flows = cohort_stats
                .aa_flows
                .saturating_add(cell.aa_flows.saturating_mul(s));
            cohort_stats.aa_bytes = cohort_stats
                .aa_bytes
                .saturating_add(cell.aa_bytes.saturating_mul(s));
            cohort_stats.leak_instances = cohort_stats.leak_instances.saturating_add(cell_leaks);
            cohorts.insert(cohort);
        }
    }

    if leaked {
        agg.users_leaking = agg.users_leaking.saturating_add(1);
    }
    for cohort in cohorts {
        if let Some(stats) = agg.cohorts.get_mut(&cohort) {
            stats.users = stats.users.saturating_add(1);
        }
    }
    let user_types: BTreeSet<PiiType> = app.types.union(&web.types).copied().collect();
    for ty in user_types {
        if let Some(stats) = agg.pii.get_mut(&ty) {
            stats.users = stats.users.saturating_add(1);
        }
    }
    for org in orgs {
        agg.org_reach.add(org, 1);
    }

    // The per-user app-vs-web difference samples (Figures 2–7).
    let diff = |a: u64, b: u64| a as f64 - b as f64;
    let samples = [
        (
            "fig2",
            diff(app.aa_domains.len() as u64, web.aa_domains.len() as u64),
        ),
        ("fig3", diff(app.aa_flows, web.aa_flows)),
        ("fig4", diff(app.aa_bytes, web.aa_bytes) / 1.0e6),
        (
            "fig5",
            diff(app.leak_domains.len() as u64, web.leak_domains.len() as u64),
        ),
        ("fig6", diff(app.types.len() as u64, web.types.len() as u64)),
        ("fig7", stats::jaccard(&app.types, &web.types)),
    ];
    for (figure, value) in samples {
        agg.figures
            .entry(figure_key(figure, user.os))
            .or_default()
            .add(value);
    }
}

/// Build one shard's aggregate by streaming users `lo..hi`.
fn build_shard(seed: u64, range: (u64, u64), index: &CellIndex) -> PopulationAggregate {
    let mut agg = PopulationAggregate::new();
    for user_id in range.0..range.1 {
        let user = UserModel::generate(seed, user_id, &index.universe);
        ingest_user(&mut agg, &user, index);
    }
    agg
}

/// Fold shard states pairwise in a fixed binary tree over shard order.
/// The pairing never depends on timing, so any worker count yields the
/// same sequence of merges — and since `merge` is associative on these
/// states, the same bytes.
fn reduce_tree(mut states: Vec<PopulationAggregate>, workers: usize) -> PopulationAggregate {
    while states.len() > 1 {
        let pairs: Vec<&[PopulationAggregate]> = states.chunks(2).collect();
        states = appvsweb_core::exec::run_indexed(&pairs, workers, 1, |_, pair| {
            let mut left = pair.first().cloned().unwrap_or_default();
            if let Some(right) = pair.get(1) {
                left.merge(right);
            }
            left
        });
    }
    states.into_iter().next().unwrap_or_default()
}

/// Run a population campaign over an already-measured base study.
///
/// Pure in `(study, cfg)`: re-running with any worker count returns a
/// byte-identical [`PopulationReport`].
pub fn run_campaign_on(study: &Study, cfg: &CampaignConfig) -> PopulationReport {
    let index = CellIndex::new(study);
    let shards = cfg.shards.max(1);
    let ranges: Vec<(u64, u64)> = (0..shards as u64)
        .map(|i| {
            (
                i * cfg.users / shards as u64,
                (i + 1) * cfg.users / shards as u64,
            )
        })
        .collect();
    let states = appvsweb_core::exec::run_indexed(&ranges, cfg.workers.max(1), 1, |_, &range| {
        build_shard(cfg.seed, range, &index)
    });
    let peak_state_bytes = states.iter().map(|s| s.approx_bytes()).max().unwrap_or(0);
    let aggregate = reduce_tree(states, cfg.workers.max(1));
    PopulationReport {
        users: cfg.users,
        shards,
        seed: cfg.seed,
        peak_state_bytes,
        aggregate,
    }
}

/// Measure the base study, then run the campaign on it.
pub fn run_campaign(study_cfg: &StudyConfig, cfg: &CampaignConfig) -> PopulationReport {
    run_campaign_on(&run_study(study_cfg), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use appvsweb_analysis::leaks::TypeAggregate;
    use appvsweb_netsim::FaultCounts;
    use appvsweb_services::{Catalog, ServiceCategory};

    /// A tiny synthetic two-service study — unit tests must not pay for
    /// the real simulator (integration suites do).
    pub(crate) fn tiny_study() -> Study {
        let mut cells = Vec::new();
        for (idx, service_id) in ["alpha", "beta"].iter().enumerate() {
            for os in [Os::Android, Os::Ios] {
                for medium in Medium::BOTH {
                    let heavier = u64::from(medium == Medium::Web);
                    let mut per_type = BTreeMap::new();
                    let mut leak_domains = BTreeSet::new();
                    let mut per_domain_leaks = BTreeMap::new();
                    if idx == 0 {
                        per_type.insert(
                            PiiType::Email,
                            TypeAggregate {
                                count: 1 + heavier,
                                domains: BTreeSet::from(["tracker.com".to_string()]),
                            },
                        );
                        if medium == Medium::App {
                            per_type.insert(
                                PiiType::UniqueId,
                                TypeAggregate {
                                    count: 2,
                                    domains: BTreeSet::from(["tracker.com".to_string()]),
                                },
                            );
                        }
                        leak_domains.insert("tracker.com".to_string());
                        per_domain_leaks.insert("tracker.com".to_string(), 2 + heavier);
                    }
                    cells.push(CellAnalysis {
                        service_id: service_id.to_string(),
                        service_name: service_id.to_uppercase(),
                        category: ServiceCategory::News,
                        rank: 1 + idx as u32,
                        os,
                        medium,
                        aa_domains: BTreeSet::from([
                            "ads.example".to_string(),
                            format!("cdn{heavier}.example"),
                        ]),
                        aa_flows: 3 + heavier,
                        aa_bytes: 10_000 * (1 + heavier),
                        total_flows: 9,
                        leaks: Vec::new(),
                        leak_domains,
                        leaked_types: per_type.keys().copied().collect(),
                        per_type,
                        per_domain_leaks,
                        per_domain_types: BTreeMap::new(),
                        fault_counts: FaultCounts::default(),
                        retries: 0,
                    });
                }
            }
        }
        Study {
            cells,
            health: Default::default(),
        }
    }

    #[test]
    fn campaign_is_byte_identical_across_worker_counts() {
        let study = tiny_study();
        let base = CampaignConfig {
            users: 500,
            shards: 16,
            workers: 1,
            seed: 2016,
        };
        let one = run_campaign_on(&study, &base);
        for workers in [2, 8] {
            let other = run_campaign_on(
                &study,
                &CampaignConfig {
                    workers,
                    ..base.clone()
                },
            );
            assert_eq!(
                appvsweb_json::encode(&one),
                appvsweb_json::encode(&other),
                "{workers} workers must match 1 worker byte for byte"
            );
        }
    }

    #[test]
    fn merging_shards_equals_one_big_shard() {
        let study = tiny_study();
        let cfg = CampaignConfig {
            users: 300,
            shards: 1,
            workers: 1,
            seed: 5,
        };
        let single = run_campaign_on(&study, &cfg);
        let sharded = run_campaign_on(&study, &CampaignConfig { shards: 32, ..cfg });
        // Same aggregate regardless of shard partitioning (the merge
        // law, end to end); peak-state differs by design.
        assert_eq!(
            appvsweb_json::encode(&single.aggregate),
            appvsweb_json::encode(&sharded.aggregate)
        );
        assert!(single.aggregate.is_exact());
    }

    #[test]
    fn aggregate_is_plausible() {
        let study = tiny_study();
        let report = run_campaign_on(
            &study,
            &CampaignConfig {
                users: 400,
                shards: 8,
                workers: 4,
                seed: 2016,
            },
        );
        let agg = &report.aggregate;
        assert_eq!(agg.users, 400);
        assert!(agg.sessions > 400, "multiple sessions per user");
        assert!(agg.users_leaking > 0);
        assert!(agg.users_leaking <= agg.users);
        assert!(agg.leak_instances > 0);
        assert!(agg.pii.contains_key(&PiiType::UniqueId));
        let uid = &agg.pii[&PiiType::UniqueId];
        assert_eq!(uid.web_instances, 0, "hardware ids leak only via apps");
        assert!(uid.app_instances > 0);
        assert!(agg.leak_orgs.count("tracker") > 0);
        assert!(agg.org_reach.count("tracker") <= agg.users);
        assert!(!agg.figures.is_empty());
        assert!(report.peak_state_bytes > 0);
    }

    #[test]
    fn memory_is_constant_in_user_count() {
        let study = tiny_study();
        let at = |users: u64| {
            run_campaign_on(
                &study,
                &CampaignConfig {
                    users,
                    shards: 8,
                    workers: 4,
                    seed: 3,
                },
            )
            .peak_state_bytes
        };
        let small = at(1_000);
        let large = at(8_000);
        assert!(
            large <= small.saturating_mul(2),
            "8x the users must not grow shard state: {small} -> {large} bytes"
        );
    }

    #[test]
    fn real_catalog_universe_is_rank_ordered() {
        // Spot-check CellIndex against the real catalog shape without
        // running the simulator: build a study of empty cells.
        let catalog = Catalog::paper();
        let mut cells = Vec::new();
        for os in [Os::Android, Os::Ios] {
            for spec in catalog.testable_on(os) {
                cells.push(CellAnalysis {
                    service_id: spec.id.to_string(),
                    service_name: spec.name.to_string(),
                    category: spec.category,
                    rank: spec.rank,
                    os,
                    medium: Medium::App,
                    aa_domains: BTreeSet::new(),
                    aa_flows: 0,
                    aa_bytes: 0,
                    total_flows: 0,
                    leaks: Vec::new(),
                    leak_domains: BTreeSet::new(),
                    leaked_types: BTreeSet::new(),
                    per_type: BTreeMap::new(),
                    per_domain_leaks: BTreeMap::new(),
                    per_domain_types: BTreeMap::new(),
                    fault_counts: FaultCounts::default(),
                    retries: 0,
                });
            }
        }
        let study = Study {
            cells,
            health: Default::default(),
        };
        let index = CellIndex::new(&study);
        assert_eq!(index.universe.android.len(), 49);
        assert_eq!(index.universe.ios.len(), 49);
    }
}
