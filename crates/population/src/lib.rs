#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Population-scale campaigns over the app-vs-web study.
//!
//! The base study measures each `(service, OS, medium)` cell once. This
//! crate scales that to 10k–1M simulated users in constant memory:
//!
//! * [`model`] — deterministic per-user models (PII profile,
//!   installed-app mix, usage habits, device churn), each a pure
//!   function of `(campaign seed, user_id)` via stable
//!   `rng_labels::population_user` fork labels.
//! * [`campaign`] — sharded ingestion into mergeable
//!   [`appvsweb_analysis::PopulationAggregate`] states, folded through
//!   a fixed pairwise reduction tree on a work-stealing scheduler so 1,
//!   2, or 8 workers produce byte-identical reports.
//! * [`fuzz`] — the `population` fuzz target: sketch/report codec
//!   fixed points and merge-law totality on arbitrary bytes.

pub mod campaign;
pub mod fuzz;
pub mod model;

pub use campaign::{run_campaign, run_campaign_on, CampaignConfig};
pub use model::{ServiceUse, Universe, UserModel};
