//! Fuzz entry point for the population sketch codecs and merge laws.
//!
//! Two modes on the same byte stream:
//!
//! * **Codec mode** — bytes that parse as JSON and decode as a
//!   [`PopulationReport`], [`QuantileSketch`], or [`TopKSketch`] must
//!   re-encode to a byte-level fixed point (compact and pretty), and
//!   every consumer (quantiles, rankings, the report renderer, merge)
//!   must be total on whatever the decoder accepts — including
//!   hostile states no ingestion path would build (unsorted buckets,
//!   duplicate keys, absurd capacities).
//! * **Op mode** — everything else is read as an operation stream
//!   driving two sketch halves, then the merge laws are asserted on
//!   arbitrary data: commutativity and identity byte-for-byte, and
//!   merge-equals-sequential-ingestion for the always-exact quantile
//!   sketch and the unbounded top-k.

use appvsweb_analysis::population::render_population_report;
use appvsweb_analysis::{PopulationReport, QuantileSketch, TopKSketch};

fn check_quantile_sketch(sketch: &QuantileSketch) {
    // Consumers are total on hostile states.
    for q in [0.0, 0.5, 1.0] {
        let _ = sketch.quantile(q);
    }
    let _ = sketch.fraction_negative();
    let _ = sketch.approx_bytes();
    // Merge totality, and identity on the canonical empty state.
    let mut merged = sketch.clone();
    merged.merge(sketch);
    let mut with_empty = sketch.clone();
    with_empty.merge(&QuantileSketch::new());
    // Canonical-form states are fixed by an identity merge; hostile
    // states at worst normalize, and normalizing must be idempotent.
    let mut twice = with_empty.clone();
    twice.merge(&QuantileSketch::new());
    assert_eq!(
        appvsweb_json::encode(&with_empty),
        appvsweb_json::encode(&twice),
        "identity merge must be idempotent"
    );
}

fn check_topk_sketch(sketch: &TopKSketch) {
    let _ = sketch.top(10);
    let _ = sketch.total();
    let _ = sketch.count("anything");
    let _ = sketch.approx_bytes();
    let mut merged = sketch.clone();
    merged.merge(sketch);
    let mut with_empty = sketch.clone();
    with_empty.merge(&TopKSketch::default());
    let mut twice = with_empty.clone();
    twice.merge(&TopKSketch::default());
    assert_eq!(
        appvsweb_json::encode(&with_empty),
        appvsweb_json::encode(&twice),
        "identity merge must be idempotent"
    );
}

/// Assert the JSON codec fixed point for a decoded value.
fn check_fixed_point<T>(value: &T)
where
    T: appvsweb_json::ToJson + appvsweb_json::FromJson + PartialEq + std::fmt::Debug,
{
    let compact = appvsweb_json::encode(value);
    let back: Result<T, _> = appvsweb_json::decode(&compact);
    assert!(back.is_ok(), "re-encoded value must reparse: {compact}");
    let Ok(back) = back else { return };
    assert_eq!(&back, value, "decode(encode(x)) must equal x");
    assert_eq!(
        appvsweb_json::encode(&back),
        compact,
        "compact encoding must reach a fixed point"
    );
    let pretty = appvsweb_json::encode_pretty(value);
    let repretty: Result<T, _> = appvsweb_json::decode(&pretty);
    assert!(repretty.is_ok(), "pretty form must reparse: {pretty}");
    let Ok(repretty) = repretty else { return };
    assert_eq!(&repretty, value, "pretty and compact forms must agree");
}

/// Interpret bytes as sketch operations, split across two halves.
fn op_mode(data: &[u8]) {
    let mut qs_a = QuantileSketch::new();
    let mut qs_b = QuantileSketch::new();
    let mut qs_all = QuantileSketch::new();
    let mut tk_a = TopKSketch::default();
    let mut tk_b = TopKSketch::default();
    let mut tk_all = TopKSketch::default();
    let mut tk_bounded = TopKSketch::with_capacity(1 + (data.len() as u32 % 4));

    let mid = data.len() / 2;
    for (i, chunk) in data.chunks(5).enumerate() {
        let second_half = i * 5 >= mid;
        let tag = chunk.first().copied().unwrap_or(0);
        let mut word = [0u8; 4];
        for (slot, byte) in word.iter_mut().zip(chunk.iter().skip(1)) {
            *slot = *byte;
        }
        let raw = u32::from_le_bytes(word);
        match tag % 3 {
            0 => {
                // Arbitrary f32 bit patterns: NaN, infinities,
                // subnormals — the sketch must stay total.
                let value = f32::from_bits(raw) as f64;
                let half = if second_half { &mut qs_b } else { &mut qs_a };
                half.add(value);
                qs_all.add(value);
            }
            1 => {
                let value = raw as f64 / 7.0 - 100_000.0;
                let half = if second_half { &mut qs_b } else { &mut qs_a };
                half.add(value);
                qs_all.add(value);
            }
            _ => {
                let key = format!("k{}", raw % 64);
                let count = 1 + (raw as u64 >> 6);
                let half = if second_half { &mut tk_b } else { &mut tk_a };
                half.add(&key, count);
                tk_all.add(&key, count);
                tk_bounded.add(&key, count);
            }
        }
    }

    // merge(a, b) == merge(b, a), byte for byte.
    let mut ab = qs_a.clone();
    ab.merge(&qs_b);
    let mut ba = qs_b.clone();
    ba.merge(&qs_a);
    assert_eq!(
        appvsweb_json::encode(&ab),
        appvsweb_json::encode(&ba),
        "quantile merge must commute"
    );
    // merge == sequential ingestion of both streams.
    assert_eq!(
        appvsweb_json::encode(&ab),
        appvsweb_json::encode(&qs_all),
        "quantile merge must equal sequential ingestion"
    );

    let mut tab = tk_a.clone();
    tab.merge(&tk_b);
    let mut tba = tk_b.clone();
    tba.merge(&tk_a);
    assert_eq!(
        appvsweb_json::encode(&tab),
        appvsweb_json::encode(&tba),
        "top-k merge must commute"
    );
    assert_eq!(
        appvsweb_json::encode(&tab),
        appvsweb_json::encode(&tk_all),
        "unbounded top-k merge must equal sequential ingestion"
    );
    // The bounded sketch only has to stay total and accounted.
    assert!(
        tk_bounded.entries.len() as u64 <= u64::from(tk_bounded.capacity),
        "bounded top-k must respect its capacity"
    );
}

/// Run the population target on raw fuzz bytes.
// lint:allow(T1) fuzz harness round-trips synthetic reports through canonical JSON; no network sink downstream
pub fn run(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    if let Ok(report) = appvsweb_json::decode::<PopulationReport>(&text) {
        check_fixed_point(&report);
        // The renderer and every table builder must be total on
        // hostile reports.
        let rendered = render_population_report(&report);
        assert!(rendered.contains("Population campaign"));
        check_topk_sketch(&report.aggregate.leak_orgs);
        for sketch in report.aggregate.figures.values() {
            check_quantile_sketch(sketch);
        }
        return;
    }
    if let Ok(sketch) = appvsweb_json::decode::<QuantileSketch>(&text) {
        check_fixed_point(&sketch);
        check_quantile_sketch(&sketch);
        return;
    }
    if let Ok(sketch) = appvsweb_json::decode::<TopKSketch>(&text) {
        check_fixed_point(&sketch);
        check_topk_sketch(&sketch);
        return;
    }
    op_mode(data);
}

/// Dictionary: the sketch/report JSON vocabulary.
pub const DICT: &[&[u8]] = &[
    b"\"pos\"",
    b"\"neg\"",
    b"\"zeros\"",
    b"\"non_finite\"",
    b"\"capacity\"",
    b"\"entries\"",
    b"\"key\"",
    b"\"count\"",
    b"\"err\"",
    b"\"dropped\"",
    b"\"evictions\"",
    b"\"users\"",
    b"\"shards\"",
    b"\"seed\"",
    b"\"peak_state_bytes\"",
    b"\"aggregate\"",
    b"\"cohorts\"",
    b"\"pii\"",
    b"\"leak_orgs\"",
    b"\"org_reach\"",
    b"\"figures\"",
    b"[[0,1]]",
    b"[[-5,2]]",
];

/// Seeds: canonical sketches, a hostile unsorted sketch, a minimal
/// report, and an op-stream.
pub const SEEDS: &[&[u8]] = &[
    b"{\"pos\":[],\"neg\":[],\"zeros\":0,\"non_finite\":0}",
    b"{\"pos\":[[3,2],[90,1]],\"neg\":[[14,4]],\"zeros\":7,\"non_finite\":1}",
    b"{\"pos\":[[5,1],[5,2],[-2,3]],\"neg\":[],\"zeros\":0,\"non_finite\":0}",
    b"{\"capacity\":4,\"entries\":[{\"key\":\"doubleclick\",\"count\":9,\"err\":0},\
{\"key\":\"scorecard\",\"count\":3,\"err\":1}],\"dropped\":2,\"evictions\":1}",
    b"{\"users\":2,\"shards\":1,\"seed\":9,\"peak_state_bytes\":64,\"aggregate\":{\
\"users\":2,\"users_leaking\":1,\"sessions\":5,\"flows\":40,\"aa_flows\":11,\"aa_bytes\":90000,\
\"leak_instances\":3,\"cohorts\":{\"Android:App\":{\"users\":2,\"sessions\":5,\"aa_flows\":11,\
\"aa_bytes\":90000,\"leak_instances\":3}},\"pii\":{\"Email\":{\"users\":1,\"instances\":3,\
\"app_instances\":2,\"web_instances\":1}},\"leak_orgs\":{\"capacity\":0,\"entries\":[],\
\"dropped\":0,\"evictions\":0},\"org_reach\":{\"capacity\":0,\"entries\":[],\"dropped\":0,\
\"evictions\":0},\"figures\":{\"fig2:Android\":{\"pos\":[[1,2]],\"neg\":[],\"zeros\":0,\
\"non_finite\":0}}}}",
    b"\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f\
\xff\xfe\xfd\xfc\xfb\xfa\xf9\xf8\xf7\xf6",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_survives_the_harness() {
        for seed in SEEDS {
            run(seed);
        }
    }

    #[test]
    fn structured_seeds_actually_decode() {
        let report = String::from_utf8_lossy(SEEDS[4]);
        assert!(
            appvsweb_json::decode::<PopulationReport>(&report).is_ok(),
            "report seed must decode: {report}"
        );
        for seed in &SEEDS[0..3] {
            let text = String::from_utf8_lossy(seed);
            assert!(
                appvsweb_json::decode::<QuantileSketch>(&text).is_ok(),
                "sketch seed must decode: {text}"
            );
        }
        let topk = String::from_utf8_lossy(SEEDS[3]);
        assert!(appvsweb_json::decode::<TopKSketch>(&topk).is_ok());
    }

    #[test]
    fn dict_tokens_survive() {
        for token in DICT {
            run(token);
        }
    }
}
