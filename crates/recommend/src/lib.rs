//! # appvsweb-recommend
//!
//! The paper's interactive recommender, as a library.
//!
//! The study's conclusion is that "there is no single answer to the
//! seminal question in this work; rather, the answer depends on user
//! preferences and priorities for controlling access to their PII", and
//! the authors published an online interface making "custom suggestions
//! based on user-specified privacy preferences". This crate reproduces
//! that interface's logic: given the per-service measurements
//! ([`CellAnalysis`] pairs from `appvsweb-analysis`) and a
//! [`Preferences`] profile weighting each PII class and exposure axis,
//! it scores the app and Web versions of every service and recommends
//! the less invasive medium, with the deciding factors spelled out.
//!
//! [`CellAnalysis`]: appvsweb_analysis::CellAnalysis

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use appvsweb_analysis::{CellAnalysis, Study};
use appvsweb_netsim::Os;
use appvsweb_pii::PiiType;
use appvsweb_services::Medium;
use std::collections::BTreeMap;

/// User privacy preferences: how much each PII class and exposure axis
/// matters, on a 0.0–1.0 scale.
#[derive(Clone, Debug, PartialEq)]
pub struct Preferences {
    /// Weight per PII class (absent = 0: the user does not care).
    pub type_weights: BTreeMap<PiiType, f64>,
    /// Weight on the breadth of A&A tracking (unique A&A domains).
    pub tracking_weight: f64,
    /// Weight on plaintext (eavesdropper-visible) exposure.
    pub plaintext_weight: f64,
    /// Weight on the number of domains receiving PII.
    pub spread_weight: f64,
}

impl Preferences {
    /// Balanced profile: every class matters equally.
    pub fn balanced() -> Self {
        Preferences {
            type_weights: PiiType::ALL.iter().map(|&t| (t, 1.0)).collect(),
            tracking_weight: 0.5,
            plaintext_weight: 1.0,
            spread_weight: 0.5,
        }
    }

    /// "Don't track my movements": location dominates.
    pub fn location_sensitive() -> Self {
        let mut p = Preferences::balanced();
        p.type_weights.insert(PiiType::Location, 5.0);
        p
    }

    /// "Don't link my identity": names, e-mail, phone, birthday dominate.
    pub fn identity_sensitive() -> Self {
        let mut p = Preferences::balanced();
        for t in [
            PiiType::Name,
            PiiType::Email,
            PiiType::PhoneNumber,
            PiiType::Birthday,
        ] {
            p.type_weights.insert(t, 5.0);
        }
        p
    }

    /// "Don't fingerprint my device": unique identifiers dominate —
    /// this profile structurally favours the Web (only apps leak UIDs).
    pub fn device_sensitive() -> Self {
        let mut p = Preferences::balanced();
        p.type_weights.insert(PiiType::UniqueId, 5.0);
        p.type_weights.insert(PiiType::DeviceInfo, 3.0);
        p
    }

    /// Minimize ad-tech contact above all — this profile structurally
    /// favours apps (Web sites contact far more A&A domains).
    pub fn tracking_averse() -> Self {
        let mut p = Preferences::balanced();
        p.tracking_weight = 5.0;
        p
    }
}

/// The verdict for one service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The app is less invasive under these preferences.
    UseApp,
    /// The Web site is less invasive.
    UseWeb,
    /// Scores are within 5% of each other.
    Either,
}

/// A scored recommendation for one service on one OS.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// Service slug.
    pub service_id: String,
    /// Service display name.
    pub service_name: String,
    /// OS the measurements come from.
    pub os: Os,
    /// Invasiveness score of the app (higher = worse).
    pub app_score: f64,
    /// Invasiveness score of the Web site.
    pub web_score: f64,
    /// The recommendation.
    pub verdict: Verdict,
    /// Human-readable deciding factors.
    pub reasons: Vec<String>,
}

/// Invasiveness score of one measured cell under `prefs` (higher =
/// worse for the user). Log-scaled counts keep one chatty tracker from
/// swamping a qualitative difference in *what* leaks.
pub fn score_cell(cell: &CellAnalysis, prefs: &Preferences) -> f64 {
    let mut score = 0.0;
    for (t, agg) in &cell.per_type {
        let w = prefs.type_weights.get(t).copied().unwrap_or(0.0);
        score += w * (1.0 + (agg.count as f64).ln_1p());
    }
    score += prefs.tracking_weight * (cell.aa_domains.len() as f64).ln_1p();
    score += prefs.spread_weight * (cell.leak_domains.len() as f64).ln_1p();
    let plaintext_leaks = cell.leaks.iter().filter(|l| l.plaintext).count();
    score += prefs.plaintext_weight * (plaintext_leaks as f64).ln_1p();
    score
}

fn reasons(app: &CellAnalysis, web: &CellAnalysis) -> Vec<String> {
    let mut out = Vec::new();
    let app_only: Vec<&str> = app
        .leaked_types
        .difference(&web.leaked_types)
        .map(|t| t.label())
        .collect();
    let web_only: Vec<&str> = web
        .leaked_types
        .difference(&app.leaked_types)
        .map(|t| t.label())
        .collect();
    if !app_only.is_empty() {
        out.push(format!("app additionally leaks: {}", app_only.join(", ")));
    }
    if !web_only.is_empty() {
        out.push(format!("web additionally leaks: {}", web_only.join(", ")));
    }
    if web.aa_domains.len() > app.aa_domains.len() {
        out.push(format!(
            "web contacts {} A&A domains vs {} in-app",
            web.aa_domains.len(),
            app.aa_domains.len()
        ));
    } else if app.aa_domains.len() > web.aa_domains.len() {
        out.push(format!(
            "app contacts {} A&A domains vs {} on web",
            app.aa_domains.len(),
            web.aa_domains.len()
        ));
    }
    let app_pt = app.leaks.iter().filter(|l| l.plaintext).count();
    let web_pt = web.leaks.iter().filter(|l| l.plaintext).count();
    if app_pt > 0 || web_pt > 0 {
        out.push(format!("plaintext leaks: app {app_pt}, web {web_pt}"));
    }
    out
}

/// Recommend a medium for every (service, OS) pair in the study.
pub fn recommend(study: &Study, prefs: &Preferences) -> Vec<Recommendation> {
    let mut out = Vec::new();
    for os in [Os::Android, Os::Ios] {
        for app in study.cells_for(os, Medium::App) {
            let Some(web) = study.cell(&app.service_id, os, Medium::Web) else {
                continue;
            };
            let app_score = score_cell(app, prefs);
            let web_score = score_cell(web, prefs);
            let verdict =
                if (app_score - web_score).abs() <= 0.05 * app_score.max(web_score).max(1e-9) {
                    Verdict::Either
                } else if app_score < web_score {
                    Verdict::UseApp
                } else {
                    Verdict::UseWeb
                };
            out.push(Recommendation {
                service_id: app.service_id.clone(),
                service_name: app.service_name.clone(),
                os,
                app_score,
                web_score,
                verdict,
                reasons: reasons(app, web),
            });
        }
    }
    out
}

/// Verdict counts for one preference profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerdictSummary {
    /// Recommendations to use the app.
    pub use_app: usize,
    /// Recommendations to use the Web site.
    pub use_web: usize,
    /// Ties.
    pub either: usize,
}

impl VerdictSummary {
    /// Total recommendations summarized.
    pub fn total(&self) -> usize {
        self.use_app + self.use_web + self.either
    }
}

/// Summarize a recommendation list.
pub fn summarize(recs: &[Recommendation]) -> VerdictSummary {
    let mut s = VerdictSummary::default();
    for r in recs {
        match r.verdict {
            Verdict::UseApp => s.use_app += 1,
            Verdict::UseWeb => s.use_web += 1,
            Verdict::Either => s.either += 1,
        }
    }
    s
}

/// The named preset profiles of the online interface.
pub fn preset_profiles() -> Vec<(&'static str, Preferences)> {
    vec![
        ("balanced", Preferences::balanced()),
        ("location", Preferences::location_sensitive()),
        ("identity", Preferences::identity_sensitive()),
        ("device", Preferences::device_sensitive()),
        ("tracking", Preferences::tracking_averse()),
    ]
}

/// A what-if matrix: how every preset profile would advise each service.
/// This is exactly the data the paper's interactive interface serves —
/// the same measurements, re-scored per user priority.
#[derive(Clone, Debug)]
pub struct WhatIfMatrix {
    /// Profile names, in column order.
    pub profiles: Vec<String>,
    /// `(service_id, per-profile verdicts)` rows, Android measurements.
    pub rows: Vec<(String, Vec<Verdict>)>,
}

/// Build the what-if matrix over all preset profiles (Android cells).
pub fn what_if_matrix(study: &Study) -> WhatIfMatrix {
    let presets = preset_profiles();
    let per_profile: Vec<(String, Vec<Recommendation>)> = presets
        .iter()
        .map(|(name, prefs)| (name.to_string(), recommend(study, prefs)))
        .collect();
    let mut rows: Vec<(String, Vec<Verdict>)> = Vec::new();
    if let Some((_, first)) = per_profile.first() {
        for rec in first.iter().filter(|r| r.os == Os::Android) {
            let verdicts = per_profile
                .iter()
                .map(|(_, recs)| {
                    recs.iter()
                        .find(|r| r.service_id == rec.service_id && r.os == Os::Android)
                        .map(|r| r.verdict)
                        .unwrap_or(Verdict::Either)
                })
                .collect();
            rows.push((rec.service_id.clone(), verdicts));
        }
    }
    WhatIfMatrix {
        profiles: per_profile.into_iter().map(|(n, _)| n).collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appvsweb_analysis::leaks::TypeAggregate;
    use appvsweb_services::ServiceCategory;
    use std::collections::BTreeSet;

    fn cell(
        medium: Medium,
        types: &[(PiiType, u64)],
        aa_domains: usize,
        plaintext: bool,
    ) -> CellAnalysis {
        let mut per_type = BTreeMap::new();
        let mut leaked_types = BTreeSet::new();
        let mut leaks = Vec::new();
        for (t, count) in types {
            leaked_types.insert(*t);
            per_type.insert(
                *t,
                TypeAggregate {
                    count: *count,
                    domains: std::iter::once("x.com".to_string()).collect(),
                },
            );
            for _ in 0..*count {
                leaks.push(appvsweb_analysis::LeakEvent {
                    pii_type: *t,
                    domain: "x.com".into(),
                    category: appvsweb_adblock_category(),
                    plaintext,
                });
            }
        }
        CellAnalysis {
            service_id: "svc".into(),
            service_name: "Svc".into(),
            category: ServiceCategory::News,
            rank: 1,
            os: Os::Android,
            medium,
            aa_domains: (0..aa_domains).map(|i| format!("aa{i}.com")).collect(),
            aa_flows: aa_domains as u64,
            aa_bytes: 0,
            total_flows: 1,
            leaks,
            leak_domains: std::iter::once("x.com".to_string()).collect(),
            leaked_types,
            per_type,
            per_domain_leaks: BTreeMap::new(),
            per_domain_types: BTreeMap::new(),
            fault_counts: Default::default(),
            retries: 0,
        }
    }

    fn appvsweb_adblock_category() -> appvsweb_adblock::Category {
        appvsweb_adblock::Category::Advertising
    }

    #[test]
    fn device_sensitive_prefers_web() {
        let study = Study {
            cells: vec![
                cell(Medium::App, &[(PiiType::UniqueId, 50)], 3, false),
                cell(Medium::Web, &[(PiiType::Location, 5)], 20, false),
            ],
            health: Default::default(),
        };
        let recs = recommend(&study, &Preferences::device_sensitive());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].verdict, Verdict::UseWeb);
        assert!(recs[0].reasons.iter().any(|r| r.contains("Unique ID")));
    }

    #[test]
    fn tracking_averse_prefers_app() {
        let study = Study {
            cells: vec![
                cell(Medium::App, &[(PiiType::UniqueId, 5)], 2, false),
                cell(Medium::Web, &[(PiiType::Location, 5)], 25, false),
            ],
            health: Default::default(),
        };
        let recs = recommend(&study, &Preferences::tracking_averse());
        assert_eq!(recs[0].verdict, Verdict::UseApp);
        assert!(recs[0].reasons.iter().any(|r| r.contains("A&A domains")));
    }

    #[test]
    fn identical_cells_yield_either() {
        let study = Study {
            cells: vec![
                cell(Medium::App, &[(PiiType::Location, 5)], 5, false),
                cell(Medium::Web, &[(PiiType::Location, 5)], 5, false),
            ],
            health: Default::default(),
        };
        let recs = recommend(&study, &Preferences::balanced());
        assert_eq!(recs[0].verdict, Verdict::Either);
    }

    #[test]
    fn plaintext_exposure_penalized() {
        let clean = cell(Medium::App, &[(PiiType::Location, 5)], 5, false);
        let leaky = cell(Medium::App, &[(PiiType::Location, 5)], 5, true);
        let prefs = Preferences::balanced();
        assert!(score_cell(&leaky, &prefs) > score_cell(&clean, &prefs));
    }

    #[test]
    fn summary_counts() {
        let study = Study {
            cells: vec![
                cell(Medium::App, &[(PiiType::UniqueId, 50)], 3, false),
                cell(Medium::Web, &[(PiiType::Location, 5)], 20, false),
            ],
            health: Default::default(),
        };
        let recs = recommend(&study, &Preferences::device_sensitive());
        let s = summarize(&recs);
        assert_eq!(s.total(), recs.len());
        assert_eq!(s.use_web, 1);
    }

    #[test]
    fn what_if_matrix_covers_all_profiles() {
        let study = Study {
            cells: vec![
                cell(Medium::App, &[(PiiType::UniqueId, 50)], 2, false),
                cell(Medium::Web, &[(PiiType::Location, 5)], 25, false),
            ],
            health: Default::default(),
        };
        let m = what_if_matrix(&study);
        assert_eq!(m.profiles.len(), 5);
        assert_eq!(m.rows.len(), 1);
        assert_eq!(m.rows[0].1.len(), 5);
        // Device-sensitive and tracking-averse should disagree on this
        // service (UID-heavy app vs tracker-heavy web).
        let device_idx = m.profiles.iter().position(|p| p == "device").unwrap();
        let tracking_idx = m.profiles.iter().position(|p| p == "tracking").unwrap();
        assert_ne!(m.rows[0].1[device_idx], m.rows[0].1[tracking_idx]);
    }

    #[test]
    fn presets_differ() {
        assert_ne!(Preferences::balanced(), Preferences::location_sensitive());
        assert!(Preferences::location_sensitive().type_weights[&PiiType::Location] > 1.0);
        assert!(Preferences::tracking_averse().tracking_weight > 1.0);
    }
}

appvsweb_json::impl_json!(struct Preferences { type_weights, tracking_weight, plaintext_weight, spread_weight });
appvsweb_json::impl_json!(
    enum Verdict {
        UseApp,
        UseWeb,
        Either,
    }
);
appvsweb_json::impl_json!(struct Recommendation {
    service_id, service_name, os, app_score, web_score, verdict, reasons
});
appvsweb_json::impl_json!(struct VerdictSummary { use_app, use_web, either });
appvsweb_json::impl_json!(struct WhatIfMatrix { profiles, rows });
