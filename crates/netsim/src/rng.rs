//! Deterministic random numbers.
//!
//! [`SimRng`] is a SplitMix64 generator: tiny, fast, full 64-bit state,
//! and — crucially for this project — trivially *forkable*. Each subsystem
//! (DNS jitter, per-service behaviour, tracker payloads, …) forks its own
//! labelled stream from the experiment seed, so adding a random draw in
//! one subsystem never perturbs another subsystem's stream. That property
//! is what keeps calibrated experiment outputs stable as the codebase
//! evolves.

/// A SplitMix64 pseudo-random generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below requires bound > 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "SimRng::range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Pick a uniformly random element of `items`; `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Fork an independent stream labelled `label`. Forks of the same
    /// parent with different labels are statistically independent; the
    /// same `(parent_seed, label)` pair always yields the same stream.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h = self.state ^ 0x632b_e59b_d9b4_e019;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            h = h.rotate_left(23);
        }
        SimRng::new(h)
    }

    /// Fill `out` with consecutive raw draws — the batched equivalent
    /// of `out.len()` successive [`next_u64`](Self::next_u64) calls.
    /// Stream discipline: the state advances exactly as if each value
    /// had been drawn individually, in order.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }

    /// Sum of `n` consecutive [`unit`](Self::unit) draws, batched into
    /// one call for per-exchange paths that fold several uniforms
    /// (latency jitter). Consumes exactly the same draws in the same
    /// order as `n` separate `unit()` calls, so every downstream stream
    /// stays byte-identical — the differential suite pins this law.
    pub fn unit_sum(&mut self, n: usize) -> f64 {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += self.unit();
        }
        sum
    }

    /// Sample a (rounded) normal via the central-limit of 8 uniforms —
    /// adequate for latency jitter, cheap, and branch-free.
    pub fn approx_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let sum = self.unit_sum(8);
        // Sum of 8 U(0,1) has mean 4, variance 8/12.
        let z = (sum - 4.0) / (8.0f64 / 12.0).sqrt();
        mean + z * std_dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
        // Tiny bound still works.
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = SimRng::new(2016);
        let mut dns1 = root.fork("dns");
        let mut dns2 = root.fork("dns");
        let mut svc = root.fork("services");
        assert_eq!(dns1.next_u64(), dns2.next_u64());
        // Different labels diverge immediately (overwhelmingly likely).
        let mut dns3 = root.fork("dns");
        assert_ne!(dns3.next_u64(), svc.next_u64());
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn batched_draws_match_sequential_streams() {
        // unit_sum(n) must consume the identical draw sequence as n
        // unit() calls: same running sum, same post-state.
        for n in [0usize, 1, 3, 8] {
            let mut batched = SimRng::new(0xFEED);
            let mut sequential = SimRng::new(0xFEED);
            let a = batched.unit_sum(n);
            let mut b = 0.0f64;
            for _ in 0..n {
                b += sequential.unit();
            }
            assert_eq!(a.to_bits(), b.to_bits(), "sum diverged at n={n}");
            assert_eq!(batched, sequential, "state diverged at n={n}");
        }
        let mut filled = SimRng::new(0xBEEF);
        let mut stepped = SimRng::new(0xBEEF);
        let mut buf = [0u64; 5];
        filled.fill_u64(&mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, stepped.next_u64(), "draw {i} diverged");
        }
        assert_eq!(filled, stepped);
    }

    #[test]
    fn approx_normal_is_centered() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.approx_normal(100.0, 15.0)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean drifted: {mean}");
    }
}

appvsweb_json::impl_json!(struct SimRng { state });
