//! A deterministic discrete-event queue.
//!
//! Events fire in timestamp order; ties are broken by insertion sequence,
//! never by anything hash- or pointer-dependent. This is the backbone of
//! the session simulator in `appvsweb-core`.

use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the next event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Pop the next event only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime(5), label);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert!(q.pop_due(SimTime(99)).is_none());
        assert_eq!(q.pop_due(SimTime(100)), Some((SimTime(100), ())));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.len(), 1);
    }
}
