//! Deterministic fault injection.
//!
//! The original campaign ran against live 2016 networks where flows
//! stalled, DNS servers returned `SERVFAIL`, TLS handshakes aborted
//! mid-flight, and access links flapped — and the testers simply
//! retried. This module gives the simulation the same weather, as a
//! *pure function of the experiment seed*: a [`FaultPlan`] holds the
//! per-event probabilities, a [`FaultInjector`] rolls them from its own
//! labelled [`SimRng`] fork, and a [`FaultCounts`] ledger records every
//! fault that fired so downstream analysis can annotate completeness
//! instead of silently assuming a perfect network.
//!
//! Determinism contract: an injector built from the same `(plan, rng)`
//! pair always fires the same faults in the same order, and a plan of
//! [`FaultPlan::none`] never draws from its stream at all — so a
//! fault-free run is byte-identical to a build without this module.

use crate::clock::SimDuration;
use crate::rng::SimRng;

/// Every fault class the chaos layer can inject, for ledger keying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// An exchange's packets were lost until the client timed out.
    PacketLoss,
    /// The exchange completed but the link stalled for extra time.
    LatencySpike,
    /// The TCP connection was reset mid-exchange.
    ConnectionReset,
    /// The access link dropped for a window of simulated time.
    LinkFlap,
    /// The resolver answered `SERVFAIL`.
    DnsServfail,
    /// The DNS query timed out.
    DnsTimeout,
    /// The TLS handshake aborted for a reason other than pinning.
    TlsAbort,
    /// The response body was truncated mid-transfer.
    TruncatedBody,
    /// The response's chunked framing was malformed.
    MalformedChunked,
    /// The origin answered with a 5xx.
    ServerError,
    /// Test-only: the whole cell runner panics (exercises the study
    /// runner's isolation, never enabled by any shipping preset).
    CellPanic,
}

/// Per-event fault probabilities. All rates are in `[0, 1]` per
/// opportunity (per exchange, per DNS network query, per response, …).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// P(exchange times out to packet loss).
    pub packet_loss: f64,
    /// P(exchange suffers a latency spike).
    pub latency_spike: f64,
    /// Added busy time when a latency spike fires.
    pub latency_spike_ms: u64,
    /// P(connection reset before the request is serviced).
    pub connection_reset: f64,
    /// P(link flap starts at this exchange).
    pub link_flap: f64,
    /// How long a link flap keeps the access link down.
    pub link_flap_ms: u64,
    /// P(uncached DNS query answers SERVFAIL).
    pub dns_servfail: f64,
    /// P(uncached DNS query times out).
    pub dns_timeout: f64,
    /// P(TLS handshake aborts, beyond pin/trust failures).
    pub tls_abort: f64,
    /// P(response body truncated).
    pub truncated_body: f64,
    /// P(response chunked framing malformed).
    pub malformed_chunked: f64,
    /// P(origin answers 5xx).
    pub server_error: f64,
    /// P(cell runner panics). Test-only; every preset keeps this 0.
    pub cell_panic: f64,
}

impl FaultPlan {
    /// The perfect network: no fault ever fires and the injector never
    /// draws randomness, so output is identical to a chaos-free build.
    pub fn none() -> Self {
        FaultPlan {
            packet_loss: 0.0,
            latency_spike: 0.0,
            latency_spike_ms: 0,
            connection_reset: 0.0,
            link_flap: 0.0,
            link_flap_ms: 0,
            dns_servfail: 0.0,
            dns_timeout: 0.0,
            tls_abort: 0.0,
            truncated_body: 0.0,
            malformed_chunked: 0.0,
            server_error: 0.0,
            cell_panic: 0.0,
        }
    }

    /// A uniform plan: every network/HTTP fault class at rate `p`, with
    /// default spike/flap windows. `cell_panic` stays 0.
    pub fn uniform(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        FaultPlan {
            packet_loss: p,
            latency_spike: p,
            latency_spike_ms: 1_500,
            connection_reset: p,
            link_flap: p / 4.0, // flaps hit every in-window exchange
            link_flap_ms: 3_000,
            dns_servfail: p,
            dns_timeout: p,
            tls_abort: p,
            truncated_body: p,
            malformed_chunked: p / 2.0,
            server_error: p,
            cell_panic: 0.0,
        }
    }

    /// ~1% fault rate: a good consumer network on a bad day.
    pub fn light() -> Self {
        Self::uniform(0.01)
    }

    /// ~5% fault rate: congested café Wi-Fi behind a flaky resolver.
    pub fn moderate() -> Self {
        Self::uniform(0.05)
    }

    /// ~15% fault rate: the stress preset.
    pub fn heavy() -> Self {
        Self::uniform(0.15)
    }

    /// Parse a named preset (`none`, `light`, `moderate`, `heavy`).
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "light" => Some(Self::light()),
            "moderate" => Some(Self::moderate()),
            "heavy" => Some(Self::heavy()),
            _ => None,
        }
    }

    /// Whether no fault can ever fire under this plan.
    pub fn is_none(&self) -> bool {
        self.packet_loss == 0.0
            && self.latency_spike == 0.0
            && self.connection_reset == 0.0
            && self.link_flap == 0.0
            && self.dns_servfail == 0.0
            && self.dns_timeout == 0.0
            && self.tls_abort == 0.0
            && self.truncated_body == 0.0
            && self.malformed_chunked == 0.0
            && self.server_error == 0.0
            && self.cell_panic == 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Count of injected faults by kind; the raw material of the study's
/// health ledger. Sums are order-independent, so merged worker-thread
/// ledgers are deterministic regardless of scheduling.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Exchanges lost to packet loss.
    pub packet_loss: u64,
    /// Latency spikes applied.
    pub latency_spikes: u64,
    /// Connections reset.
    pub connection_resets: u64,
    /// Link flap windows started.
    pub link_flaps: u64,
    /// DNS SERVFAIL answers injected.
    pub dns_servfail: u64,
    /// DNS timeouts injected.
    pub dns_timeouts: u64,
    /// TLS handshakes aborted.
    pub tls_aborts: u64,
    /// Response bodies truncated.
    pub truncated_bodies: u64,
    /// Responses with malformed chunked framing.
    pub malformed_chunked: u64,
    /// 5xx responses injected.
    pub server_errors: u64,
    /// Cells deliberately panicked (test-only fault kind).
    pub cell_panics: u64,
}

impl FaultCounts {
    /// Record one fault of `kind`.
    pub fn record(&mut self, kind: FaultKind) {
        appvsweb_obs::counter!("netsim.faults.injected");
        appvsweb_obs::event!("fault.injected", "{kind:?}");
        match kind {
            FaultKind::PacketLoss => self.packet_loss += 1,
            FaultKind::LatencySpike => self.latency_spikes += 1,
            FaultKind::ConnectionReset => self.connection_resets += 1,
            FaultKind::LinkFlap => self.link_flaps += 1,
            FaultKind::DnsServfail => self.dns_servfail += 1,
            FaultKind::DnsTimeout => self.dns_timeouts += 1,
            FaultKind::TlsAbort => self.tls_aborts += 1,
            FaultKind::TruncatedBody => self.truncated_bodies += 1,
            FaultKind::MalformedChunked => self.malformed_chunked += 1,
            FaultKind::ServerError => self.server_errors += 1,
            FaultKind::CellPanic => self.cell_panics += 1,
        }
    }

    /// Fold another ledger into this one.
    pub fn merge(&mut self, other: &FaultCounts) {
        self.packet_loss += other.packet_loss;
        self.latency_spikes += other.latency_spikes;
        self.connection_resets += other.connection_resets;
        self.link_flaps += other.link_flaps;
        self.dns_servfail += other.dns_servfail;
        self.dns_timeouts += other.dns_timeouts;
        self.tls_aborts += other.tls_aborts;
        self.truncated_bodies += other.truncated_bodies;
        self.malformed_chunked += other.malformed_chunked;
        self.server_errors += other.server_errors;
        self.cell_panics += other.cell_panics;
    }

    /// Total faults of every kind.
    pub fn total(&self) -> u64 {
        self.packet_loss
            + self.latency_spikes
            + self.connection_resets
            + self.link_flaps
            + self.dns_servfail
            + self.dns_timeouts
            + self.tls_aborts
            + self.truncated_bodies
            + self.malformed_chunked
            + self.server_errors
            + self.cell_panics
    }
}

/// DNS fault classes the injector can ask the resolver to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DnsFault {
    /// The upstream answered SERVFAIL.
    ServFail,
    /// The query timed out.
    Timeout,
}

/// Connection-level fault decided for one exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// The exchange's packets were lost; the client times out.
    Timeout,
    /// The peer (or a middlebox) reset the connection.
    Reset,
}

/// Response-level fault decided for one origin response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseFault {
    /// Replace the response with a 5xx.
    ServerError,
    /// Cut the body short of its declared length.
    Truncated,
    /// Break the chunked transfer framing.
    MalformedChunked,
}

/// The chaos dice: rolls a [`FaultPlan`]'s probabilities from a labelled
/// [`SimRng`] fork and keeps the [`FaultCounts`] ledger.
///
/// Each subsystem (the Meddle tunnel, the origin world) owns its own
/// injector with its own stream, so faults in one never perturb the
/// draw sequence of another — the same forking discipline the rest of
/// the simulator uses.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    counts: FaultCounts,
    /// Simulated instant until which the access link is down.
    link_down_until_ms: u64,
}

impl FaultInjector {
    /// Build an injector for `plan`, drawing from `rng` (pass a fork
    /// labelled for the owning subsystem).
    pub fn new(plan: FaultPlan, rng: SimRng) -> Self {
        FaultInjector {
            plan,
            rng,
            counts: FaultCounts::default(),
            link_down_until_ms: 0,
        }
    }

    /// An injector that never fires (and never draws randomness).
    pub fn disabled() -> Self {
        Self::new(FaultPlan::none(), SimRng::new(0))
    }

    /// Whether this injector can ever fire.
    pub fn is_disabled(&self) -> bool {
        self.plan.is_none()
    }

    /// The plan this injector rolls.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Roll probability `p` without touching the stream when `p == 0`
    /// (keeps [`FaultPlan::none`] runs byte-identical to no-chaos runs).
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.chance(p)
    }

    /// Decide a DNS fault for one *uncached* query.
    pub fn dns_fault(&mut self) -> Option<DnsFault> {
        if self.roll(self.plan.dns_servfail) {
            self.counts.record(FaultKind::DnsServfail);
            return Some(DnsFault::ServFail);
        }
        if self.roll(self.plan.dns_timeout) {
            self.counts.record(FaultKind::DnsTimeout);
            return Some(DnsFault::Timeout);
        }
        None
    }

    /// Whether the access link is down at `now_ms`; may start a new flap
    /// window. A window swallows every exchange inside it.
    pub fn link_down(&mut self, now_ms: u64) -> bool {
        if now_ms < self.link_down_until_ms {
            return true;
        }
        if self.roll(self.plan.link_flap) {
            self.counts.record(FaultKind::LinkFlap);
            self.link_down_until_ms = now_ms + self.plan.link_flap_ms.max(1);
            return true;
        }
        false
    }

    /// Decide whether the TLS handshake aborts (beyond pin/trust).
    pub fn tls_abort(&mut self) -> bool {
        if self.roll(self.plan.tls_abort) {
            self.counts.record(FaultKind::TlsAbort);
            true
        } else {
            false
        }
    }

    /// Decide a connection-level fault for one exchange.
    pub fn conn_fault(&mut self) -> Option<ConnFault> {
        if self.roll(self.plan.packet_loss) {
            self.counts.record(FaultKind::PacketLoss);
            return Some(ConnFault::Timeout);
        }
        if self.roll(self.plan.connection_reset) {
            self.counts.record(FaultKind::ConnectionReset);
            return Some(ConnFault::Reset);
        }
        None
    }

    /// Extra busy time if a latency spike fires for this exchange.
    pub fn latency_spike(&mut self) -> Option<SimDuration> {
        if self.roll(self.plan.latency_spike) {
            self.counts.record(FaultKind::LatencySpike);
            Some(SimDuration(self.plan.latency_spike_ms.max(1)))
        } else {
            None
        }
    }

    /// Decide a response-level fault for one origin response.
    pub fn response_fault(&mut self) -> Option<ResponseFault> {
        if self.roll(self.plan.server_error) {
            self.counts.record(FaultKind::ServerError);
            return Some(ResponseFault::ServerError);
        }
        if self.roll(self.plan.truncated_body) {
            self.counts.record(FaultKind::TruncatedBody);
            return Some(ResponseFault::Truncated);
        }
        if self.roll(self.plan.malformed_chunked) {
            self.counts.record(FaultKind::MalformedChunked);
            return Some(ResponseFault::MalformedChunked);
        }
        None
    }

    /// The ledger so far.
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// Take the ledger, resetting it to zero (called at session end).
    pub fn take_counts(&mut self) -> FaultCounts {
        std::mem::take(&mut self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires_and_never_draws() {
        let mut inj = FaultInjector::new(FaultPlan::none(), SimRng::new(42));
        let before = inj.rng.clone();
        for t in 0..1_000u64 {
            assert!(inj.dns_fault().is_none());
            assert!(!inj.link_down(t));
            assert!(!inj.tls_abort());
            assert!(inj.conn_fault().is_none());
            assert!(inj.latency_spike().is_none());
            assert!(inj.response_fault().is_none());
        }
        assert_eq!(inj.rng, before, "a none-plan must not consume the stream");
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn injector_is_deterministic() {
        let run = || {
            let mut inj = FaultInjector::new(FaultPlan::moderate(), SimRng::new(7).fork("chaos"));
            let fired: Vec<bool> = (0..500)
                .map(|t| inj.conn_fault().is_some() | inj.link_down(t))
                .collect();
            (fired, inj.take_counts())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn moderate_plan_fires_at_roughly_the_configured_rate() {
        let mut inj = FaultInjector::new(FaultPlan::moderate(), SimRng::new(1).fork("rate"));
        let n = 20_000;
        let mut fired = 0u64;
        for _ in 0..n {
            if matches!(inj.conn_fault(), Some(ConnFault::Timeout)) {
                fired += 1;
            }
        }
        let rate = fired as f64 / n as f64;
        assert!(
            (0.03..=0.07).contains(&rate),
            "packet loss rate drifted: {rate}"
        );
    }

    #[test]
    fn link_flap_window_swallows_followup_exchanges() {
        let mut plan = FaultPlan::none();
        plan.link_flap = 1.0;
        plan.link_flap_ms = 1_000;
        let mut inj = FaultInjector::new(plan, SimRng::new(3).fork("flap"));
        assert!(inj.link_down(0));
        assert!(inj.link_down(500), "still inside the window");
        assert_eq!(
            inj.counts().link_flaps,
            1,
            "in-window exchanges reuse the same flap"
        );
        assert!(inj.link_down(1_000), "a new flap starts (p=1)");
        assert_eq!(inj.counts().link_flaps, 2);
    }

    #[test]
    fn counts_merge_and_total() {
        let mut a = FaultCounts::default();
        a.record(FaultKind::PacketLoss);
        a.record(FaultKind::DnsServfail);
        let mut b = FaultCounts::default();
        b.record(FaultKind::PacketLoss);
        b.record(FaultKind::CellPanic);
        a.merge(&b);
        assert_eq!(a.packet_loss, 2);
        assert_eq!(a.dns_servfail, 1);
        assert_eq!(a.cell_panics, 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn presets_parse_and_scale() {
        assert!(FaultPlan::preset("none").unwrap().is_none());
        assert!(!FaultPlan::preset("light").unwrap().is_none());
        assert!(FaultPlan::preset("bogus").is_none());
        assert!(FaultPlan::heavy().packet_loss > FaultPlan::light().packet_loss);
        assert_eq!(FaultPlan::light().cell_panic, 0.0);
        assert_eq!(FaultPlan::heavy().cell_panic, 0.0);
    }
}

appvsweb_json::impl_json!(struct FaultPlan {
    packet_loss, latency_spike, latency_spike_ms, connection_reset, link_flap, link_flap_ms,
    dns_servfail, dns_timeout, tls_abort, truncated_body, malformed_chunked, server_error,
    cell_panic
});
appvsweb_json::impl_json!(struct FaultCounts {
    packet_loss, latency_spikes, connection_resets, link_flaps, dns_servfail, dns_timeouts,
    tls_aborts, truncated_bodies, malformed_chunked, server_errors, cell_panics
});
