//! # appvsweb-netsim
//!
//! Deterministic, event-driven network substrate for the `appvsweb`
//! reproduction of *"Should You Use the App for That?"* (IMC 2016).
//!
//! The original study measured real phones on a real network. This crate
//! replaces that hardware with a discrete-event simulation in the style of
//! smoltcp: no I/O, no wall-clock time, no global state — just values and
//! explicit state machines. Determinism is a design requirement: every
//! experiment in the reproduction must be exactly replayable from a seed.
//!
//! Components:
//!
//! * [`clock`] — simulation time ([`SimTime`], [`SimDuration`]) and the
//!   monotonic [`clock::SimClock`]
//! * [`rng`] — a seedable SplitMix64 RNG with labelled forking so
//!   independent subsystems draw from independent streams
//! * [`rng_labels`] — the workspace's closed fork-label table (enforced
//!   by `appvsweb-lint` rule D3)
//! * [`event`] — a deterministic event queue (ties broken by insertion
//!   order, never by hash order)
//! * [`dns`] — a resolver with zones, positive *and negative* caching,
//!   and query accounting
//! * [`faults`] — the deterministic chaos layer: [`FaultPlan`] presets
//!   and the [`FaultInjector`] that rolls packet loss, latency spikes,
//!   resets, link flaps, and DNS failures from a labelled RNG fork
//! * [`link`] — latency/bandwidth modelling for transfer-time estimates
//! * [`pool`] — thread-local wire-buffer pool with a scrub-on-release
//!   law (recycled buffers never leak bytes across cells)
//! * [`tcp`] — connection-level TCP accounting: handshakes, MSS
//!   segmentation, per-connection byte/packet counters (feeds the paper's
//!   Figures 1b and 1c)
//! * [`device`] — the simulated phone: OS identity, device identifiers,
//!   sensors, permission state, background OS services

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod device;
pub mod dns;
pub mod event;
pub mod faults;
pub mod fuzz;
pub mod link;
pub mod pool;
pub mod rng;
pub mod rng_labels;
pub mod tcp;

pub use clock::{SimClock, SimDuration, SimTime};
pub use device::{Device, DeviceIds, Os, Permission};
pub use dns::DnsResolver;
pub use event::EventQueue;
pub use faults::{FaultCounts, FaultInjector, FaultKind, FaultPlan};
pub use link::Link;
pub use pool::{PoolStats, PooledBuf};
pub use rng::SimRng;
pub use tcp::{Connection, ConnectionStats, Endpoint};
