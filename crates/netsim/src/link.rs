//! Link latency/bandwidth model.
//!
//! The study routed phones over Wi-Fi through a VPN to the Meddle server.
//! We model the access path as a single bottleneck link with fixed RTT and
//! bandwidth; transfer times drive when simulated responses arrive, which
//! in turn shapes how many interactions (and therefore flows) fit in a
//! 4-minute session.

use crate::clock::SimDuration;

/// A point-to-point link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Round-trip time in milliseconds.
    pub rtt_ms: u64,
    /// Bandwidth in bytes per second (symmetric).
    pub bytes_per_sec: u64,
}

impl Link {
    /// 2016-era phone on home Wi-Fi through a VPN: ~60 ms RTT,
    /// ~2.5 MB/s effective throughput.
    pub fn wifi_vpn() -> Self {
        Link {
            rtt_ms: 60,
            bytes_per_sec: 2_500_000,
        }
    }

    /// A fast LAN link for tests.
    pub fn lan() -> Self {
        Link {
            rtt_ms: 1,
            bytes_per_sec: 100_000_000,
        }
    }

    /// One-way propagation delay.
    pub fn one_way(&self) -> SimDuration {
        SimDuration(self.rtt_ms / 2)
    }

    /// Full round-trip delay.
    pub fn round_trip(&self) -> SimDuration {
        SimDuration(self.rtt_ms)
    }

    /// Time to push `bytes` through the link (serialization only).
    pub fn serialization_time(&self, bytes: usize) -> SimDuration {
        if self.bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        SimDuration((bytes as u64 * 1000).div_ceil(self.bytes_per_sec))
    }

    /// Time for a request/response exchange: one RTT plus serialization of
    /// both directions.
    pub fn exchange_time(&self, bytes_up: usize, bytes_down: usize) -> SimDuration {
        self.round_trip() + self.serialization_time(bytes_up) + self.serialization_time(bytes_down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_with_bytes() {
        let l = Link {
            rtt_ms: 10,
            bytes_per_sec: 1000,
        };
        assert_eq!(l.serialization_time(1000), SimDuration(1000));
        assert_eq!(l.serialization_time(1), SimDuration(1));
        assert_eq!(l.serialization_time(0), SimDuration(0));
    }

    #[test]
    fn exchange_includes_rtt() {
        let l = Link {
            rtt_ms: 50,
            bytes_per_sec: 1_000_000,
        };
        let t = l.exchange_time(500, 1500);
        assert!(t >= l.round_trip());
        assert_eq!(t, SimDuration(50 + 1 + 2));
    }

    #[test]
    fn zero_bandwidth_degrades_gracefully() {
        let l = Link {
            rtt_ms: 10,
            bytes_per_sec: 0,
        };
        assert_eq!(l.serialization_time(1_000_000), SimDuration::ZERO);
    }
}

appvsweb_json::impl_json!(struct Link { rtt_ms, bytes_per_sec });
