//! Reusable wire-buffer pool.
//!
//! The per-exchange hot path (frame assembly, HTTP serialization,
//! compression scratch) used to allocate fresh `Vec`s for every
//! exchange — hundreds of thousands of short-lived allocations per
//! campaign. [`take`] hands out a recycled buffer from a thread-local
//! freelist instead; dropping the [`PooledBuf`] guard returns it.
//!
//! ## Scrub-on-release law
//!
//! A recycled buffer must never leak bytes across cells: the guard's
//! `Drop` *scrubs* the buffer (truncates to zero length — with
//! `#![forbid(unsafe_code)]` workspace-wide, spare capacity is
//! unreadable) and, in debug builds, *poison-fills* the contents with
//! `0xA5` first so any code that somehow held a stale view reads
//! garbage instead of another session's traffic. The pool invariant
//! tests assert both.
//!
//! ## Stats
//!
//! [`stats`] exposes monotone counters (takes, creates, recycles,
//! returns, high-water resident bytes) obeying the conservation law
//! `creates + recycles <= takes` and `returns <= takes` (equality on
//! the take side at quiescence). Only
//! `pool.takes` is also journaled as an obs counter — it is a pure
//! function of the workload, so per-cell journals stay byte-identical
//! across worker counts; the creates/recycles split depends on thread
//! history and is exposed through [`stats`] alone.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Debug-build poison byte written over released contents.
pub const POISON: u8 = 0xA5;

/// Buffers retained per thread; beyond this, released buffers are
/// dropped (bounds resident memory on long-lived serve workers).
const PER_THREAD: usize = 32;

/// Buffers larger than this are not retained (a one-off huge download
/// must not pin its capacity forever).
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

thread_local! {
    static FREELIST: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

static TAKES: AtomicU64 = AtomicU64::new(0);
static CREATES: AtomicU64 = AtomicU64::new(0);
static RECYCLES: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);
static HIGH_WATER_BYTES: AtomicU64 = AtomicU64::new(0);

/// Monotone pool counters (process-wide, summed over threads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out.
    pub takes: u64,
    /// Takes served by a fresh allocation.
    pub creates: u64,
    /// Takes served from a freelist.
    pub recycles: u64,
    /// Buffers returned to a freelist.
    pub returns: u64,
    /// Largest capacity (bytes) ever returned to a freelist.
    pub high_water_bytes: u64,
}

impl PoolStats {
    /// The conservation law every snapshot must satisfy:
    /// `creates + recycles <= takes` and `returns <= takes`.
    ///
    /// At quiescence both inequalities are equalities on the
    /// take side (`takes == creates + recycles`), but a snapshot can
    /// race a `take` on another thread that has bumped one counter and
    /// not yet the other. [`stats`] loads the classified counters
    /// *before* `takes` — and every create/recycle/return strictly
    /// follows its own take — so the inequality form holds for every
    /// racing snapshot, not just quiescent ones.
    pub fn conserved(&self) -> bool {
        self.creates + self.recycles <= self.takes && self.returns <= self.takes
    }
}

/// A pooled byte buffer. Dereferences to `Vec<u8>`; dropping it scrubs
/// the contents and returns the allocation to the thread-local pool.
#[derive(Debug, Default)]
pub struct PooledBuf {
    buf: Vec<u8>,
}

impl PooledBuf {
    /// Consume the guard, keeping the bytes as a plain owned `Vec`.
    /// This is the materialization boundary: the allocation leaves the
    /// pool for good (e.g. bytes recorded into a flow outlive the
    /// exchange that produced them).
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let mut buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 || buf.capacity() > MAX_RETAINED_CAPACITY {
            return; // taken via into_vec, or too large to retain
        }
        scrub(&mut buf);
        let returned = FREELIST.with(|fl| {
            let mut fl = fl.borrow_mut();
            if fl.len() < PER_THREAD {
                fl.push(buf);
                true
            } else {
                false
            }
        });
        if returned {
            RETURNS.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Poison then scrub a buffer on its way back to a freelist: debug
/// builds overwrite released contents with [`POISON`] so stale reads
/// are loud; all builds truncate so recycled buffers start empty.
/// Split into its own seam so the invariant tests can observe the
/// poison write directly (after `clear`, spare capacity is unreadable
/// from safe code — which is the release-build guarantee).
fn scrub(buf: &mut Vec<u8>) {
    poison_fill(buf);
    buf.clear();
}

/// Debug-build poison write over a released buffer's contents.
fn poison_fill(buf: &mut [u8]) {
    if cfg!(debug_assertions) {
        buf.iter_mut().for_each(|b| *b = POISON);
    }
}

/// Take a buffer (empty, arbitrary capacity) from the pool.
pub fn take() -> PooledBuf {
    TAKES.fetch_add(1, Ordering::SeqCst);
    // Only `pool.takes` is journaled: it is a pure function of the
    // cell's work. The creates/recycles split depends on what ran
    // earlier on the same worker thread, so journaling it would break
    // the byte-identical-across-worker-counts law; those live in
    // [`stats`] only.
    appvsweb_obs::counter!("pool.takes");
    let recycled = FREELIST.with(|fl| fl.borrow_mut().pop());
    match recycled {
        Some(buf) => {
            debug_assert!(buf.is_empty(), "freelist held a non-scrubbed buffer");
            RECYCLES.fetch_add(1, Ordering::SeqCst);
            PooledBuf { buf }
        }
        None => {
            CREATES.fetch_add(1, Ordering::SeqCst);
            PooledBuf {
                buf: Vec::with_capacity(256),
            }
        }
    }
}

/// Take a buffer with at least `capacity` bytes reserved.
pub fn take_with_capacity(capacity: usize) -> PooledBuf {
    let mut b = take();
    b.reserve(capacity);
    record_high_water(b.capacity());
    b
}

fn record_high_water(capacity: usize) {
    HIGH_WATER_BYTES.fetch_max(capacity as u64, Ordering::SeqCst);
}

/// Current process-wide counters.
///
/// The classified counters (creates/recycles/returns) are loaded
/// *before* `takes`: each of them is only ever bumped after its own
/// take, so this load order makes [`PoolStats::conserved`] hold even
/// for snapshots racing takes on other threads.
pub fn stats() -> PoolStats {
    let creates = CREATES.load(Ordering::SeqCst);
    let recycles = RECYCLES.load(Ordering::SeqCst);
    let returns = RETURNS.load(Ordering::SeqCst);
    let high_water_bytes = HIGH_WATER_BYTES.load(Ordering::SeqCst);
    let takes = TAKES.load(Ordering::SeqCst);
    PoolStats {
        takes,
        creates,
        recycles,
        returns,
        high_water_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The stats counters are process-wide; tests asserting exact deltas
    // must not interleave with each other (the parallel test harness
    // would otherwise race them). Returns are per-thread anyway, but
    // takes/returns deltas cross threads.
    static STATS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn recycled_buffer_is_scrubbed() {
        // Freelists are thread-local, but this test's returns would
        // perturb the delta-asserting tests' counters mid-flight.
        let _guard = STATS_LOCK.lock().unwrap();
        let secret = b"imei=354436069633711";
        {
            let mut b = take();
            b.extend_from_slice(secret);
        }
        // The very next take on this thread recycles that buffer.
        let b = take();
        assert!(b.is_empty(), "recycled buffer must start scrubbed");
        assert!(b.capacity() >= secret.len(), "capacity should be reused");
    }

    #[test]
    fn released_contents_are_poison_filled_in_debug() {
        let mut buf = b"user=jane&password=hunter2".to_vec();
        poison_fill(&mut buf);
        if cfg!(debug_assertions) {
            assert!(
                buf.iter().all(|&b| b == POISON),
                "poison-fill must overwrite every released byte"
            );
        } else {
            assert_eq!(&buf, b"user=jane&password=hunter2");
        }
        // And the full scrub always empties the buffer on top.
        scrub(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn into_vec_detaches_from_pool() {
        let _guard = STATS_LOCK.lock().unwrap();
        let before = stats();
        let mut b = take();
        b.extend_from_slice(b"keep me");
        let owned = b.into_vec();
        assert_eq!(owned, b"keep me");
        let after = stats();
        // Materialized buffers are not returned.
        assert_eq!(after.takes - before.takes, 1);
        assert_eq!(after.returns - before.returns, 0);
    }

    #[test]
    fn stats_conserve() {
        let _guard = STATS_LOCK.lock().unwrap();
        for round in 0..10 {
            let mut a = take_with_capacity(64);
            a.extend_from_slice(&[round as u8; 16]);
            let b = take();
            drop(b);
            drop(a);
        }
        let s = stats();
        assert!(s.conserved(), "pool counters out of conservation: {s:?}");
        assert!(s.takes >= 20);
        assert!(s.high_water_bytes >= 64);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let _guard = STATS_LOCK.lock().unwrap();
        let before = stats();
        {
            let mut b = take();
            b.reserve(MAX_RETAINED_CAPACITY + 1);
        }
        let after = stats();
        assert_eq!(
            after.returns, before.returns,
            "oversized buffer must be dropped, not pooled"
        );
    }
}
