//! The simulated test phone.
//!
//! The study used two Nexus phones on stock Android 4.4 and two iPhone 5s
//! on iOS 9.3.1, factory-reset before the experiments (§3.2). A
//! [`Device`] models exactly what that hardware contributes to the
//! pipeline: an OS identity (which determines the browser and the
//! available identifier APIs), a set of device-specific identifiers, a
//! GPS sensor, a runtime permission ledger, and the OS background
//! services whose traffic the methodology filters out.

use crate::rng::SimRng;
use std::collections::BTreeSet;
use std::fmt;

/// Mobile operating system under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Os {
    /// Stock Android 4.4 (the most common version in-the-wild, April 2016).
    Android,
    /// iOS 9.3.1.
    Ios,
}

impl Os {
    /// The OS's default browser, used for the Web arm of every test.
    pub fn default_browser(self) -> &'static str {
        match self {
            Os::Android => "Chrome",
            Os::Ios => "Safari",
        }
    }

    /// Browser User-Agent string for the Web arm.
    pub fn browser_user_agent(self) -> &'static str {
        match self {
            Os::Android => {
                "Mozilla/5.0 (Linux; Android 4.4.4; Nexus 5 Build/KTU84P) AppleWebKit/537.36 \
                 (KHTML, like Gecko) Chrome/49.0.2623.105 Mobile Safari/537.36"
            }
            Os::Ios => {
                "Mozilla/5.0 (iPhone; CPU iPhone OS 9_3_1 like Mac OS X) AppleWebKit/601.1.46 \
                 (KHTML, like Gecko) Version/9.0 Mobile/13E238 Safari/601.1"
            }
        }
    }

    /// Hardware model name (itself a leaked identifier: "Device Name" in
    /// Table 1/3 of the paper).
    pub fn device_model(self) -> &'static str {
        match self {
            Os::Android => "Nexus 5",
            Os::Ios => "iPhone 5",
        }
    }

    /// Hostnames of OS background services whose flows the methodology
    /// filters out of every trace (§3.2 "Filtering").
    pub fn background_hosts(self) -> &'static [&'static str] {
        match self {
            Os::Android => &[
                "play.googleapis.com",
                "android.clients.google.com",
                "mtalk.google.com",
                "connectivitycheck.gstatic.com",
            ],
            Os::Ios => &[
                "icloud.com",
                "gsp-ssl.ls.apple.com",
                "push.apple.com",
                "captive.apple.com",
            ],
        }
    }
}

impl fmt::Display for Os {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Os::Android => "Android",
            Os::Ios => "iOS",
        })
    }
}

/// Runtime permissions relevant to PII access. The testers "approved any
/// system permission requests when prompted", so sessions grant these
/// liberally — but the ledger still gates which identifiers an app *can*
/// read, mirroring each platform's API surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Permission {
    /// GPS / network location.
    Location,
    /// Phone state: IMEI, phone number (Android).
    PhoneState,
    /// Contacts/accounts: e-mail address enumeration (Android).
    Accounts,
}

/// Device-specific identifiers. Which of these an app may read depends on
/// OS and permissions; a mobile browser can read none of them — the root
/// of the paper's finding that only apps leak unique device identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceIds {
    /// IMEI (Android, behind `PhoneState`): 15 decimal digits.
    pub imei: String,
    /// Wi-Fi MAC address.
    pub mac: String,
    /// Android ID (64-bit hex) — Android only.
    pub android_id: String,
    /// Advertising identifier (GAID on Android, IDFA on iOS): UUID.
    pub ad_id: String,
    /// Vendor identifier (IDFV) — iOS only.
    pub vendor_id: String,
    /// Hardware serial number.
    pub serial: String,
}

impl DeviceIds {
    /// Generate a deterministic identifier set from a labelled RNG fork.
    pub fn generate(rng: &mut SimRng) -> Self {
        DeviceIds {
            imei: gen_digits(rng, 15),
            mac: gen_mac(rng),
            android_id: gen_hex(rng, 16),
            ad_id: gen_uuid(rng),
            vendor_id: gen_uuid(rng),
            serial: gen_hex(rng, 12).to_uppercase(),
        }
    }

    /// All identifier values as `(label, value)` pairs — the ground-truth
    /// seed for the PII matcher.
    pub fn labelled(&self) -> Vec<(&'static str, &str)> {
        vec![
            ("imei", &self.imei),
            ("mac", &self.mac),
            ("android_id", &self.android_id),
            ("ad_id", &self.ad_id),
            ("vendor_id", &self.vendor_id),
            ("serial", &self.serial),
        ]
    }
}

fn gen_digits(rng: &mut SimRng, n: usize) -> String {
    (0..n)
        .map(|_| char::from(b'0' + rng.below(10) as u8))
        .collect()
}

fn gen_hex(rng: &mut SimRng, n: usize) -> String {
    (0..n)
        .map(|_| char::from_digit(rng.below(16) as u32, 16).unwrap_or('0'))
        .collect()
}

fn gen_mac(rng: &mut SimRng) -> String {
    (0..6)
        .map(|_| format!("{:02x}", rng.below(256)))
        .collect::<Vec<_>>()
        .join(":")
}

fn gen_uuid(rng: &mut SimRng) -> String {
    format!(
        "{}-{}-{}-{}-{}",
        gen_hex(rng, 8),
        gen_hex(rng, 4),
        gen_hex(rng, 4),
        gen_hex(rng, 4),
        gen_hex(rng, 12)
    )
}

/// A simulated, factory-reset test phone.
#[derive(Clone, Debug, PartialEq)]
pub struct Device {
    /// Operating system.
    pub os: Os,
    /// Device identifiers.
    pub ids: DeviceIds,
    /// Granted runtime permissions.
    granted: BTreeSet<Permission>,
    /// Current GPS fix (latitude, longitude), if location services are on.
    pub gps: Option<(f64, f64)>,
}

impl Device {
    /// A factory-reset device: fresh identifiers, no permissions granted,
    /// GPS fix present (the testers ran with location on, in Boston).
    pub fn factory_reset(os: Os, rng: &mut SimRng) -> Self {
        let mut id_rng = rng.fork(&crate::rng_labels::device_ids(os));
        Device {
            os,
            ids: DeviceIds::generate(&mut id_rng),
            granted: BTreeSet::new(),
            gps: Some(boston_fix(&mut rng.fork(crate::rng_labels::GPS))),
        }
    }

    /// Grant a permission (the study approves all prompts).
    pub fn grant(&mut self, p: Permission) {
        self.granted.insert(p);
    }

    /// Whether `p` has been granted.
    pub fn has_permission(&self, p: Permission) -> bool {
        self.granted.contains(&p)
    }

    /// Revoke everything (used between sessions by the harness; the study
    /// uninstalled each app after its session).
    pub fn reset_permissions(&mut self) {
        self.granted.clear();
    }

    /// The IMEI, if the platform exposes it and permission allows.
    /// iOS has no IMEI API at all.
    pub fn read_imei(&self) -> Option<&str> {
        match self.os {
            Os::Android if self.has_permission(Permission::PhoneState) => Some(self.imei()),
            _ => None,
        }
    }

    fn imei(&self) -> &str {
        &self.ids.imei
    }

    /// The MAC address, if the platform exposes it. Android 4.4 exposed
    /// the Wi-Fi MAC to any app; iOS 9 returns a fixed dummy, modelled as
    /// `None`.
    pub fn read_mac(&self) -> Option<&str> {
        match self.os {
            Os::Android => Some(&self.ids.mac),
            Os::Ios => None,
        }
    }

    /// The advertising identifier — available to all apps on both
    /// platforms without a permission prompt.
    pub fn read_ad_id(&self) -> &str {
        &self.ids.ad_id
    }

    /// The Android ID (Android only, no permission needed on 4.4).
    pub fn read_android_id(&self) -> Option<&str> {
        match self.os {
            Os::Android => Some(&self.ids.android_id),
            Os::Ios => None,
        }
    }

    /// The vendor identifier (iOS only).
    pub fn read_vendor_id(&self) -> Option<&str> {
        match self.os {
            Os::Ios => Some(&self.ids.vendor_id),
            Os::Android => None,
        }
    }

    /// Current GPS fix, gated on the Location permission.
    pub fn read_gps(&self) -> Option<(f64, f64)> {
        if self.has_permission(Permission::Location) {
            self.gps
        } else {
            None
        }
    }
}

/// A deterministic fix inside the Boston metro area (the study's tests ran
/// "in the Boston area between March 23 and May 11, 2016").
fn boston_fix(rng: &mut SimRng) -> (f64, f64) {
    let lat = 42.30 + rng.unit() * 0.12; // 42.30..42.42
    let lon = -71.15 + rng.unit() * 0.12; // -71.15..-71.03
                                          // Quantize to 6 decimal places like a real GPS reading.
    ((lat * 1e6).round() / 1e6, (lon * 1e6).round() / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(os: Os) -> Device {
        Device::factory_reset(os, &mut SimRng::new(2016))
    }

    #[test]
    fn factory_reset_is_deterministic() {
        assert_eq!(device(Os::Android), device(Os::Android));
        assert_ne!(device(Os::Android).ids, device(Os::Ios).ids);
    }

    #[test]
    fn identifier_formats() {
        let d = device(Os::Android);
        assert_eq!(d.ids.imei.len(), 15);
        assert!(d.ids.imei.chars().all(|c| c.is_ascii_digit()));
        assert_eq!(d.ids.mac.split(':').count(), 6);
        assert_eq!(d.ids.android_id.len(), 16);
        assert_eq!(d.ids.ad_id.split('-').count(), 5);
    }

    #[test]
    fn imei_gated_on_permission_and_platform() {
        let mut android = device(Os::Android);
        assert!(android.read_imei().is_none());
        android.grant(Permission::PhoneState);
        assert!(android.read_imei().is_some());
        let mut ios = device(Os::Ios);
        ios.grant(Permission::PhoneState);
        assert!(ios.read_imei().is_none(), "iOS has no IMEI API");
    }

    #[test]
    fn mac_only_on_android() {
        assert!(device(Os::Android).read_mac().is_some());
        assert!(device(Os::Ios).read_mac().is_none());
    }

    #[test]
    fn platform_specific_ids() {
        assert!(device(Os::Android).read_android_id().is_some());
        assert!(device(Os::Android).read_vendor_id().is_none());
        assert!(device(Os::Ios).read_vendor_id().is_some());
        assert!(device(Os::Ios).read_android_id().is_none());
    }

    #[test]
    fn gps_requires_location_permission() {
        let mut d = device(Os::Ios);
        assert!(d.read_gps().is_none());
        d.grant(Permission::Location);
        let (lat, lon) = d.read_gps().unwrap();
        assert!((42.0..43.0).contains(&lat));
        assert!((-72.0..-71.0).contains(&lon));
        d.reset_permissions();
        assert!(d.read_gps().is_none());
    }

    #[test]
    fn browser_identity_per_os() {
        assert_eq!(Os::Android.default_browser(), "Chrome");
        assert_eq!(Os::Ios.default_browser(), "Safari");
        assert!(Os::Android.browser_user_agent().contains("Chrome"));
        assert!(Os::Ios.browser_user_agent().contains("Safari"));
        assert!(!Os::Ios.background_hosts().is_empty());
    }
}

appvsweb_json::impl_json!(
    enum Os {
        Android,
        Ios,
    }
);
appvsweb_json::impl_json!(
    enum Permission {
        Location,
        PhoneState,
        Accounts,
    }
);
appvsweb_json::impl_json!(struct DeviceIds { imei, mac, android_id, ad_id, vendor_id, serial });
appvsweb_json::impl_json!(struct Device { os, ids, granted, gps });
