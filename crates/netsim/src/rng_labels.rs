//! The workspace's canonical [`SimRng`] fork-label table.
//!
//! Every subsystem forks its RNG stream under a label, and the labels
//! decide which draws land in which stream — a collision means two
//! subsystems silently share entropy, and an ad-hoc `format!` label
//! means the set of streams can't be reviewed in one place. This module
//! is that one place: static labels are `&str` constants, and the few
//! genuinely dynamic labels (one stream per study cell or per device)
//! are built by functions here from a constant prefix plus inputs that
//! are themselves deterministic (service ids, OS, attempt counters).
//!
//! `appvsweb-lint` rule D3 enforces the closure: a `.fork(...)` call
//! site must pass either a string literal or a value built from this
//! module, and the lint's emitted label table is asserted against
//! [`STATIC`] by a unit test, so adding a label without registering it
//! here fails CI.
//!
//! [`SimRng`]: crate::SimRng

use std::fmt::{Debug, Display};

/// Per-world chaos dice ([`FaultInjector`](crate::FaultInjector) owned
/// by the origin world).
pub const WORLD_CHAOS: &str = "world-chaos";
/// The origin-world content/behaviour stream.
pub const WORLD: &str = "world";
/// Session retry backoff jitter.
pub const RETRY: &str = "retry";
/// The Meddle proxy's DNS resolver jitter.
pub const MEDDLE_DNS: &str = "meddle-dns";
/// The Meddle proxy's chaos dice.
pub const MEDDLE_CHAOS: &str = "meddle-chaos";
/// Device construction (sensors, permission state).
pub const DEVICE: &str = "device";
/// The device's GPS fix jitter.
pub const GPS: &str = "gps";

/// Prefix of per-cell session streams; see [`session`].
pub const SESSION_PREFIX: &str = "session";
/// Prefix of per-cell injected-panic dice; see [`cell_panic`].
pub const CELL_PANIC_PREFIX: &str = "cell-panic";
/// Prefix of per-OS device-identifier streams; see [`device_ids`].
pub const DEVICE_IDS_PREFIX: &str = "device-ids";
/// Prefix of per-target fuzzing-engine mutation streams; see
/// [`fuzz_target`].
pub const FUZZ_PREFIX: &str = "fuzz";
/// Prefix of per-user population-campaign streams; see
/// [`population_user`].
pub const POPULATION_PREFIX: &str = "population";
/// Prefix of per-job serve-mode retry-jitter streams; see
/// [`serve_retry`].
pub const SERVE_RETRY_PREFIX: &str = "serve-retry";

/// Every static label, for exhaustiveness checks. Keep sorted.
pub const STATIC: &[&str] = &[
    DEVICE,
    GPS,
    MEDDLE_CHAOS,
    MEDDLE_DNS,
    RETRY,
    WORLD,
    WORLD_CHAOS,
];

/// Every dynamic-label prefix, for exhaustiveness checks. Keep sorted.
pub const DYNAMIC_PREFIXES: &[&str] = &[
    CELL_PANIC_PREFIX,
    DEVICE_IDS_PREFIX,
    FUZZ_PREFIX,
    POPULATION_PREFIX,
    SERVE_RETRY_PREFIX,
    SESSION_PREFIX,
];

/// The per-cell session stream: one independent stream per
/// (service, OS, medium) study cell.
pub fn session(service_id: &str, os: impl Debug, medium: impl Debug) -> String {
    format!("{SESSION_PREFIX}:{service_id}:{os:?}:{medium:?}")
}

/// The per-cell, per-attempt injected-panic dice used by the study
/// runner's fault plan.
pub fn cell_panic(service_id: &str, os: impl Debug, medium: impl Debug, attempt: u32) -> String {
    format!("{CELL_PANIC_PREFIX}:{service_id}:{os:?}:{medium:?}:{attempt}")
}

/// The per-OS device-identifier stream (IMEI, MAC, IDFA, …).
pub fn device_ids(os: impl Display) -> String {
    format!("{DEVICE_IDS_PREFIX}:{os}")
}

/// The per-(user, cell) stream of a population campaign: every
/// simulated user draws their profile and usage habits from their own
/// streams, keyed by a stable user id plus a cell string (`"profile"`
/// for the profile draw, `"svc/Os/Medium"` for per-cell usage), so
/// shard boundaries and worker counts can never re-key a user.
pub fn population_user(user_id: u64, cell: &str) -> String {
    format!("{POPULATION_PREFIX}:{user_id}:{cell}")
}

/// The per-job retry-jitter stream of the resident service's
/// supervisor: each submitted job draws its cell-retry backoff jitter
/// from its own stream keyed by the stable job id, so queue order and
/// worker count can never re-key another job's backoff schedule.
pub fn serve_retry(job_id: u64) -> String {
    format!("{SERVE_RETRY_PREFIX}:{job_id}")
}

/// The per-target mutation-scheduling stream of the fuzzing engine:
/// one independent stream per registered fuzz target, so adding a
/// target never re-keys another target's schedule.
pub fn fuzz_target(name: &str) -> String {
    format!("{FUZZ_PREFIX}:{name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_is_sorted_and_unique() {
        for pair in STATIC.windows(2) {
            assert!(pair[0] < pair[1], "STATIC must stay sorted: {pair:?}");
        }
        for pair in DYNAMIC_PREFIXES.windows(2) {
            assert!(
                pair[0] < pair[1],
                "DYNAMIC_PREFIXES must stay sorted: {pair:?}"
            );
        }
    }

    #[test]
    fn dynamic_labels_reproduce_the_historical_format() {
        // These exact strings seeded the golden study outputs; changing
        // them re-keys every stream and breaks byte-determinism.
        #[derive(Debug)]
        struct Android;
        #[derive(Debug)]
        struct App;
        assert_eq!(session("svc", Android, App), "session:svc:Android:App");
        assert_eq!(
            cell_panic("svc", Android, App, 2),
            "cell-panic:svc:Android:App:2"
        );
        assert_eq!(device_ids("iOS"), "device-ids:iOS");
        assert_eq!(
            population_user(7, "svc/Android/App"),
            "population:7:svc/Android/App"
        );
        assert_eq!(population_user(0, "profile"), "population:0:profile");
        assert_eq!(serve_retry(3), "serve-retry:3");
    }

    #[test]
    fn no_dynamic_prefix_collides_with_a_static_label() {
        for prefix in DYNAMIC_PREFIXES {
            assert!(
                !STATIC.contains(prefix),
                "prefix {prefix} shadows a static label"
            );
        }
    }
}
