//! Simulation time.
//!
//! Time is measured in integer milliseconds from the start of the
//! simulation. Integer time keeps event ordering exact — there is no
//! floating-point drift between runs, which matters because the whole
//! study must replay identically from a seed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulation time (milliseconds since simulation start).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

/// A span of simulation time in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Milliseconds since simulation start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start.
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Duration elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// From whole minutes (the study's sessions are 4 minutes).
    pub fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Milliseconds in this duration.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds (floor).
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

/// A monotonic simulation clock. Advancing is explicit; nothing in the
/// simulation reads wall time.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Jump forward to `t`; panics if `t` is in the past (monotonicity is
    /// an invariant, not a suggestion).
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "SimClock must be monotonic: {t} < {}",
            self.now
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(3);
        assert_eq!(t1.as_millis(), 3000);
        assert_eq!(t1 - t0, SimDuration::from_secs(3));
        assert_eq!(t0 - t1, SimDuration::ZERO); // saturating
        assert!(t1 > t0);
        assert_eq!(SimDuration::from_mins(4).as_secs(), 240);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_millis(5));
        c.advance_to(SimTime(10));
        assert_eq!(c.now(), SimTime(10));
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn clock_rejects_time_travel() {
        let mut c = SimClock::new();
        c.advance_to(SimTime(10));
        c.advance_to(SimTime(9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime(1500).to_string(), "t+1.500s");
        assert_eq!(SimDuration(250).to_string(), "0.250s");
    }
}

appvsweb_json::impl_json!(newtype SimTime(u64));
appvsweb_json::impl_json!(newtype SimDuration(u64));
appvsweb_json::impl_json!(struct SimClock { now });
