//! DNS resolution model.
//!
//! The simulated world maps hostnames to synthetic IPv4 addresses. The
//! resolver caches answers with a TTL and counts queries; DNS traffic is
//! part of the flow accounting in the study (every new third-party domain
//! a Web page pulls in costs a lookup — one reason Web sessions produce so
//! many more flows, cf. paper Figure 1b).

use crate::clock::{SimDuration, SimTime};
use crate::rng::SimRng;
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Default TTL applied to zone answers (5 minutes — longer than a study
/// session, so each domain is resolved once per session).
pub const DEFAULT_TTL: SimDuration = SimDuration(300_000);

/// TTL for *negative* answers (NXDOMAIN/SERVFAIL/timeout). Real stub
/// resolvers cache failures briefly (RFC 2308); without this, a client
/// retry policy turns every injected DNS fault into a retry storm of
/// identical network queries.
pub const NEGATIVE_TTL: SimDuration = SimDuration(30_000);

/// A DNS answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DnsAnswer {
    /// Resolved address.
    pub addr: Ipv4Addr,
    /// Whether this answer came from cache (no network round trip).
    pub cached: bool,
    /// Lookup latency.
    pub latency: SimDuration,
}

/// Resolution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DnsStats {
    /// Queries that went to the network.
    pub network_queries: u64,
    /// Queries served from cache.
    pub cache_hits: u64,
    /// Names with no zone entry, plus injected SERVFAIL/timeouts.
    pub failures: u64,
    /// Failures served from the negative cache (no network round trip).
    pub negative_hits: u64,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    addr: Ipv4Addr,
    expires: SimTime,
}

#[derive(Clone, Debug)]
struct NegativeEntry {
    kind: DnsErrorKind,
    expires: SimTime,
}

/// What went wrong with a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DnsErrorKind {
    /// The name has no zone entry.
    NxDomain,
    /// The upstream resolver answered SERVFAIL.
    ServFail,
    /// The query timed out.
    Timeout,
}

impl DnsErrorKind {
    /// Whether a client may reasonably retry this failure soon.
    pub fn is_transient(self) -> bool {
        !matches!(self, DnsErrorKind::NxDomain)
    }
}

/// A failed lookup: the kind of failure plus the queried name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsError {
    /// Failure class.
    pub kind: DnsErrorKind,
    /// The name that failed to resolve.
    pub host: String,
}

impl DnsError {
    /// Build an error for `host`.
    pub fn new(kind: DnsErrorKind, host: impl Into<String>) -> Self {
        DnsError {
            kind,
            host: host.into(),
        }
    }
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DnsErrorKind::NxDomain => write!(f, "NXDOMAIN: {}", self.host),
            DnsErrorKind::ServFail => write!(f, "SERVFAIL: {}", self.host),
            DnsErrorKind::Timeout => write!(f, "DNS timeout: {}", self.host),
        }
    }
}

impl std::error::Error for DnsError {}

/// State of the resolver's caches for one name at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheState {
    /// A positive answer is fresh; resolution is local.
    Fresh,
    /// A negative answer is fresh; resolution fails locally.
    Negative,
    /// Nothing cached (or everything expired): a network query happens.
    Miss,
}

/// A caching stub resolver over a static zone map.
#[derive(Debug)]
pub struct DnsResolver {
    zones: BTreeMap<String, Ipv4Addr>,
    cache: BTreeMap<String, CacheEntry>,
    negative: BTreeMap<String, NegativeEntry>,
    stats: DnsStats,
    rng: SimRng,
    /// Mean network lookup latency in ms.
    mean_latency_ms: f64,
}

impl DnsResolver {
    /// A resolver with an empty zone map. `rng` drives latency jitter.
    pub fn new(rng: SimRng) -> Self {
        DnsResolver {
            zones: BTreeMap::new(),
            cache: BTreeMap::new(),
            negative: BTreeMap::new(),
            stats: DnsStats::default(),
            rng,
            mean_latency_ms: 35.0,
        }
    }

    /// Register `host` in the zone map. Addresses are derived
    /// deterministically from the host name if you use
    /// [`DnsResolver::register_auto`]; this variant takes one explicitly.
    pub fn register(&mut self, host: &str, addr: Ipv4Addr) {
        self.zones.insert(host.to_ascii_lowercase(), addr);
    }

    /// Register `host` with an address derived from the name, keeping the
    /// world reproducible without manual address bookkeeping.
    pub fn register_auto(&mut self, host: &str) -> Ipv4Addr {
        let addr = derive_addr(host);
        self.register(host, addr);
        addr
    }

    /// Resolve `host` at time `now`.
    ///
    /// Failures (NXDOMAIN, or injected SERVFAIL/timeouts via
    /// [`DnsResolver::fail`]) are negatively cached for [`NEGATIVE_TTL`],
    /// so a retrying client re-fails locally instead of re-querying the
    /// network — the behaviour that keeps injected DNS faults from
    /// turning into retry storms.
    pub fn resolve(&mut self, host: &str, now: SimTime) -> Result<DnsAnswer, DnsError> {
        let host = fold_host(host);
        if let Some(entry) = self.cache.get(host.as_ref()) {
            if entry.expires > now {
                appvsweb_cover::cover!();
                appvsweb_obs::counter!("netsim.dns.cache_hits");
                appvsweb_obs::event!("dns.cache_hit", "{host}");
                self.stats.cache_hits += 1;
                return Ok(DnsAnswer {
                    addr: entry.addr,
                    cached: true,
                    latency: SimDuration::ZERO,
                });
            }
        }
        if let Some(entry) = self.negative.get(host.as_ref()) {
            if entry.expires > now {
                appvsweb_cover::cover!();
                appvsweb_obs::counter!("netsim.dns.negative_hits");
                appvsweb_obs::event!("dns.negative_hit", "{host} {:?}", entry.kind);
                self.stats.negative_hits += 1;
                return Err(DnsError::new(entry.kind, host.into_owned()));
            }
        }
        let Some(&addr) = self.zones.get(host.as_ref()) else {
            appvsweb_cover::cover!();
            appvsweb_obs::counter!("netsim.dns.nxdomain");
            appvsweb_obs::event!("dns.nxdomain", "{host}");
            self.stats.failures += 1;
            let host = host.into_owned();
            self.negative.insert(
                host.clone(),
                NegativeEntry {
                    kind: DnsErrorKind::NxDomain,
                    expires: now + NEGATIVE_TTL,
                },
            );
            return Err(DnsError::new(DnsErrorKind::NxDomain, host));
        };
        appvsweb_cover::cover!();
        appvsweb_obs::counter!("netsim.dns.queries");
        appvsweb_obs::event!("dns.query", "{host}");
        self.stats.network_queries += 1;
        let jitter = self
            .rng
            .approx_normal(self.mean_latency_ms, 8.0)
            .clamp(2.0, 300.0);
        self.negative.remove(host.as_ref());
        self.cache.insert(
            host.into_owned(),
            CacheEntry {
                addr,
                expires: now + DEFAULT_TTL,
            },
        );
        Ok(DnsAnswer {
            addr,
            cached: false,
            latency: SimDuration(jitter as u64),
        })
    }

    /// Record a failed network query for `host` (the fault-injection
    /// hook): counts it, caches the failure for [`NEGATIVE_TTL`], and
    /// returns the error a client would see.
    pub fn fail(&mut self, host: &str, kind: DnsErrorKind, now: SimTime) -> DnsError {
        let host = host.to_ascii_lowercase();
        appvsweb_obs::counter!("netsim.dns.injected_failures");
        appvsweb_obs::event!("dns.fault", "{host} {kind:?}");
        self.stats.network_queries += 1;
        self.stats.failures += 1;
        self.negative.insert(
            host.clone(),
            NegativeEntry {
                kind,
                expires: now + NEGATIVE_TTL,
            },
        );
        DnsError::new(kind, host)
    }

    /// What the caches say about `host` at `now` (drives whether a fault
    /// injector even gets the chance to break a lookup: cached answers —
    /// positive or negative — never touch the network).
    pub fn cache_state(&self, host: &str, now: SimTime) -> CacheState {
        let host = fold_host(host);
        if self
            .cache
            .get(host.as_ref())
            .is_some_and(|entry| entry.expires > now)
        {
            return CacheState::Fresh;
        }
        if self
            .negative
            .get(host.as_ref())
            .is_some_and(|entry| entry.expires > now)
        {
            return CacheState::Negative;
        }
        CacheState::Miss
    }

    /// Drop all cached entries (a new private-mode session).
    pub fn flush_cache(&mut self) {
        self.cache.clear();
        self.negative.clear();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DnsStats {
        self.stats
    }

    /// Whether `host` exists in the zone map.
    pub fn knows(&self, host: &str) -> bool {
        self.zones.contains_key(fold_host(host).as_ref())
    }
}

/// Lowercase `host` only when it isn't already: simulated hosts almost
/// always are, and borrowing skips a per-lookup allocation.
fn fold_host(host: &str) -> std::borrow::Cow<'_, str> {
    if host.bytes().any(|b| b.is_ascii_uppercase()) {
        std::borrow::Cow::Owned(host.to_ascii_lowercase())
    } else {
        std::borrow::Cow::Borrowed(host)
    }
}

/// Derive a stable synthetic address in 10.0.0.0/8 from a host name.
pub fn derive_addr(host: &str) -> Ipv4Addr {
    let mut h: u32 = 0x811c_9dc5;
    for b in host.bytes() {
        h ^= b.to_ascii_lowercase() as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    // Avoid .0 and .255 host octets for realism.
    let b2 = (h >> 16) as u8;
    let b3 = (h >> 8) as u8;
    let b4 = (h as u8 % 253) + 1;
    Ipv4Addr::new(10, b2, b3, b4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver() -> DnsResolver {
        DnsResolver::new(SimRng::new(1).fork("dns"))
    }

    #[test]
    fn resolves_registered_names() {
        let mut r = resolver();
        let addr = r.register_auto("api.weather.com");
        let ans = r.resolve("API.WEATHER.COM", SimTime(0)).unwrap();
        assert_eq!(ans.addr, addr);
        assert!(!ans.cached);
        assert!(ans.latency > SimDuration::ZERO);
    }

    #[test]
    fn nxdomain_for_unknown() {
        let mut r = resolver();
        let err = r.resolve("nope.example", SimTime(0)).unwrap_err();
        assert_eq!(err.kind, DnsErrorKind::NxDomain);
        assert_eq!(r.stats().failures, 1);
    }

    #[test]
    fn failures_are_negatively_cached_with_their_own_ttl() {
        let mut r = resolver();
        // First miss hits the (absent) network; repeats are local.
        assert!(r.resolve("nope.example", SimTime(0)).is_err());
        for t in 1..10 {
            assert!(r.resolve("nope.example", SimTime(t)).is_err());
        }
        assert_eq!(r.stats().failures, 1, "one authoritative failure");
        assert_eq!(r.stats().negative_hits, 9, "repeats served locally");

        // The negative TTL is its own knob: shorter than the positive TTL.
        let after_neg = SimTime(NEGATIVE_TTL.as_millis() + 1);
        assert!(after_neg.0 < DEFAULT_TTL.as_millis());
        assert!(r.resolve("nope.example", after_neg).is_err());
        assert_eq!(r.stats().failures, 2, "negative entry expired, re-query");
    }

    #[test]
    fn injected_servfail_is_negatively_cached_and_recovers() {
        let mut r = resolver();
        r.register_auto("api.example.com");
        let err = r.fail("api.example.com", DnsErrorKind::ServFail, SimTime(0));
        assert_eq!(err.kind, DnsErrorKind::ServFail);
        assert!(err.kind.is_transient());
        assert_eq!(
            r.cache_state("api.example.com", SimTime(1)),
            CacheState::Negative
        );

        // A retry inside the negative TTL fails locally — no retry storm.
        let queries_before = r.stats().network_queries;
        let again = r.resolve("api.example.com", SimTime(5_000)).unwrap_err();
        assert_eq!(again.kind, DnsErrorKind::ServFail);
        assert_eq!(r.stats().network_queries, queries_before);
        assert_eq!(r.stats().negative_hits, 1);

        // After the negative TTL the zone answers again, and success
        // clears the negative entry.
        let later = SimTime(NEGATIVE_TTL.as_millis() + 1);
        let ans = r.resolve("api.example.com", later).unwrap();
        assert!(!ans.cached);
        assert_eq!(r.cache_state("api.example.com", later), CacheState::Fresh);
    }

    #[test]
    fn cache_state_tracks_both_caches() {
        let mut r = resolver();
        r.register_auto("x.com");
        assert_eq!(r.cache_state("x.com", SimTime(0)), CacheState::Miss);
        r.resolve("x.com", SimTime(0)).unwrap();
        assert_eq!(r.cache_state("X.COM", SimTime(1)), CacheState::Fresh);
        let expired = SimTime(DEFAULT_TTL.as_millis() + 1);
        assert_eq!(r.cache_state("x.com", expired), CacheState::Miss);
        r.flush_cache();
        r.fail("x.com", DnsErrorKind::Timeout, SimTime(0));
        assert_eq!(r.cache_state("x.com", SimTime(1)), CacheState::Negative);
        r.flush_cache();
        assert_eq!(r.cache_state("x.com", SimTime(1)), CacheState::Miss);
    }

    #[test]
    fn cache_hits_within_ttl() {
        let mut r = resolver();
        r.register_auto("cdn.example.com");
        let first = r.resolve("cdn.example.com", SimTime(0)).unwrap();
        let second = r.resolve("cdn.example.com", SimTime(1000)).unwrap();
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(second.latency, SimDuration::ZERO);
        assert_eq!(r.stats().network_queries, 1);
        assert_eq!(r.stats().cache_hits, 1);
    }

    #[test]
    fn cache_expires_after_ttl() {
        let mut r = resolver();
        r.register_auto("x.com");
        r.resolve("x.com", SimTime(0)).unwrap();
        let later = SimTime(DEFAULT_TTL.as_millis() + 1);
        assert!(!r.resolve("x.com", later).unwrap().cached);
        assert_eq!(r.stats().network_queries, 2);
    }

    #[test]
    fn flush_cache_forces_requery() {
        let mut r = resolver();
        r.register_auto("x.com");
        r.resolve("x.com", SimTime(0)).unwrap();
        r.flush_cache();
        assert!(!r.resolve("x.com", SimTime(1)).unwrap().cached);
    }

    #[test]
    fn derived_addresses_are_stable_and_distinct() {
        assert_eq!(derive_addr("a.com"), derive_addr("A.COM"));
        assert_ne!(derive_addr("a.com"), derive_addr("b.com"));
        let a = derive_addr("anything.example");
        assert_eq!(a.octets()[0], 10);
        assert_ne!(a.octets()[3], 0);
    }
}

appvsweb_json::impl_json!(struct DnsAnswer { addr, cached, latency });
appvsweb_json::impl_json!(struct DnsStats { network_queries, cache_hits, failures, negative_hits });
appvsweb_json::impl_json!(
    enum DnsErrorKind {
        NxDomain,
        ServFail,
        Timeout,
    }
);
