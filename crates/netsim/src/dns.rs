//! DNS resolution model.
//!
//! The simulated world maps hostnames to synthetic IPv4 addresses. The
//! resolver caches answers with a TTL and counts queries; DNS traffic is
//! part of the flow accounting in the study (every new third-party domain
//! a Web page pulls in costs a lookup — one reason Web sessions produce so
//! many more flows, cf. paper Figure 1b).

use crate::clock::{SimDuration, SimTime};
use crate::rng::SimRng;
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Default TTL applied to zone answers (5 minutes — longer than a study
/// session, so each domain is resolved once per session).
pub const DEFAULT_TTL: SimDuration = SimDuration(300_000);

/// A DNS answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DnsAnswer {
    /// Resolved address.
    pub addr: Ipv4Addr,
    /// Whether this answer came from cache (no network round trip).
    pub cached: bool,
    /// Lookup latency.
    pub latency: SimDuration,
}

/// Resolution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DnsStats {
    /// Queries that went to the network.
    pub network_queries: u64,
    /// Queries served from cache.
    pub cache_hits: u64,
    /// Names with no zone entry.
    pub failures: u64,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    addr: Ipv4Addr,
    expires: SimTime,
}

/// Error for unresolvable names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NxDomain(pub String);

impl fmt::Display for NxDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NXDOMAIN: {}", self.0)
    }
}

impl std::error::Error for NxDomain {}

/// A caching stub resolver over a static zone map.
#[derive(Debug)]
pub struct DnsResolver {
    zones: BTreeMap<String, Ipv4Addr>,
    cache: BTreeMap<String, CacheEntry>,
    stats: DnsStats,
    rng: SimRng,
    /// Mean network lookup latency in ms.
    mean_latency_ms: f64,
}

impl DnsResolver {
    /// A resolver with an empty zone map. `rng` drives latency jitter.
    pub fn new(rng: SimRng) -> Self {
        DnsResolver {
            zones: BTreeMap::new(),
            cache: BTreeMap::new(),
            stats: DnsStats::default(),
            rng,
            mean_latency_ms: 35.0,
        }
    }

    /// Register `host` in the zone map. Addresses are derived
    /// deterministically from the host name if you use
    /// [`DnsResolver::register_auto`]; this variant takes one explicitly.
    pub fn register(&mut self, host: &str, addr: Ipv4Addr) {
        self.zones.insert(host.to_ascii_lowercase(), addr);
    }

    /// Register `host` with an address derived from the name, keeping the
    /// world reproducible without manual address bookkeeping.
    pub fn register_auto(&mut self, host: &str) -> Ipv4Addr {
        let addr = derive_addr(host);
        self.register(host, addr);
        addr
    }

    /// Resolve `host` at time `now`.
    pub fn resolve(&mut self, host: &str, now: SimTime) -> Result<DnsAnswer, NxDomain> {
        let host = host.to_ascii_lowercase();
        if let Some(entry) = self.cache.get(&host) {
            if entry.expires > now {
                self.stats.cache_hits += 1;
                return Ok(DnsAnswer {
                    addr: entry.addr,
                    cached: true,
                    latency: SimDuration::ZERO,
                });
            }
        }
        let Some(&addr) = self.zones.get(&host) else {
            self.stats.failures += 1;
            return Err(NxDomain(host));
        };
        self.stats.network_queries += 1;
        let jitter = self
            .rng
            .approx_normal(self.mean_latency_ms, 8.0)
            .clamp(2.0, 300.0);
        self.cache.insert(
            host,
            CacheEntry {
                addr,
                expires: now + DEFAULT_TTL,
            },
        );
        Ok(DnsAnswer {
            addr,
            cached: false,
            latency: SimDuration(jitter as u64),
        })
    }

    /// Drop all cached entries (a new private-mode session).
    pub fn flush_cache(&mut self) {
        self.cache.clear();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DnsStats {
        self.stats
    }

    /// Whether `host` exists in the zone map.
    pub fn knows(&self, host: &str) -> bool {
        self.zones.contains_key(&host.to_ascii_lowercase())
    }
}

/// Derive a stable synthetic address in 10.0.0.0/8 from a host name.
pub fn derive_addr(host: &str) -> Ipv4Addr {
    let mut h: u32 = 0x811c_9dc5;
    for &b in host.to_ascii_lowercase().as_bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    // Avoid .0 and .255 host octets for realism.
    let b2 = (h >> 16) as u8;
    let b3 = (h >> 8) as u8;
    let b4 = (h as u8 % 253) + 1;
    Ipv4Addr::new(10, b2, b3, b4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver() -> DnsResolver {
        DnsResolver::new(SimRng::new(1).fork("dns"))
    }

    #[test]
    fn resolves_registered_names() {
        let mut r = resolver();
        let addr = r.register_auto("api.weather.com");
        let ans = r.resolve("API.WEATHER.COM", SimTime(0)).unwrap();
        assert_eq!(ans.addr, addr);
        assert!(!ans.cached);
        assert!(ans.latency > SimDuration::ZERO);
    }

    #[test]
    fn nxdomain_for_unknown() {
        let mut r = resolver();
        assert!(r.resolve("nope.example", SimTime(0)).is_err());
        assert_eq!(r.stats().failures, 1);
    }

    #[test]
    fn cache_hits_within_ttl() {
        let mut r = resolver();
        r.register_auto("cdn.example.com");
        let first = r.resolve("cdn.example.com", SimTime(0)).unwrap();
        let second = r.resolve("cdn.example.com", SimTime(1000)).unwrap();
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(second.latency, SimDuration::ZERO);
        assert_eq!(r.stats().network_queries, 1);
        assert_eq!(r.stats().cache_hits, 1);
    }

    #[test]
    fn cache_expires_after_ttl() {
        let mut r = resolver();
        r.register_auto("x.com");
        r.resolve("x.com", SimTime(0)).unwrap();
        let later = SimTime(DEFAULT_TTL.as_millis() + 1);
        assert!(!r.resolve("x.com", later).unwrap().cached);
        assert_eq!(r.stats().network_queries, 2);
    }

    #[test]
    fn flush_cache_forces_requery() {
        let mut r = resolver();
        r.register_auto("x.com");
        r.resolve("x.com", SimTime(0)).unwrap();
        r.flush_cache();
        assert!(!r.resolve("x.com", SimTime(1)).unwrap().cached);
    }

    #[test]
    fn derived_addresses_are_stable_and_distinct() {
        assert_eq!(derive_addr("a.com"), derive_addr("A.COM"));
        assert_ne!(derive_addr("a.com"), derive_addr("b.com"));
        let a = derive_addr("anything.example");
        assert_eq!(a.octets()[0], 10);
        assert_ne!(a.octets()[3], 0);
    }
}

appvsweb_json::impl_json!(struct DnsAnswer { addr, cached, latency });
appvsweb_json::impl_json!(struct DnsStats { network_queries, cache_hits, failures });
