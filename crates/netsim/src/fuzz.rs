//! Fuzz entry point for the caching DNS resolver.
//!
//! A structured target: the fuzz bytes are decoded as an operation
//! stream (resolve / inject-failure / flush / advance-clock) over a
//! small fixed host universe, and the resolver is model-checked after
//! every step. This is the fuzzing form of the PR 2 negative-cache
//! fix: a fresh negative entry must fail *locally* — repeat failures
//! inside [`NEGATIVE_TTL`] must never touch the network, or injected
//! DNS faults turn into retry storms.
//!
//! [`NEGATIVE_TTL`]: crate::dns::NEGATIVE_TTL

use crate::clock::SimTime;
use crate::dns::{CacheState, DnsErrorKind, DnsResolver, DnsStats};
use crate::rng::SimRng;
use crate::rng_labels;

/// Host universe: two registered names, two that only NXDOMAIN.
const HOSTS: [&str; 4] = [
    "api.example.com",
    "cdn.example.com",
    "nope.example",
    "void.example",
];

fn total(stats: DnsStats) -> u64 {
    stats.network_queries + stats.cache_hits + stats.failures + stats.negative_hits
}

/// Run the DNS target on raw fuzz bytes (decoded as an op stream).
pub fn run(data: &[u8]) {
    let mut resolver = DnsResolver::new(
        SimRng::new(0x2016).fork(&rng_labels::fuzz_target("netsim_dns-resolver-under-test")),
    );
    for host in HOSTS.iter().take(2) {
        resolver.register_auto(host);
    }

    let mut now = SimTime(0);
    let mut prev_stats = resolver.stats();
    for chunk in data.chunks(2) {
        let &[op, arg] = chunk else { break };
        let host = HOSTS[(arg & 0x03) as usize];
        match op % 6 {
            0 | 1 => {
                let state = resolver.cache_state(host, now);
                let before = resolver.stats();
                let outcome = resolver.resolve(host, now);
                let after = resolver.stats();
                match state {
                    CacheState::Fresh => {
                        // Fresh positive entries answer locally, instantly.
                        let answer = outcome.as_ref().ok();
                        assert!(
                            answer.is_some_and(|a| a.cached),
                            "fresh cache produced {outcome:?}"
                        );
                        assert_eq!(
                            after.network_queries, before.network_queries,
                            "fresh cache hit touched the network"
                        );
                    }
                    CacheState::Negative => {
                        // The PR 2 regression: a fresh negative entry must
                        // fail locally, not re-query the network.
                        assert!(outcome.is_err(), "negative cache produced {outcome:?}");
                        assert_eq!(
                            after.network_queries, before.network_queries,
                            "negative-cache hit touched the network (retry storm)"
                        );
                        assert_eq!(after.negative_hits, before.negative_hits + 1);
                    }
                    CacheState::Miss => {
                        assert_eq!(
                            outcome.is_ok(),
                            resolver.knows(host),
                            "zone map decides a cold lookup"
                        );
                        // A cold lookup leaves a cache entry behind, one
                        // way or the other.
                        assert_ne!(
                            resolver.cache_state(host, now),
                            CacheState::Miss,
                            "cold lookup cached nothing"
                        );
                    }
                }
            }
            2 => {
                let kind = match arg >> 6 {
                    0 => DnsErrorKind::ServFail,
                    1 => DnsErrorKind::Timeout,
                    _ => DnsErrorKind::NxDomain,
                };
                let shadowed = resolver.cache_state(host, now) == CacheState::Fresh;
                let err = resolver.fail(host, kind, now);
                assert_eq!(err.kind, kind);
                let state = resolver.cache_state(host, now);
                if shadowed {
                    // A fresh positive entry keeps serving: the failure is
                    // recorded behind it. (The study runner only calls
                    // `fail` on a miss, but the model must stay total.)
                    assert_eq!(state, CacheState::Fresh, "failure evicted a fresh answer");
                } else {
                    assert_eq!(
                        state,
                        CacheState::Negative,
                        "an injected failure must be negatively cached"
                    );
                }
            }
            3 => {
                resolver.flush_cache();
                for h in HOSTS {
                    assert_eq!(
                        resolver.cache_state(h, now),
                        CacheState::Miss,
                        "flush must empty both caches"
                    );
                }
            }
            4 => {
                // Advance the clock (never backwards; ms granularity up
                // to just past the positive TTL so both expiries occur).
                now = SimTime(now.0 + (arg as u64) * 2_048);
            }
            _ => {
                let addr = resolver.register_auto(host);
                assert_eq!(addr, crate::dns::derive_addr(host));
                assert!(resolver.knows(host));
            }
        }
        let stats = resolver.stats();
        assert!(
            total(stats) >= total(prev_stats),
            "stats went backwards: {prev_stats:?} -> {stats:?}"
        );
        prev_stats = stats;
    }
}

/// Dictionary: op/arg pairs for the decoded stream — resolve each host,
/// inject each failure kind, flush, and a TTL-sized clock jump.
pub const DICT: &[&[u8]] = &[
    &[0, 0],
    &[0, 1],
    &[0, 2],
    &[2, 0x00],
    &[2, 0x40],
    &[2, 0x80],
    &[3, 0],
    &[4, 15],
    &[4, 255],
    &[5, 3],
];

/// Seeds: the negative-cache regression scenario (inject, retry inside
/// the TTL, expire, recover) and a cache-hit/expiry sweep.
pub const SEEDS: &[&[u8]] = &[
    &[2, 0x40, 0, 0, 0, 0, 4, 15, 0, 0, 4, 255, 0, 0],
    &[0, 0, 0, 0, 4, 255, 4, 255, 0, 0, 3, 0, 0, 1, 0, 2],
];
