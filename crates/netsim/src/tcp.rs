//! TCP connection accounting.
//!
//! The paper's Figure 1b counts *TCP connections* ("flows") to A&A
//! domains and finds Web versions of services open hundreds to thousands
//! more than apps. We therefore model connections explicitly: each one
//! has a 3-way handshake, MSS-sized segments, per-direction byte/packet
//! counters, and a FIN close. No retransmission or congestion control is
//! modelled — loss-free links make the accounting deterministic, and the
//! study's metrics never depended on loss behaviour.

use crate::clock::SimTime;
use std::fmt;
use std::net::Ipv4Addr;

/// Maximum segment size (typical 1460-byte Ethernet MSS).
pub const MSS: usize = 1460;

/// Bytes of TCP/IP header overhead per segment (IPv4 20 + TCP 20).
pub const HEADER_OVERHEAD: usize = 40;

/// One endpoint of a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// IPv4 address.
    pub addr: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    pub fn new(addr: Ipv4Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// Connection lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Handshake done, data may flow.
    Established,
    /// FINs exchanged; no more data permitted.
    Closed,
}

/// Byte/packet counters for one connection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Application bytes sent client→server.
    pub bytes_up: u64,
    /// Application bytes sent server→client.
    pub bytes_down: u64,
    /// Packets sent client→server (incl. handshake/teardown and headers).
    pub packets_up: u64,
    /// Packets sent server→client.
    pub packets_down: u64,
}

impl ConnectionStats {
    /// Total application payload bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// Total wire bytes including per-segment header overhead.
    pub fn wire_bytes(&self) -> u64 {
        self.total_bytes() + (self.packets_up + self.packets_down) * HEADER_OVERHEAD as u64
    }
}

/// A TCP connection between a client and a server endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Connection {
    /// Monotonic connection id (assigned by the caller / capture layer).
    pub id: u64,
    /// Client side.
    pub client: Endpoint,
    /// Server side.
    pub server: Endpoint,
    /// When the SYN was sent.
    pub opened_at: SimTime,
    /// When the connection closed, if it has.
    pub closed_at: Option<SimTime>,
    /// Current state.
    pub state: ConnState,
    /// Counters.
    pub stats: ConnectionStats,
}

impl Connection {
    /// Open a connection (the 3-way handshake happens "now": SYN,
    /// SYN-ACK, ACK are counted in the packet totals).
    pub fn open(id: u64, client: Endpoint, server: Endpoint, now: SimTime) -> Self {
        Connection {
            id,
            client,
            server,
            opened_at: now,
            closed_at: None,
            state: ConnState::Established,
            stats: ConnectionStats {
                bytes_up: 0,
                bytes_down: 0,
                packets_up: 2,   // SYN + final ACK
                packets_down: 1, // SYN-ACK
            },
        }
    }

    /// Send `bytes` of application payload client→server.
    ///
    /// # Panics
    /// Panics if the connection is closed — sending on a closed
    /// connection is a simulation bug, not a recoverable condition.
    pub fn send(&mut self, bytes: usize) {
        assert_eq!(
            self.state,
            ConnState::Established,
            "send on closed connection"
        );
        appvsweb_obs::counter!("netsim.conn.bytes_up", bytes);
        self.stats.bytes_up += bytes as u64;
        self.stats.packets_up += segments_for(bytes);
        // Pure ACKs from the receiver (one per two segments, delayed-ACK).
        self.stats.packets_down += segments_for(bytes).div_ceil(2);
    }

    /// Send `bytes` of application payload server→client.
    ///
    /// # Panics
    /// Panics if the connection is closed.
    pub fn receive(&mut self, bytes: usize) {
        assert_eq!(
            self.state,
            ConnState::Established,
            "receive on closed connection"
        );
        appvsweb_obs::counter!("netsim.conn.bytes_down", bytes);
        self.stats.bytes_down += bytes as u64;
        self.stats.packets_down += segments_for(bytes);
        self.stats.packets_up += segments_for(bytes).div_ceil(2);
    }

    /// Close the connection (FIN/ACK in both directions). Idempotent.
    pub fn close(&mut self, now: SimTime) {
        if self.state == ConnState::Closed {
            return;
        }
        self.state = ConnState::Closed;
        self.closed_at = Some(now);
        self.stats.packets_up += 2;
        self.stats.packets_down += 2;
    }

    /// Whether data can still be sent.
    pub fn is_open(&self) -> bool {
        self.state == ConnState::Established
    }
}

/// Number of MSS-sized segments needed for `bytes` of payload.
/// Zero bytes still costs one segment (e.g. an empty POST still pushes a
/// PSH/ACK with headers only is *not* modelled; zero means zero).
pub fn segments_for(bytes: usize) -> u64 {
    (bytes.div_ceil(MSS)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> Connection {
        Connection::open(
            1,
            Endpoint::new(Ipv4Addr::new(192, 168, 1, 2), 49152),
            Endpoint::new(Ipv4Addr::new(10, 1, 2, 3), 443),
            SimTime(0),
        )
    }

    #[test]
    fn handshake_counts_three_packets() {
        let c = conn();
        assert_eq!(c.stats.packets_up + c.stats.packets_down, 3);
        assert_eq!(c.stats.total_bytes(), 0);
        assert!(c.is_open());
    }

    #[test]
    fn segmentation_math() {
        assert_eq!(segments_for(0), 0);
        assert_eq!(segments_for(1), 1);
        assert_eq!(segments_for(MSS), 1);
        assert_eq!(segments_for(MSS + 1), 2);
        assert_eq!(segments_for(10 * MSS), 10);
    }

    #[test]
    fn send_receive_accounting() {
        let mut c = conn();
        c.send(3000); // 3 segments up
        c.receive(MSS * 4); // 4 segments down
        assert_eq!(c.stats.bytes_up, 3000);
        assert_eq!(c.stats.bytes_down, (MSS * 4) as u64);
        // up: handshake 2 + 3 data + 2 acks for the 4 down-segments
        assert_eq!(c.stats.packets_up, 2 + 3 + 2);
        // down: handshake 1 + acks for 3 up-segments (2) + 4 data
        assert_eq!(c.stats.packets_down, 1 + 2 + 4);
        assert!(c.stats.wire_bytes() > c.stats.total_bytes());
    }

    #[test]
    fn close_is_idempotent_and_final() {
        let mut c = conn();
        c.close(SimTime(100));
        let packets = c.stats.packets_up + c.stats.packets_down;
        c.close(SimTime(200));
        assert_eq!(c.stats.packets_up + c.stats.packets_down, packets);
        assert_eq!(c.closed_at, Some(SimTime(100)));
        assert!(!c.is_open());
    }

    #[test]
    #[should_panic(expected = "closed connection")]
    fn send_after_close_panics() {
        let mut c = conn();
        c.close(SimTime(1));
        c.send(10);
    }
}

appvsweb_json::impl_json!(struct Endpoint { addr, port });
appvsweb_json::impl_json!(
    enum ConnState {
        Established,
        Closed,
    }
);
appvsweb_json::impl_json!(struct ConnectionStats { bytes_up, bytes_down, packets_up, packets_down });
appvsweb_json::impl_json!(struct Connection { id, client, server, opened_at, closed_at, state, stats });
