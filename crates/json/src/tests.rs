use crate::{decode, encode, encode_pretty, parse, FromJson, Json, JsonKey};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Clone, Debug, PartialEq)]
struct Sample {
    id: u64,
    name: String,
    score: f64,
    tags: BTreeSet<String>,
    parent: Option<String>,
    pairs: Vec<(String, u32)>,
}

impl_json!(struct Sample { id, name, score, tags, parent, pairs });

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Color {
    Red,
    Green,
    Blue,
}

impl_json!(
    enum Color {
        Red,
        Green,
        Blue,
    }
);

#[derive(Clone, Debug, PartialEq)]
struct Wrapped(u16);

impl_json!(newtype Wrapped(u16));

#[derive(Clone, Debug, PartialEq)]
struct Renamed {
    started_date_time: String,
    body_size: i64,
}

impl_json!(struct Renamed { started_date_time as "startedDateTime", body_size as "bodySize" });

fn sample() -> Sample {
    Sample {
        id: 42,
        name: "jane \"quoted\" \\ \n π".to_string(),
        score: -2.5,
        tags: ["b", "a"].iter().map(|s| s.to_string()).collect(),
        parent: None,
        pairs: vec![("x".to_string(), 7)],
    }
}

#[test]
fn struct_roundtrip() {
    let s = sample();
    let text = encode(&s);
    assert_eq!(decode::<Sample>(&text).unwrap(), s);
}

#[test]
fn serialization_is_deterministic_and_fixed_point() {
    let s = sample();
    let a = encode_pretty(&s);
    let b = encode_pretty(&s);
    assert_eq!(a, b);
    let reparsed = parse(&a).unwrap();
    assert_eq!(
        reparsed.to_pretty(),
        a,
        "serialize→parse→serialize must be a fixed point"
    );
}

#[test]
fn enum_as_string_and_map_key() {
    assert_eq!(encode(&Color::Green), "\"Green\"");
    assert_eq!(decode::<Color>("\"Blue\"").unwrap(), Color::Blue);
    assert!(decode::<Color>("\"Mauve\"").is_err());

    let mut map = BTreeMap::new();
    map.insert(Color::Red, 1u64);
    map.insert(Color::Blue, 2u64);
    let text = encode(&map);
    assert_eq!(text, "{\"Red\":1,\"Blue\":2}");
    assert_eq!(decode::<BTreeMap<Color, u64>>(&text).unwrap(), map);
}

#[test]
fn newtype_is_transparent() {
    assert_eq!(encode(&Wrapped(200)), "200");
    assert_eq!(decode::<Wrapped>("200").unwrap(), Wrapped(200));
}

#[test]
fn renamed_fields_use_wire_names() {
    let r = Renamed {
        started_date_time: "t0".to_string(),
        body_size: -1,
    };
    let text = encode(&r);
    assert_eq!(text, "{\"startedDateTime\":\"t0\",\"bodySize\":-1}");
    assert_eq!(decode::<Renamed>(&text).unwrap(), r);
}

#[test]
fn missing_field_reads_as_null() {
    // Option fields tolerate elision; required fields error by name.
    let v = parse("{\"id\":1,\"name\":\"x\",\"score\":0,\"tags\":[],\"pairs\":[]}").unwrap();
    let s = Sample::from_json(&v).unwrap();
    assert_eq!(s.parent, None);
    let incomplete = parse("{\"id\":1}").unwrap();
    let err = Sample::from_json(&incomplete).unwrap_err();
    assert!(
        err.msg.contains("\"name\""),
        "error should name the field: {err}"
    );
}

#[test]
fn numbers_keep_integer_precision() {
    assert_eq!(parse("18446744073709551615").unwrap(), Json::Uint(u64::MAX));
    assert_eq!(parse("-9223372036854775808").unwrap(), Json::Int(i64::MIN));
    assert_eq!(decode::<u64>("18446744073709551615").unwrap(), u64::MAX);
    assert_eq!(parse("-0").unwrap(), Json::Uint(0));
    assert_eq!(parse("1.5e3").unwrap(), Json::Float(1500.0));
    assert!(decode::<u8>("256").is_err());
    assert!(decode::<u32>("-1").is_err());
}

#[test]
fn float_canonical_forms() {
    assert_eq!(encode(&1.0f64), "1");
    assert_eq!(encode(&0.5f64), "0.5");
    assert_eq!(encode(&-0.0f64), "0");
    assert_eq!(encode(&f64::NAN), "null");
    assert!(decode::<f64>("null").unwrap().is_nan());
    assert_eq!(decode::<f64>("3").unwrap(), 3.0);
}

#[test]
fn string_escapes_roundtrip() {
    for s in ["", "plain", "\"\\\n\r\t\u{8}\u{c}\u{1}", "héllo ☂ 𝄞", "a/b"] {
        let text = encode(&s.to_string());
        assert_eq!(decode::<String>(&text).unwrap(), s);
    }
    // Standard escapes and surrogate pairs parse.
    assert_eq!(
        decode::<String>(r#""\u00e9\u263A\uD834\uDD1E\/""#).unwrap(),
        "é☺𝄞/"
    );
}

#[test]
fn parser_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "[1,",
        "{\"a\":}",
        "{'a':1}",
        "[1 2]",
        "01",
        "1.",
        "+1",
        "tru",
        "\"\\x\"",
        "\"unterminated",
        "[1],",
        "nullx",
        "\u{1}",
        "\"\u{1}\"",
        "{\"a\":1,}",
    ] {
        assert!(parse(bad).is_err(), "should reject {bad:?}");
    }
}

#[test]
fn parser_depth_is_bounded() {
    let deep = "[".repeat(100_000) + &"]".repeat(100_000);
    assert!(
        parse(&deep).is_err(),
        "deep nesting must error, not overflow the stack"
    );
}

#[test]
fn pretty_format_shape() {
    let v = parse("{\"a\":[1,2],\"b\":{},\"c\":[]}").unwrap();
    assert_eq!(
        v.to_pretty(),
        "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {},\n  \"c\": []\n}"
    );
}

#[test]
fn containers_roundtrip() {
    let map: BTreeMap<String, Vec<u64>> =
        [("a".to_string(), vec![1, 2]), ("b".to_string(), vec![])]
            .into_iter()
            .collect();
    assert_eq!(
        decode::<BTreeMap<String, Vec<u64>>>(&encode(&map)).unwrap(),
        map
    );

    let addr: std::net::Ipv4Addr = "10.1.2.3".parse().unwrap();
    assert_eq!(encode(&addr), "\"10.1.2.3\"");
    assert_eq!(decode::<std::net::Ipv4Addr>("\"10.1.2.3\"").unwrap(), addr);

    let triple = (1u64, "x".to_string(), true);
    assert_eq!(
        decode::<(u64, String, bool)>(&encode(&triple)).unwrap(),
        triple
    );
}

#[test]
fn json_key_for_strings() {
    assert_eq!(String::from_key("k").unwrap(), "k");
    assert_eq!("k".to_string().to_key(), "k");
}

#[test]
fn accessors() {
    let v = parse("{\"a\":[10,20]}").unwrap();
    assert_eq!(v.get("a").and_then(|a| a.at(1)), Some(&Json::Uint(20)));
    assert_eq!(v.get("missing"), None);
    assert!(v.field::<u64>("a").is_err());
    assert_eq!(v.at(0), None);
}
