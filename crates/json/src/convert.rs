//! [`ToJson`] / [`FromJson`] implementations for primitives and the
//! standard containers the workspace serializes.

use crate::value::{Json, JsonError};
use crate::{FromJson, ToJson};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Types usable as JSON object keys (for `BTreeMap` serialization).
///
/// Implemented for `String` and for every unit enum that goes through
/// [`impl_json!`](crate::impl_json) — serde likewise renders unit-variant
/// map keys as their name string.
pub trait JsonKey: Sized {
    /// The object-key form of `self`.
    fn to_key(&self) -> String;
    /// Rebuild from an object key.
    fn from_key(key: &str) -> Result<Self, JsonError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, JsonError> {
        Ok(key.to_string())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::schema(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::schema(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Uint(*self as u64)
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let raw = match value {
                    Json::Uint(v) => *v,
                    Json::Int(v) if *v >= 0 => *v as u64,
                    other => {
                        return Err(JsonError::schema(format!(
                            concat!("expected ", stringify!($ty), ", got {}"),
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    JsonError::schema(format!(concat!("{} out of range for ", stringify!($ty)), raw))
                })
            }
        }
    )+};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                // Canonical form: non-negative integers are always Uint.
                if v >= 0 { Json::Uint(v as u64) } else { Json::Int(v) }
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let raw: i64 = match value {
                    Json::Int(v) => *v,
                    Json::Uint(v) => i64::try_from(*v).map_err(|_| {
                        JsonError::schema(format!("{v} out of range for i64"))
                    })?,
                    other => {
                        return Err(JsonError::schema(format!(
                            concat!("expected ", stringify!($ty), ", got {}"),
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    JsonError::schema(format!(concat!("{} out of range for ", stringify!($ty)), raw))
                })
            }
        }
    )+};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Float(v) => Ok(*v),
            Json::Uint(v) => Ok(*v as f64),
            Json::Int(v) => Ok(*v as f64),
            // Non-finite floats serialize as null (JSON has no NaN).
            Json::Null => Ok(f64::NAN),
            other => Err(JsonError::schema(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        f64::from_json(value).map(|v| v as f32)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.items()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + Ord> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.items()?.iter().map(T::from_json).collect()
    }
}

impl<K: JsonKey + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .entries()?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json(v)?)))
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let items = value.items()?;
        let [a, b] = items else {
            return Err(JsonError::schema(format!(
                "expected 2-element array, got {} elements",
                items.len()
            )));
        };
        Ok((A::from_json(a)?, B::from_json(b)?))
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let items = value.items()?;
        let [a, b, c] = items else {
            return Err(JsonError::schema(format!(
                "expected 3-element array, got {} elements",
                items.len()
            )));
        };
        Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        T::from_json(value).map(Box::new)
    }
}

impl ToJson for Ipv4Addr {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Ipv4Addr {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let s = String::from_json(value)?;
        s.parse()
            .map_err(|_| JsonError::schema(format!("invalid IPv4 address: {s:?}")))
    }
}
