//! Strict recursive-descent JSON parser.
//!
//! Accepts exactly the JSON grammar (RFC 8259): no trailing commas, no
//! comments, no bare values beyond the standard literals. Numbers
//! without fraction or exponent parse to [`Json::Uint`] / [`Json::Int`]
//! at full 64-bit precision; everything else falls back to `f64`.

use crate::value::{Json, JsonError};
use appvsweb_cover::cover;

/// Parse a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at(
            p.pos,
            "trailing characters after JSON value".to_string(),
        ));
    }
    Ok(value)
}

/// Nesting depth cap: parsing is recursive, and adversarial inputs (the
/// property tests feed arbitrary bytes) must error before the stack does.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at(self.pos, "nesting too deep".to_string()));
        }
        match self.peek() {
            Some(b'{') => {
                cover!();
                self.object(depth)
            }
            Some(b'[') => {
                cover!();
                self.array(depth)
            }
            Some(b'"') => {
                cover!();
                Ok(Json::Str(self.string()?))
            }
            Some(b't') => {
                cover!();
                self.literal(b"true", Json::Bool(true))
            }
            Some(b'f') => {
                cover!();
                self.literal(b"false", Json::Bool(false))
            }
            Some(b'n') => {
                cover!();
                self.literal(b"null", Json::Null)
            }
            Some(b'-' | b'0'..=b'9') => {
                cover!();
                self.number()
            }
            Some(other) => Err(JsonError::at(
                self.pos,
                format!("unexpected character {:?}", other as char),
            )),
            None => Err(JsonError::at(
                self.pos,
                "unexpected end of input".to_string(),
            )),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, "invalid literal".to_string()))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            cover!();
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'".to_string())),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            cover!();
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'".to_string())),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is a &str and the run stops on ASCII bytes, so the
                // slice sits on char boundaries and stays valid UTF-8; the
                // fallback is unreachable.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or(""));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    cover!();
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => {
                    return Err(JsonError::at(
                        self.pos,
                        "control character in string".to_string(),
                    ))
                }
                None => return Err(JsonError::at(self.pos, "unterminated string".to_string())),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self
            .peek()
            .ok_or_else(|| JsonError::at(self.pos, "unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                cover!();
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must pair with \uDC00..\uDFFF.
                    cover!();
                    if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(JsonError::at(self.pos, "invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code)
                            .ok_or_else(|| JsonError::at(self.pos, "invalid surrogate pair"))?
                    } else {
                        return Err(JsonError::at(self.pos, "unpaired surrogate"));
                    }
                } else {
                    char::from_u32(hi)
                        .ok_or_else(|| JsonError::at(self.pos, "invalid unicode escape"))?
                };
                out.push(ch);
            }
            other => {
                return Err(JsonError::at(
                    self.pos - 1,
                    format!("invalid escape \\{}", other as char),
                ))
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::at(self.pos, "truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::at(self.pos, "invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError::at(self.pos, "invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::at(self.pos, "invalid number".to_string())),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            cover!();
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(
                    self.pos,
                    "digits required after '.'".to_string(),
                ));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            cover!();
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(
                    self.pos,
                    "digits required in exponent".to_string(),
                ));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Number bytes are all ASCII (digits, signs, '.', 'e'); the empty
        // fallback is unreachable and would parse as a malformed number.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if integral {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    // Parser-level canonicalization: "-0" is the integer 0.
                    return Ok(if v == 0 { Json::Uint(0) } else { Json::Int(v) });
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Uint(v));
            }
            // Magnitude beyond 64 bits: keep the value, at float precision.
        }
        let v: f64 = text
            .parse()
            .map_err(|_| JsonError::at(start, "invalid number".to_string()))?;
        if v.is_finite() {
            Ok(Json::Float(v))
        } else {
            Err(JsonError::at(start, "number out of range".to_string()))
        }
    }
}
