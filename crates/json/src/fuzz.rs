//! Fuzz entry point: parser totality plus the serialize fixed point.
//!
//! The harness feeds arbitrary bytes; the contract under fuzzing is
//!
//! 1. `parse` never panics — malformed input is a typed [`JsonError`],
//! 2. any document that *does* parse serializes to a canonical form
//!    that reparses, and that canonical form is a byte-level fixed
//!    point: `serialize(parse(serialize(v))) == serialize(v)`. (Value
//!    equality is deliberately not asserted — `Float(1.0)` serializes
//!    to `"1"`, which reparses as `Uint(1)`; the *text* is what must
//!    stabilize.)
//!
//! [`JsonError`]: crate::JsonError

use crate::parse;

/// Run the JSON target on raw fuzz bytes. Panics only on a contract
/// violation — exactly what the fuzz engine reports as a crash.
pub fn run(data: &[u8]) {
    // The parser takes &str; arbitrary bytes are decoded lossily so the
    // fuzzer can still reach every byte-level branch past the replacement
    // characters.
    let text = String::from_utf8_lossy(data);
    let Ok(value) = parse(&text) else {
        return;
    };
    let s1 = value.to_compact();
    let reparsed = parse(&s1);
    assert!(
        reparsed.is_ok(),
        "serialized JSON failed to reparse: {reparsed:?} in {s1:?}"
    );
    let Ok(reparsed) = reparsed else { return };
    let s2 = reparsed.to_compact();
    assert_eq!(s1, s2, "serialize∘parse is not a fixed point");
    // Pretty form must describe the same document.
    let pretty = value.to_pretty();
    let pretty_parsed = parse(&pretty);
    assert!(
        pretty_parsed.is_ok(),
        "pretty JSON failed to reparse: {pretty_parsed:?}"
    );
    if let Ok(v) = pretty_parsed {
        assert_eq!(v.to_compact(), s2, "pretty form diverged");
    }
}

/// Dictionary: the grammar's fixed tokens plus escape/number shrapnel.
pub const DICT: &[&[u8]] = &[
    b"{",
    b"}",
    b"[",
    b"]",
    b":",
    b",",
    b"\"",
    b"\\",
    b"true",
    b"false",
    b"null",
    b"\\u0041",
    b"\\uD83D\\uDE00",
    b"1e308",
    b"-0",
    b"0.5",
    b"18446744073709551615",
    b"\"\"",
    b"{}",
    b"[]",
];

/// Built-in seeds: one document per value kind plus nesting and escapes.
pub const SEEDS: &[&[u8]] = &[
    b"null",
    b"[1,2.5,-3,1e10,\"x\"]",
    b"{\"a\":{\"b\":[true,false,null]},\"c\":\"\\n\\u00e9\"}",
    b"{\"deep\":[[[[[[{\"k\":0}]]]]]]}",
    b"\"\\uD834\\uDD1E\"",
    b"-9223372036854775808",
];
