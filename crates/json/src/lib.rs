//! Self-contained JSON for the appvsweb workspace.
//!
//! The build runs fully offline, so this crate replaces `serde` +
//! `serde_json` with a purpose-built value type ([`Json`]), a strict
//! parser, compact/pretty serializers, and the [`ToJson`] / [`FromJson`]
//! trait pair. The [`impl_json!`] macro plays the role of
//! `#[derive(Serialize, Deserialize)]` for the three shapes the
//! workspace actually uses: structs with named fields (with optional
//! key renames for HAR casing), transparent newtypes, and unit enums
//! (which double as object keys via [`JsonKey`]).
//!
//! Canonical-form guarantees the rest of the workspace relies on:
//!
//! * Object key order is the insertion order of the writer, so two
//!   identical values always serialize to byte-identical text — the
//!   determinism tests compare whole studies this way.
//! * serialize → parse → re-serialize is a fixed point (golden-snapshot
//!   tests assert it on full studies).
//! * Non-negative integers always serialize without sign or fraction;
//!   floats use Rust's shortest round-trippable `Display` form, with
//!   `-0.0` canonicalized to `0` and non-finite values written as
//!   `null` (JSON has no NaN/Infinity).

mod convert;
pub mod fuzz;
mod parse;
mod ser;
mod value;

pub use convert::JsonKey;
pub use parse::parse;
pub use value::{Json, JsonError};

/// Serialize any [`ToJson`] value to compact JSON.
pub fn encode<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Serialize any [`ToJson`] value to pretty (2-space indented) JSON.
pub fn encode_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty()
}

/// Parse JSON text into any [`FromJson`] value.
pub fn decode<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Build the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] value.
pub trait FromJson: Sized {
    /// Rebuild `Self` from its JSON representation.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

/// Implement [`ToJson`] + [`FromJson`] (and, for enums, [`JsonKey`]) for
/// a type, in place of a serde derive.
///
/// Three forms:
///
/// ```ignore
/// impl_json!(struct Url { scheme, host, port, path, query });
/// impl_json!(struct HarEntry { started_date_time as "startedDateTime", time });
/// impl_json!(newtype StatusCode(u16));
/// impl_json!(enum Medium { App, Web });
/// ```
///
/// Struct fields serialize in the declared order under their own name
/// (or the `as "…"` rename); on parse, a missing key is treated as
/// `null`, so `Option` fields tolerate elision. Newtypes serialize
/// transparently as their single field. Unit enums serialize as their
/// variant-name string and may be used as `BTreeMap` keys.
#[macro_export]
macro_rules! impl_json {
    (enum $ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Str($crate::JsonKey::to_key(self))
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::core::result::Result<Self, $crate::JsonError> {
                match v {
                    $crate::Json::Str(s) => <$ty as $crate::JsonKey>::from_key(s),
                    other => ::core::result::Result::Err($crate::JsonError::schema(format!(
                        concat!("expected ", stringify!($ty), " string, got {}"),
                        other.kind()
                    ))),
                }
            }
        }
        impl $crate::JsonKey for $ty {
            fn to_key(&self) -> ::std::string::String {
                match self { $( $ty::$variant => stringify!($variant), )+ }.to_string()
            }
            fn from_key(key: &str) -> ::core::result::Result<Self, $crate::JsonError> {
                match key {
                    $( stringify!($variant) => ::core::result::Result::Ok($ty::$variant), )+
                    other => ::core::result::Result::Err($crate::JsonError::schema(format!(
                        concat!("unknown ", stringify!($ty), " variant: {:?}"),
                        other
                    ))),
                }
            }
        }
    };
    (newtype $ty:ident($inner:ty)) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::core::result::Result<Self, $crate::JsonError> {
                ::core::result::Result::Ok($ty(<$inner as $crate::FromJson>::from_json(v)?))
            }
        }
    };
    (struct $ty:ident { $($field:ident $(as $key:literal)?),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((
                        $crate::impl_json!(@key $field $(as $key)?).to_string(),
                        $crate::ToJson::to_json(&self.$field),
                    ),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::core::result::Result<Self, $crate::JsonError> {
                ::core::result::Result::Ok($ty {
                    $( $field: v.field($crate::impl_json!(@key $field $(as $key)?))?, )+
                })
            }
        }
    };
    (@key $field:ident) => { stringify!($field) };
    (@key $field:ident as $key:literal) => { $key };
}

#[cfg(test)]
mod tests;
