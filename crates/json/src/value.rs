//! The JSON value tree and error type.

use crate::FromJson;
use std::fmt;

/// A parsed or constructed JSON value.
///
/// Integers keep full 64-bit precision (JSON text has no width limit;
/// `serde_json` makes the same split between integer and float
/// representations). Non-negative integers are always represented as
/// [`Json::Uint`] so that equal numbers have equal representations.
/// Objects preserve insertion order — serialization is deterministic and
/// writers control the canonical field order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    Uint(u64),
    /// A negative integer.
    Int(i64),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Short name of this value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Uint(_) | Json::Int(_) => "integer",
            Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array; `None` out of bounds or for non-arrays.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// Decode an object field. Missing keys read as `null`, so `Option`
    /// fields tolerate elided keys; any decode error is annotated with
    /// the field name.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        if !matches!(self, Json::Obj(_)) {
            return Err(JsonError::schema(format!(
                "expected object with field {key:?}, got {}",
                self.kind()
            )));
        }
        let value = self.get(key).unwrap_or(&Json::Null);
        T::from_json(value).map_err(|e| JsonError::schema(format!("field {key:?}: {}", e.msg)))
    }

    /// The array items, or a schema error for non-arrays.
    pub fn items(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::schema(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// The object entries, or a schema error for non-objects.
    pub fn entries(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(pairs) => Ok(pairs),
            other => Err(JsonError::schema(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

/// Error from parsing or decoding JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input, for parse errors.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A structural (schema) error with no text position.
    pub fn schema(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            offset: None,
        }
    }

    /// A parse error at a byte offset.
    pub fn at(offset: usize, msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(pos) => write!(f, "{} at byte {pos}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for JsonError {}
