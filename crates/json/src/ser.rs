//! Compact and pretty serializers.
//!
//! Both writers are deterministic: object fields appear in insertion
//! order, floats use Rust's shortest round-trippable `Display` form, and
//! string escapes are canonical. A serialized document re-parses to an
//! equal value, and re-serializing that value reproduces the bytes —
//! the fixed-point property the golden-snapshot tests assert.

use crate::value::Json;
use std::fmt::Write;

impl Json {
    /// Serialize without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_value(out: &mut String, value: &Json, indent: Option<usize>, level: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Uint(v) => {
            let _ = write!(out, "{v}");
        }
        Json::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Json::Float(v) => write_float(out, *v),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => write_seq(out, items.iter(), indent, level, ('[', ']'), |out, v, l| {
            write_value(out, v, indent, l)
        }),
        Json::Obj(pairs) => write_seq(
            out,
            pairs.iter(),
            indent,
            level,
            ('{', '}'),
            |out, (k, v), l| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, l);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(out, item, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(brackets.1);
}

fn write_float(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; serde_json errors here, we degrade
        // to null (decoding null as f64 yields NaN).
        out.push_str("null");
    } else if v == 0.0 {
        // Canonicalize -0.0: "-0" would re-parse as integer 0 and break
        // the serialize→parse→serialize fixed point.
        out.push('0');
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
