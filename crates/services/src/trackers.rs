//! Tracker / A&A network behaviour models.
//!
//! Each [`TrackerSpec`] describes one advertising or analytics
//! organization: the hosts its beacons hit, what PII its **app SDK**
//! collects (SDKs run inside the app process and can read whatever the
//! host app can), what PII its **web tag** receives (only what the page
//! exposes — never device identifiers), how chatty it is, and how it
//! encodes payloads. The set covers every A&A domain in Table 2 of the
//! paper plus the wider 2016 ecosystem in the bundled filter list.

use appvsweb_pii::PiiType;

/// How a tracker serializes its beacon payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadStyle {
    /// Everything in URL query parameters (classic pixel).
    Query,
    /// POST with form-encoded body.
    Form,
    /// POST with a JSON body.
    Json,
    /// POST with base64-wrapped JSON (SDK batch upload style).
    Base64Json,
    /// POST with a gzip-compressed JSON body and `Content-Encoding:
    /// gzip` — Flurry's batch-upload convention. Detection only works
    /// because the interception proxy inflates bodies before scanning.
    GzipJson,
}

/// A tracker / A&A organization.
#[derive(Clone, Debug)]
pub struct TrackerSpec {
    /// Short id, matching the organization label of its domains.
    pub id: &'static str,
    /// Beacon hosts (first one is primary).
    pub hosts: &'static [&'static str],
    /// PII the app SDK transmits (beyond a per-install random token).
    pub app_collects: &'static [PiiType],
    /// PII the web tag transmits when the page exposes it.
    pub web_collects: &'static [PiiType],
    /// Milliseconds between app SDK beacons (0 = init-only).
    pub beacon_period_ms: u64,
    /// How often app beacons carry PII: `0` = only the init beacon
    /// (attribution SDKs send the identifier once), `1` = every beacon
    /// (the hyper-chatty trackers like Amobee), `n` = every nth.
    /// Calibrated against Table 2's per-service leak averages.
    pub pii_every_n: u32,
    /// Whether the *web* tag re-sends page PII on every page view
    /// (most tags push the data layer only on landing pages).
    pub web_pii_all_pages: bool,
    /// Whether beacons travel over plaintext HTTP.
    pub plaintext: bool,
    /// Payload serialization.
    pub style: PayloadStyle,
    /// Whether the web tag participates in RTB redirect chains.
    pub rtb_exchange: bool,
    /// Bytes of ad creative the app SDK fetches alongside each beacon
    /// (0 = pure analytics, no creatives). Ad-serving SDKs dominate the
    /// app-side A&A byte counts of paper Fig. 1c.
    pub creative_bytes: usize,
}

impl TrackerSpec {
    /// Primary beacon host (the first entry of [`hosts`](Self::hosts)).
    pub fn primary_host(&self) -> &'static str {
        // lint:allow(R1) static catalog data; every_tracker_has_hosts asserts ≥1 host
        self.hosts[0]
    }
}

/// The tracker catalog.
pub fn all() -> &'static [TrackerSpec] {
    TRACKERS
}

/// Look up a tracker by id.
///
/// # Panics
/// Panics when `id` is unknown — catalog references are static data and a
/// bad one is a programming error, caught by tests.
pub fn by_id(id: &str) -> &'static TrackerSpec {
    TRACKERS
        .iter()
        .find(|t| t.id == id)
        // lint:allow(R1) documented panic: a bad static catalog reference is a programming error
        .unwrap_or_else(|| panic!("unknown tracker id: {id}"))
}

use PiiType::*;

const TRACKERS: &[TrackerSpec] = &[
    // ---- Table 2 organizations ----
    TrackerSpec {
        id: "amobee",
        hosts: &["ads.amobee.com", "rt.amobee.com"],
        app_collects: &[UniqueId, Location, Gender],
        web_collects: &[Location, Gender],
        beacon_period_ms: 1_000,
        pii_every_n: 1,
        web_pii_all_pages: true, // the most leak-heavy tracker in the study
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 6_000,
    },
    TrackerSpec {
        id: "moatads",
        hosts: &["z.moatads.com", "px.moatads.com"],
        app_collects: &[UniqueId],
        web_collects: &[Location],
        beacon_period_ms: 4_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "vrvm",
        hosts: &["api.vrvm.com"],
        app_collects: &[UniqueId, Location, DeviceInfo],
        web_collects: &[],
        beacon_period_ms: 3_500,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: true, // Verve was a known plaintext offender in 2016
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 5_000,
    },
    TrackerSpec {
        id: "google-analytics",
        hosts: &["www.google-analytics.com", "ssl.google-analytics.com"],
        app_collects: &[UniqueId],
        web_collects: &[Location],
        beacon_period_ms: 15_000,
        pii_every_n: 0,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "facebook",
        hosts: &["graph.facebook.com", "connect.facebook.net"],
        app_collects: &[UniqueId, Location],
        web_collects: &[Name],
        beacon_period_ms: 20_000,
        pii_every_n: 3,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Form,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "groceryserver",
        hosts: &["api.groceryserver.com"],
        app_collects: &[Location, UniqueId],
        web_collects: &[],
        beacon_period_ms: 3_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Json,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "serving-sys",
        hosts: &["bs.serving-sys.com"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 12_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "googlesyndication",
        hosts: &[
            "pagead2.googlesyndication.com",
            "securepubads.googlesyndication.com",
        ],
        app_collects: &[UniqueId],
        web_collects: &[Location],
        beacon_period_ms: 9_000,
        pii_every_n: 4,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "thebrighttag",
        hosts: &["s.thebrighttag.com"],
        app_collects: &[UniqueId, Email],
        web_collects: &[],
        beacon_period_ms: 16_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "tiqcdn",
        hosts: &["tags.tiqcdn.com"],
        app_collects: &[UniqueId],
        web_collects: &[Email],
        beacon_period_ms: 15_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "marinsm",
        hosts: &["tracker.marinsm.com"],
        app_collects: &[UniqueId, Username],
        web_collects: &[Username],
        beacon_period_ms: 5_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "criteo",
        hosts: &["widget.criteo.com", "dis.criteo.com"],
        app_collects: &[UniqueId, Email],
        web_collects: &[Email],
        beacon_period_ms: 50_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "2mdn",
        hosts: &["s0.2mdn.net"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 30_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "monetate",
        hosts: &["e.monetate.net"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 3_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Json,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "247realmedia",
        hosts: &["oasc.247realmedia.com"],
        app_collects: &[UniqueId],
        web_collects: &[Location],
        beacon_period_ms: 5_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "krxd",
        hosts: &["beacon.krxd.net", "cdn.krxd.net"],
        app_collects: &[UniqueId, Location, Email],
        web_collects: &[],
        beacon_period_ms: 40_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "doubleverify",
        hosts: &["rtb0.doubleverify.com"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 12_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "cloudinary",
        hosts: &["res.cloudinary.com"],
        app_collects: &[],
        web_collects: &[Location], // web-only recipient in Table 2
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "webtrends",
        hosts: &["statse.webtrendslive.com", "s.webtrends.com"],
        app_collects: &[UniqueId, Location],
        web_collects: &[],
        beacon_period_ms: 8_600,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "liftoff",
        hosts: &["impression.liftoff.io"],
        app_collects: &[UniqueId, Location],
        web_collects: &[],
        beacon_period_ms: 9_000,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Json,
        rtb_exchange: false,
        creative_bytes: 8_000,
    },
    // ---- §4.2 case-study recipients ----
    TrackerSpec {
        id: "taplytics",
        hosts: &["api.taplytics.com"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 20_000,
        pii_every_n: 0,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Json,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "usablenet",
        hosts: &["jetblue.usablenet.com"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Form,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "gigya",
        hosts: &["accounts.gigya.com", "cdns.gigya.com"],
        app_collects: &[Email],
        web_collects: &[Email],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Form,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    // ---- Ecosystem staples (Web ad stack + app SDKs) ----
    TrackerSpec {
        id: "doubleclick",
        hosts: &[
            "ad.doubleclick.net",
            "ads.g.doubleclick.net",
            "cm.g.doubleclick.net",
        ],
        app_collects: &[UniqueId],
        web_collects: &[Location],
        beacon_period_ms: 18_000,
        pii_every_n: 6,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "flurry",
        hosts: &["data.flurry.com"],
        app_collects: &[UniqueId, DeviceInfo, Location],
        web_collects: &[],
        beacon_period_ms: 10_000,
        pii_every_n: 8,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::GzipJson,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "crashlytics",
        hosts: &["settings.crashlytics.com", "reports.crashlytics.com"],
        app_collects: &[UniqueId, DeviceInfo],
        web_collects: &[],
        beacon_period_ms: 60_000,
        pii_every_n: 0,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Json,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "chartbeat",
        hosts: &["ping.chartbeat.net"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: true, // chartbeat pings were plain HTTP in 2016
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "scorecardresearch",
        hosts: &["b.scorecardresearch.com"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 30_000,
        pii_every_n: 0,
        web_pii_all_pages: false,
        plaintext: true,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "quantserve",
        hosts: &["pixel.quantserve.com"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "mixpanel",
        hosts: &["api.mixpanel.com"],
        app_collects: &[UniqueId, Email],
        web_collects: &[Email, Gender],
        beacon_period_ms: 22_000,
        pii_every_n: 5,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Base64Json,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "adjust",
        hosts: &["app.adjust.com"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 45_000,
        pii_every_n: 0,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Form,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "appsflyer",
        hosts: &["t.appsflyer.com"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 40_000,
        pii_every_n: 0,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Json,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "yieldmo",
        hosts: &["ads.yieldmo.com"],
        app_collects: &[UniqueId, Location],
        web_collects: &[], // paper: "YieldMo only collects PII from apps"
        beacon_period_ms: 7_000,
        pii_every_n: 2,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 8_000,
    },
    TrackerSpec {
        id: "adnxs",
        hosts: &["ib.adnxs.com", "secure.adnxs.com"],
        app_collects: &[UniqueId],
        web_collects: &[Location],
        beacon_period_ms: 14_000,
        pii_every_n: 8,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "rubiconproject",
        hosts: &["fastlane.rubiconproject.com", "pixel.rubiconproject.com"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "openx",
        hosts: &["u.openx.net"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "pubmatic",
        hosts: &["ads.pubmatic.com", "image2.pubmatic.com"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "casalemedia",
        hosts: &["dsum.casalemedia.com"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "bluekai",
        hosts: &["tags.bluekai.com", "stags.bluekai.com"],
        app_collects: &[],
        web_collects: &[Gender, Birthday],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "demdex",
        hosts: &["dpm.demdex.net"],
        app_collects: &[],
        web_collects: &[Email],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "mathtag",
        hosts: &["pixel.mathtag.com"],
        app_collects: &[],
        web_collects: &[Location],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: true,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "outbrain",
        hosts: &["widgets.outbrain.com", "log.outbrainimg.com"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "taboola",
        hosts: &["trc.taboola.com"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 0,
        pii_every_n: 1,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "comscore",
        hosts: &["sb.comscore.com"],
        app_collects: &[],
        web_collects: &[],
        beacon_period_ms: 35_000,
        pii_every_n: 0,
        web_pii_all_pages: false,
        plaintext: true,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "omtrdc",
        hosts: &["metrics.omtrdc.net"],
        app_collects: &[UniqueId, Location, Username],
        web_collects: &[Name],
        beacon_period_ms: 16_000,
        pii_every_n: 4,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "amazon-adsystem",
        hosts: &["aax.amazon-adsystem.com", "s.amazon-adsystem.com"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 20_000,
        pii_every_n: 6,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: true,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "mopub",
        hosts: &["ads.mopub.com"],
        app_collects: &[UniqueId, Location],
        web_collects: &[],
        beacon_period_ms: 11_000,
        pii_every_n: 4,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 8_000,
    },
    TrackerSpec {
        id: "inmobi",
        hosts: &["ads.inmobi.com"],
        app_collects: &[UniqueId, Location],
        web_collects: &[],
        beacon_period_ms: 13_000,
        pii_every_n: 4,
        web_pii_all_pages: false,
        plaintext: true,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 8_000,
    },
    TrackerSpec {
        id: "millennialmedia",
        hosts: &["ads.mp.mydas.mobi"],
        app_collects: &[UniqueId, Location],
        web_collects: &[],
        beacon_period_ms: 12_500,
        pii_every_n: 4,
        web_pii_all_pages: false,
        plaintext: true,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 8_000,
    },
    TrackerSpec {
        id: "tapjoy",
        hosts: &["ws.tapjoyads.com"],
        app_collects: &[UniqueId],
        web_collects: &[],
        beacon_period_ms: 17_000,
        pii_every_n: 0,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Query,
        rtb_exchange: false,
        creative_bytes: 0,
    },
    TrackerSpec {
        id: "newrelic",
        hosts: &["mobile-collector.newrelic.com"],
        app_collects: &[UniqueId, DeviceInfo],
        web_collects: &[],
        beacon_period_ms: 55_000,
        pii_every_n: 0,
        web_pii_all_pages: false,
        plaintext: false,
        style: PayloadStyle::Json,
        rtb_exchange: false,
        creative_bytes: 0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = TRACKERS.iter().map(|t| t.id).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate tracker id");
    }

    #[test]
    fn every_tracker_has_hosts() {
        for t in TRACKERS {
            assert!(!t.hosts.is_empty(), "{} needs at least one host", t.id);
        }
    }

    #[test]
    fn web_tags_never_collect_device_identifiers() {
        // The paper's key structural finding: Web pages cannot read UID or
        // device info. Our tracker catalog must respect the platform.
        for t in TRACKERS {
            assert!(
                !t.web_collects.contains(&PiiType::UniqueId),
                "{}: web tags cannot read device unique IDs",
                t.id
            );
            assert!(
                !t.web_collects.contains(&PiiType::DeviceInfo),
                "{}: web tags cannot read the hardware model",
                t.id
            );
        }
    }

    #[test]
    fn table2_organizations_present() {
        for id in [
            "amobee",
            "moatads",
            "vrvm",
            "google-analytics",
            "facebook",
            "groceryserver",
            "serving-sys",
            "googlesyndication",
            "thebrighttag",
            "tiqcdn",
            "marinsm",
            "criteo",
            "2mdn",
            "monetate",
            "247realmedia",
            "krxd",
            "doubleverify",
            "cloudinary",
            "webtrends",
            "liftoff",
        ] {
            assert_eq!(by_id(id).id, id);
        }
    }

    #[test]
    fn yieldmo_is_app_only_collector() {
        let t = by_id("yieldmo");
        assert!(!t.app_collects.is_empty());
        assert!(t.web_collects.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown tracker id")]
    fn unknown_id_panics() {
        by_id("not-a-tracker");
    }
}
