//! Origin servers for the simulated Internet.
//!
//! One [`OriginWorld`] answers for every host a session contacts:
//! first-party APIs and pages, CDN objects, tracker beacon endpoints, and
//! the RTB ad exchanges whose 302 redirect chains bounce browsers
//! "through several more" A&A domains (paper §1). All origin
//! certificates chain to a single public root that both the devices and
//! the Meddle proxy trust.

use appvsweb_httpsim::cookie::SetCookie;
use appvsweb_httpsim::url::Scheme;
use appvsweb_httpsim::{degrade, Body, Request, Response, StatusCode, Url};
use appvsweb_mitm::OriginServer;
use appvsweb_netsim::faults::ResponseFault;
use appvsweb_netsim::{rng_labels, FaultCounts, FaultInjector, FaultPlan, SimRng, SimTime};
use appvsweb_tlssim::{CertificateAuthority, ServerConfig, TrustStore};

/// RTB exchange hosts that participate in redirect chains.
const RTB_EXCHANGES: &[&str] = &[
    "ib.adnxs.com",
    "fastlane.rubiconproject.com",
    "u.openx.net",
    "ads.pubmatic.com",
    "dsum.casalemedia.com",
    "cm.g.doubleclick.net",
    "dpm.demdex.net",
    "pixel.mathtag.com",
    "tags.bluekai.com",
];

/// The response behaviour of every origin in the simulation.
// lint:allow(D3x) world-scoped stream: OriginWorld is rebuilt per cell, so the stashed rng cannot cross cells
pub struct OriginWorld {
    ca: CertificateAuthority,
    rng: SimRng,
    /// Origin-side chaos dice (disabled by default: never draws). Fires
    /// *after* the intact response is built, corrupting it the way flaky
    /// 2016 origins and middleboxes did: 5xx substitution, truncation,
    /// broken chunked framing.
    faults: FaultInjector,
}

impl OriginWorld {
    /// Build the world. All server certificates chain to a public root CA
    /// derived from `ca_label`.
    pub fn new(ca_label: &str, rng: SimRng) -> Self {
        OriginWorld {
            ca: CertificateAuthority::new(ca_label),
            rng,
            faults: FaultInjector::disabled(),
        }
    }

    /// Arm the origin-side fault injector with its own labelled fork of
    /// `rng`. A plan of [`FaultPlan::none`] never draws, leaving every
    /// other stream untouched.
    pub fn set_faults(&mut self, plan: FaultPlan, rng: &SimRng) {
        self.faults = FaultInjector::new(plan, rng.fork(rng_labels::WORLD_CHAOS));
    }

    /// Take the ledger of origin-side faults injected so far, resetting
    /// it (the session runner merges this into the trace).
    pub fn take_fault_counts(&mut self) -> FaultCounts {
        self.faults.take_counts()
    }

    /// The public root CA. Devices and the Meddle proxy must trust this.
    pub fn root_ca(&self) -> &CertificateAuthority {
        &self.ca
    }

    /// A trust store containing exactly this world's public root.
    pub fn public_trust(&self) -> TrustStore {
        let mut t = TrustStore::new();
        t.add_root(&self.ca.root);
        t
    }

    /// Byte size for a first-party page/app response, by path hint.
    fn content_size(&mut self, path: &str) -> usize {
        let jitter = self.rng.below(2048) as usize;
        if path.contains("video") || path.contains("stream") {
            180_000 + jitter * 20
        } else if path.contains("page") || path == "/" || path.contains("html") {
            38_000 + jitter * 4
        } else if path.contains("obj") || path.contains("asset") {
            9_000 + jitter * 3
        } else if path.contains("adjs") {
            12_000 + jitter
        } else if path.contains("creative") {
            7_000 + jitter
        } else {
            1_800 + jitter
        }
    }
}

impl OriginServer for OriginWorld {
    fn tls_config(&self, host: &str) -> ServerConfig {
        ServerConfig {
            chain: self.ca.chain_for(host),
            supports_resumption: true,
        }
    }

    fn handle(&mut self, req: &Request, now: SimTime) -> Response {
        let mut resp = self.respond(req, now);
        if let Some(fault) = self.faults.response_fault() {
            match fault {
                ResponseFault::ServerError => resp = degrade::server_error(503),
                ResponseFault::Truncated => degrade::truncate(&mut resp),
                ResponseFault::MalformedChunked => degrade::malform_chunked(&mut resp),
            }
        }
        resp
    }
}

impl OriginWorld {
    /// Build the intact response for `req` (fault injection, when armed,
    /// happens in [`OriginServer::handle`] on top of this).
    fn respond(&mut self, req: &Request, _now: SimTime) -> Response {
        let host = req.url.host.as_str().to_string();
        let path = req.url.path.clone();

        // --- RTB redirect chains -------------------------------------
        // An ad request carrying `rtb=<hops>` bounces to another exchange
        // with the counter decremented, simulating real-time-bidding
        // cookie-sync chains. hops=0 terminates with a creative/pixel.
        let pairs = req.url.query_pairs();
        if let Some(hops) = pairs
            .iter()
            .find(|(k, _)| k == "rtb")
            .and_then(|(_, v)| v.parse::<u32>().ok())
        {
            if hops > 0 {
                let candidates: Vec<&&str> = RTB_EXCHANGES.iter().filter(|e| **e != host).collect();
                let next = candidates[self.rng.below(candidates.len() as u64) as usize];
                let mut location = Url::new(Scheme::Https, *next, "/rtb");
                location.push_query("rtb", &(hops - 1).to_string());
                // Propagate the cookie-sync partner id.
                if let Some((_, sync)) = pairs.iter().find(|(k, _)| k == "sync") {
                    location.push_query("sync", sync);
                }
                let mut resp = Response::redirect(&location);
                // Exchanges drop their own cookie on the way through.
                resp.add_set_cookie(
                    &SetCookie::session("uid", format!("x{:016x}", self.rng.next_u64()))
                        .with_domain(req.url.host.registrable_domain()),
                );
                return resp;
            }
            // Chain terminus: the winning creative.
            let size = self.content_size("creative");
            let mut resp = Response::new(StatusCode::OK);
            resp.set_body(Body::binary(vec![0u8; size], "image/gif"));
            return resp;
        }

        // --- Tracker beacons ------------------------------------------
        if path.contains("beacon")
            || path.contains("collect")
            || path.contains("pixel")
            || path.contains("track")
            || path.contains("impression")
            || path.contains("batch")
        {
            let mut resp = Response::no_content();
            // Trackers set an id cookie on first contact.
            resp.add_set_cookie(
                &SetCookie::session(
                    "_tid",
                    format!("t{:012x}", self.rng.next_u64() & 0xffff_ffff_ffff),
                )
                .with_domain(req.url.host.registrable_domain()),
            );
            return resp;
        }

        // --- Ad creatives ----------------------------------------------
        if path.contains("creative") {
            let size = self.content_size("creative");
            return Response::ok(Body::binary(vec![0u8; size], "image/gif"));
        }

        // --- Ad tag JavaScript (cacheable, ETag-validated) -------------
        if path.contains("adjs") || path.ends_with(".js") {
            let etag = format!("\"{:016x}\"", appvsweb_tlssim::KeyId::derive(&path).0);
            if req.headers.get("If-None-Match") == Some(etag.as_str()) {
                let mut resp = Response::new(StatusCode(304));
                resp.headers.set("ETag", etag);
                return resp;
            }
            let size = self.content_size("adjs");
            let mut resp = Response::ok(Body::binary(vec![b'/'; size], "application/javascript"));
            resp.headers.set("Cache-Control", "public, max-age=600");
            resp.headers.set("ETag", etag);
            return resp;
        }

        // --- First-party page objects (short-lived cache entries) ------
        if path.contains("obj") {
            let etag = format!("\"{:016x}\"", appvsweb_tlssim::KeyId::derive(&path).0);
            if req.headers.get("If-None-Match") == Some(etag.as_str()) {
                let mut resp = Response::new(StatusCode(304));
                resp.headers.set("ETag", etag);
                return resp;
            }
            let size = self.content_size("obj");
            let mut resp = Response::ok(Body::binary(vec![b'.'; size], "application/octet-stream"));
            resp.headers.set("Cache-Control", "public, max-age=15");
            resp.headers.set("ETag", etag);
            return resp;
        }

        // --- First-party login ----------------------------------------
        if path.contains("login") || path.contains("auth") {
            let mut resp = Response::ok(Body::json(r#"{"status":"ok","session":"established"}"#));
            resp.add_set_cookie(&SetCookie::session(
                "session",
                format!("s{:016x}", self.rng.next_u64()),
            ));
            return resp;
        }

        // --- Generic content ------------------------------------------
        let size = self.content_size(&path);
        let content_type = if path.contains("page") || path == "/" {
            "text/html"
        } else if path.contains("api") {
            "application/json"
        } else {
            "application/octet-stream"
        };
        Response::ok(Body::binary(vec![b'.'; size], content_type))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> OriginWorld {
        OriginWorld::new("PublicRoot", SimRng::new(5))
    }

    fn get(url: &str) -> Request {
        Request::get(Url::parse(url).unwrap())
    }

    #[test]
    fn tls_config_covers_any_host() {
        let w = world();
        let cfg = w.tls_config("api.yelp.com");
        assert!(cfg.chain.leaf().unwrap().matches_host("api.yelp.com"));
        assert!(w.public_trust().verify(&cfg.chain, "api.yelp.com", 0));
    }

    #[test]
    fn rtb_chain_redirects_and_terminates() {
        let mut w = world();
        let r1 = w.handle(&get("https://ib.adnxs.com/rtb?rtb=2&sync=abc"), SimTime(0));
        assert!(r1.status.is_redirect());
        let next = r1.redirect_target().unwrap();
        assert_ne!(
            next.host.as_str(),
            "ib.adnxs.com",
            "chain must hop to a different exchange"
        );
        assert!(next.query.as_deref().unwrap().contains("rtb=1"));
        assert!(next.query.as_deref().unwrap().contains("sync=abc"));
        // Follow to terminus.
        let r2 = w.handle(&get(&next.to_string()), SimTime(1));
        let last = r2.redirect_target().unwrap();
        let r3 = w.handle(&get(&last.to_string()), SimTime(2));
        assert!(r3.status.is_success());
        assert!(r3.body.len() > 1000, "chain ends with the winning creative");
    }

    #[test]
    fn beacons_get_no_content_plus_cookie() {
        let mut w = world();
        let resp = w.handle(&get("https://z.moatads.com/beacon?uid=1"), SimTime(0));
        assert_eq!(resp.status, StatusCode::NO_CONTENT);
        assert_eq!(resp.set_cookies().len(), 1);
    }

    #[test]
    fn login_sets_session_cookie() {
        let mut w = world();
        let resp = w.handle(&get("https://grubhub.com/login"), SimTime(0));
        assert!(resp.status.is_success());
        assert!(resp
            .set_cookies()
            .iter()
            .any(|c| c.cookie.name == "session"));
    }

    #[test]
    fn content_sizes_by_kind() {
        let mut w = world();
        let page = w
            .handle(&get("https://cnn.com/page/1"), SimTime(0))
            .body
            .len();
        let asset = w
            .handle(&get("https://cnn.com/obj/7.png"), SimTime(0))
            .body
            .len();
        let video = w
            .handle(&get("https://streamflix.example/video/seg1"), SimTime(0))
            .body
            .len();
        assert!(video > page && page > asset);
    }
}
