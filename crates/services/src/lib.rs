//! # appvsweb-services
//!
//! The synthetic world of online services for the `appvsweb` reproduction
//! of *"Should You Use the App for That?"* (IMC 2016).
//!
//! The original study manually tested the iOS-app, Android-app, and
//! mobile-Web versions of **50 live services**. Live 2016 services are
//! gone, so this crate rebuilds them as *behaviour models*: each
//! [`catalog::ServiceSpec`] describes a service's first-party domains,
//! login requirements, embedded tracker SDKs (app) and ad tags + RTB
//! chains (Web), and which PII each side transmits where. The
//! [`session`] module turns a spec into four minutes of simulated
//! interaction traffic through the Meddle tunnel, and [`world`]
//! implements every origin server (first parties, tracker endpoints, ad
//! exchanges) the traffic talks to.
//!
//! **Calibration.** Every concrete fact the paper states is encoded in
//! the catalog: the named services (The Weather Channel, Yelp, BBC News,
//! Accuweather, Starbucks, Grubhub, JetBlue, Priceline, The Food Network,
//! NCAA Sports, All Recipes Dinner Spinner, CNN), the password
//! case studies of §4.2 (Grubhub→taplytics, JetBlue→usablenet, Food
//! Network / NCAA→Gigya), the category composition of Table 1, the
//! exclusion of pinned services (Facebook, Twitter) and of services
//! without equivalent Web functionality (Instagram, Pandora), and the
//! A&A domains of Table 2. Services the paper does not name are filled
//! in with category-typical behaviour. The quantitative *shapes* of the
//! paper's figures emerge from these behaviours rather than being
//! hard-coded: Web pages pull tens of A&A domains and open far more
//! connections; apps embed one or two SDKs that receive device
//! identifiers no Web page can read.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod session;
pub mod trackers;
pub mod world;

pub use catalog::{Catalog, Medium, ServiceCategory, ServiceSpec};
pub use session::{RetryPolicy, SessionConfig, SessionRunner};
pub use trackers::{PayloadStyle, TrackerSpec};
pub use world::OriginWorld;
