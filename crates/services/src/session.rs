//! Session simulation: four minutes of manual interaction (§3.2).
//!
//! A [`SessionRunner`] reproduces the study's test procedure for one
//! (service, OS, medium) cell: install/open the app or browse to the
//! site, approve permission prompts, log in with the pre-created
//! account, then use the service for the session duration. The traffic
//! that interaction generates — first-party API calls, SDK beacons, ad
//! tags, RTB redirect chains, OS background chatter — flows through the
//! Meddle tunnel, which captures the [`Trace`] the analysis pipeline
//! consumes.
//!
//! Everything is scheduled on a deterministic event queue; the same
//! `(spec, os, medium, seed)` cell always produces the identical trace.

use crate::catalog::{Exclusion, Medium, ServiceSpec};
use crate::trackers::{self, PayloadStyle, TrackerSpec};
use crate::world::OriginWorld;
use appvsweb_httpsim::cache::{BrowserCache, CacheAdvice};
use appvsweb_httpsim::codec::base64_encode;
use appvsweb_httpsim::compress::gzip_compress;
use appvsweb_httpsim::url::Scheme;
use appvsweb_httpsim::{Body, CookieJar, Request, Response, Url};
use appvsweb_mitm::{ExchangeError, Meddle, OriginServer, ReusePolicy, Trace};
use appvsweb_netsim::{rng_labels, EventQueue, FaultPlan, Os, SimDuration, SimRng, SimTime};
use appvsweb_pii::{GroundTruth, PiiType};
use appvsweb_tlssim::{PinSet, TrustStore};

/// Session parameters.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Interaction time (the paper uses 4 minutes; its §3.2 control uses
    /// 10 for a subset).
    pub duration: SimDuration,
    /// Experiment seed.
    pub seed: u64,
    /// Apply the §3.2 background-traffic filter before returning.
    pub strip_background: bool,
    /// Fault plan for the session's network and origins. The default
    /// ([`FaultPlan::none`]) never draws from any RNG stream, so the
    /// golden-path trace is byte-identical to a build without chaos.
    pub faults: FaultPlan,
    /// How the simulated client retries transient network failures.
    pub retry: RetryPolicy,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            duration: SimDuration::from_mins(4),
            seed: 2016,
            strip_background: true,
            faults: FaultPlan::none(),
            retry: RetryPolicy::standard(),
        }
    }
}

/// Client-side retry behaviour: capped exponential backoff with jitter,
/// bounded per attempt and per session. Mirrors what mobile HTTP stacks
/// of the era (OkHttp, NSURLSession) did for idempotent requests.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single backoff delay.
    pub max_delay_ms: u64,
    /// Fraction of the delay added as seeded random jitter (0.0 = none).
    pub jitter: f64,
    /// Retry budget for the whole session; once spent, failures are
    /// surfaced immediately. Prevents retry storms under heavy plans.
    pub session_budget: u32,
}

impl RetryPolicy {
    /// The default client: 3 attempts, 250 ms base doubling to 4 s, 20%
    /// jitter, at most 64 retries per session.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 250,
            max_delay_ms: 4_000,
            jitter: 0.2,
            session_budget: 64,
        }
    }

    /// Never retry: every transient failure surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
            jitter: 0.0,
            session_budget: 0,
        }
    }

    /// Backoff before retry number `attempt` (0-based). Draws from `rng`
    /// only when jitter applies — the golden path, which never retries,
    /// never touches the stream.
    pub fn backoff_ms(&self, attempt: u32, rng: &mut SimRng) -> u64 {
        let base = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms);
        let span = (base as f64 * self.jitter) as u64;
        if span == 0 {
            base
        } else {
            base + rng.below(span + 1)
        }
    }
}

appvsweb_json::impl_json!(struct RetryPolicy {
    max_attempts, base_delay_ms, max_delay_ms, jitter, session_budget
});

/// One test cell: a service exercised via one medium on one OS.
pub struct SessionRunner<'a> {
    /// Service under test.
    pub spec: &'a ServiceSpec,
    /// Test phone OS.
    pub os: Os,
    /// App or Web.
    pub medium: Medium,
}

#[derive(Clone, Debug)]
enum Action {
    Login,
    ProfileSync,
    ApiCall(u32),
    SdkInit(usize),
    Beacon(usize, u32),
    PageView(u32),
    Background(u32),
}

/// The session's network stack: the tunnel, the origin world, and the
/// client retry loop wrapped behind one `exchange` call. Transient
/// failures (timeouts, resets, aborted handshakes, SERVFAIL) are retried
/// with backoff; hard failures (pin violations, untrusted chains,
/// NXDOMAIN) surface immediately.
// lint:allow(D3x) the jitter stream is forked per session and NetCtx never outlives its cell
struct NetCtx<'a> {
    meddle: &'a mut Meddle,
    world: &'a mut OriginWorld,
    trust: &'a TrustStore,
    pins: PinSet,
    retry: RetryPolicy,
    /// Jitter stream; drawn from only when a retry actually happens, so
    /// the golden path never consumes it.
    rng: SimRng,
    retries_spent: u32,
}

impl NetCtx<'_> {
    /// Exchange with the session's pin set (the service's own pins).
    fn exchange(
        &mut self,
        req: Request,
        now: SimTime,
        reuse: ReusePolicy,
    ) -> Result<Response, ExchangeError> {
        self.exchange_impl(req, now, reuse, false)
    }

    /// Exchange with no pins (OS background services pin nothing).
    fn exchange_unpinned(
        &mut self,
        req: Request,
        now: SimTime,
        reuse: ReusePolicy,
    ) -> Result<Response, ExchangeError> {
        self.exchange_impl(req, now, reuse, true)
    }

    fn exchange_impl(
        &mut self,
        req: Request,
        now: SimTime,
        reuse: ReusePolicy,
        unpinned: bool,
    ) -> Result<Response, ExchangeError> {
        let pins = if unpinned {
            PinSet::none()
        } else {
            self.pins.clone()
        };
        let mut at = now;
        let mut attempt = 0u32;
        loop {
            match self
                .meddle
                .exchange(self.trust, &pins, self.world, req.clone(), at, reuse)
            {
                Ok(resp) => return Ok(resp),
                Err(err) => {
                    attempt += 1;
                    if !err.retriable()
                        || attempt >= self.retry.max_attempts
                        || self.retries_spent >= self.retry.session_budget
                    {
                        return Err(err);
                    }
                    self.retries_spent += 1;
                    appvsweb_obs::counter!("session.retries");
                    appvsweb_obs::event!("session.retry", "attempt={attempt} after {err:?}");
                    let backoff = self.retry.backoff_ms(attempt - 1, &mut self.rng);
                    appvsweb_obs::histogram!("session.backoff_ms", backoff);
                    at += SimDuration(backoff);
                }
            }
        }
    }
}

impl SessionRunner<'_> {
    /// Run the session and return the captured trace.
    pub fn run(
        &self,
        meddle: &mut Meddle,
        world: &mut OriginWorld,
        device_trust: &TrustStore,
        truth: &GroundTruth,
        cfg: &SessionConfig,
    ) -> Trace {
        let mut rng =
            SimRng::new(cfg.seed).fork(&rng_labels::session(self.spec.id, self.os, self.medium));
        appvsweb_obs::stamp(0);
        let _span = appvsweb_obs::span!(
            "session.run",
            "{}/{:?}/{:?}",
            self.spec.id,
            self.os,
            self.medium
        );
        let end = SimTime::ZERO + cfg.duration;
        let mut queue: EventQueue<Action> = EventQueue::new();
        let mut jar = CookieJar::new(); // private mode: fresh, discarded after
        let mut cache = BrowserCache::new(); // cold cache per session

        // Pinned apps refuse the proxy's forged chains for their own
        // hosts (criterion 4 exclusions: Facebook, Twitter).
        let pins = if self.spec.excluded == Some(Exclusion::CertificatePinning) {
            // lint:allow(R1) reviewed invariant: the world CA always issues a non-empty chain
            let leaf = world.tls_config(&self.api_host()).chain.leaf().unwrap().key;
            PinSet::of([leaf])
        } else {
            PinSet::none()
        };

        // Arm the chaos dice. With the default none-plan these injectors
        // never draw, and the trace is identical to a fault-free build.
        meddle.set_faults(cfg.faults.clone(), &rng);
        world.set_faults(cfg.faults.clone(), &rng);
        let mut net = NetCtx {
            meddle: &mut *meddle,
            world: &mut *world,
            trust: device_trust,
            pins,
            retry: cfg.retry.clone(),
            rng: rng.fork(rng_labels::RETRY),
            retries_spent: 0,
        };

        // ---- Schedule the interaction -------------------------------
        if self.spec.requires_login {
            queue.schedule(SimTime(1_500), Action::Login);
        }
        match self.medium {
            Medium::App => {
                for (i, _) in self.spec.app.trackers.iter().enumerate() {
                    queue.schedule(SimTime(800 + 150 * i as u64), Action::SdkInit(i));
                }
                queue.schedule(SimTime(2_500), Action::ApiCall(0));
                if !self.app_first_party_pii().is_empty() {
                    queue.schedule(SimTime(5_000), Action::ProfileSync);
                }
            }
            Medium::Web => {
                queue.schedule(SimTime(1_000), Action::PageView(0));
                if !self.spec.web.first_party_pii.is_empty() && self.web_pii_enabled() {
                    queue.schedule(SimTime(9_000), Action::ProfileSync);
                }
            }
        }
        // OS background chatter every ~35 s (exercises the §3.2 filter).
        queue.schedule(SimTime(4_000), Action::Background(0));

        // ---- Event loop ----------------------------------------------
        while let Some((now, action)) = queue.pop() {
            if now > end {
                break;
            }
            appvsweb_obs::stamp(now.as_millis());
            appvsweb_obs::counter!("session.actions");
            appvsweb_obs::event!("session.action", "{action:?}");
            match action {
                Action::Login => self.do_login(&mut net, truth, &mut jar, now),
                Action::ProfileSync => self.do_profile_sync(&mut net, truth, &mut jar, now),
                Action::ApiCall(n) => {
                    self.do_api_call(&mut net, truth, n, now);
                    queue.schedule(
                        now + SimDuration(self.spec.app.api_period_ms.max(1_000)),
                        Action::ApiCall(n + 1),
                    );
                }
                Action::SdkInit(i) => {
                    let tracker = trackers::by_id(self.spec.app.trackers[i]);
                    self.do_beacon(&mut net, truth, tracker, 0, now);
                    if tracker.beacon_period_ms > 0 {
                        queue.schedule(
                            now + SimDuration(tracker.beacon_period_ms),
                            Action::Beacon(i, 1),
                        );
                    }
                }
                Action::Beacon(i, n) => {
                    let tracker = trackers::by_id(self.spec.app.trackers[i]);
                    self.do_beacon(&mut net, truth, tracker, n, now);
                    queue.schedule(
                        now + SimDuration(tracker.beacon_period_ms.max(250)),
                        Action::Beacon(i, n + 1),
                    );
                }
                Action::PageView(n) => {
                    self.do_page_view(&mut net, truth, &mut jar, &mut cache, &mut rng, n, now);
                    queue.schedule(
                        now + SimDuration(self.spec.web.page_period_ms.max(4_000)),
                        Action::PageView(n + 1),
                    );
                }
                Action::Background(n) => {
                    let hosts = self.os.background_hosts();
                    let host = hosts[(n as usize) % hosts.len()];
                    let url = Url::new(Scheme::Https, host, "/sync");
                    let req = Request::get(url).with_user_agent(self.user_agent());
                    let _ = net.exchange_unpinned(req, now, ReusePolicy::app());
                    queue.schedule(now + SimDuration(35_000), Action::Background(n + 1));
                }
            }
        }

        let retries = net.retries_spent;
        let mut trace = meddle.finish_session(end);
        trace.faults.merge(&world.take_fault_counts());
        trace.retries = retries as u64;
        if cfg.strip_background {
            appvsweb_mitm::filter::strip_background(&mut trace, self.os, &[]);
        }
        trace
    }

    // ---- request builders --------------------------------------------

    fn api_host(&self) -> String {
        format!("api.{}", self.spec.primary_domain())
    }

    fn www_host(&self) -> String {
        format!("www.{}", self.spec.primary_domain())
    }

    fn user_agent(&self) -> String {
        match self.medium {
            Medium::App => format!(
                "{}/4.1 ({}; {})",
                self.spec.name.replace(' ', ""),
                self.os,
                self.os.device_model()
            ),
            Medium::Web => self.os.browser_user_agent().to_string(),
        }
    }

    /// Whether the Web page exposes PII on this OS (the `pii_ios_only`
    /// calibration knob for Table 1's Android/iOS web gap).
    fn web_pii_enabled(&self) -> bool {
        !(self.spec.web.pii_ios_only && self.os == Os::Android)
    }

    /// First-party PII for the app on this OS (base + per-OS extras).
    fn app_first_party_pii(&self) -> Vec<PiiType> {
        let mut v: Vec<PiiType> = self.spec.app.first_party_pii.to_vec();
        match self.os {
            Os::Android => v.extend_from_slice(self.spec.app.android_only_pii),
            Os::Ios => v.extend_from_slice(self.spec.app.ios_only_pii),
        }
        v
    }

    fn do_login(&self, net: &mut NetCtx, truth: &GroundTruth, jar: &mut CookieJar, now: SimTime) {
        // Credentials to the first party over HTTPS: NOT a leak by rule.
        let url = Url::new(Scheme::Https, self.www_host(), "/account/login");
        let body = Body::form(&[("email", &truth.email), ("password", &truth.password)]);
        let req = Request::post(url, body).with_user_agent(self.user_agent());
        if let Ok(resp) = net.exchange(req, now, self.reuse_policy()) {
            for sc in resp.set_cookies() {
                jar.store(&self.www_host(), sc);
            }
        }

        // §4.2 case studies: the password also goes to a third party
        // (over HTTPS) — taplytics/usablenet/gigya.
        let password_sink = match self.medium {
            Medium::App => self.spec.app.password_to,
            Medium::Web => self.spec.web.password_to,
        };
        if let Some(tracker_id) = password_sink {
            let tracker = trackers::by_id(tracker_id);
            let url = Url::new(Scheme::Https, tracker.primary_host(), "/v1/auth/track");
            let body = Body::form(&[
                ("login", &truth.email),
                ("password", &truth.password),
                ("svc", self.spec.id),
            ]);
            let req = Request::post(url, body).with_user_agent(self.user_agent());
            let _ = net.exchange(req, now, ReusePolicy::one_shot());
        }
    }

    fn do_profile_sync(
        &self,
        net: &mut NetCtx,
        truth: &GroundTruth,
        jar: &mut CookieJar,
        now: SimTime,
    ) {
        let pii = match self.medium {
            Medium::App => self.app_first_party_pii(),
            Medium::Web => self.spec.web.first_party_pii.to_vec(),
        };
        if pii.is_empty() {
            return;
        }
        let host = match self.medium {
            Medium::App => self.api_host(),
            Medium::Web => self.www_host(),
        };
        let mut params = vec![("action".to_string(), "profile_save".to_string())];
        for t in pii {
            params.extend(pii_params(t, truth, self.os, None));
        }
        let pairs: Vec<(&str, &str)> = params
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let url = Url::new(Scheme::Https, host.clone(), "/account/profile");
        let mut req = Request::post(url, Body::form(&pairs)).with_user_agent(self.user_agent());
        if let Some(cookie) = jar.cookie_header(&host, "/account/profile", true) {
            req.headers.set("Cookie", cookie);
        }
        let _ = net.exchange(req, now, self.reuse_policy());
    }

    fn do_api_call(&self, net: &mut NetCtx, truth: &GroundTruth, n: u32, now: SimTime) {
        // Every fourth call on a sloppy API goes over plaintext HTTP —
        // that is how "encrypted-looking" apps still leak to eavesdroppers.
        let plaintext = self.spec.app.plaintext_api && n % 4 == 3;
        let scheme = if plaintext {
            Scheme::Http
        } else {
            Scheme::Https
        };
        // Endpoints follow the service's domain: a weather app polls
        // forecasts, a shop browses products, a news app pulls articles.
        let endpoint = match self.spec.category {
            crate::catalog::ServiceCategory::Weather => format!("/api/v2/forecast/{n}"),
            crate::catalog::ServiceCategory::News => format!("/api/v2/articles/{n}"),
            crate::catalog::ServiceCategory::Shopping => format!("/api/v2/products/{n}"),
            crate::catalog::ServiceCategory::Music => format!("/api/v2/stream/{n}"),
            crate::catalog::ServiceCategory::Entertainment => format!("/api/v2/video/{n}"),
            crate::catalog::ServiceCategory::Travel => format!("/api/v2/fares/{n}"),
            crate::catalog::ServiceCategory::Lifestyle => format!("/api/v2/places/{n}"),
            crate::catalog::ServiceCategory::Education => format!("/api/v2/lessons/{n}"),
            crate::catalog::ServiceCategory::Social => format!("/api/v2/feed/{n}"),
            crate::catalog::ServiceCategory::Business => format!("/api/v2/boards/{n}"),
        };
        let mut url = Url::new(scheme, self.api_host(), endpoint);
        // Location-aware apps put coordinates on their own API calls.
        if self.spec.app.requests_location {
            if let Some((lat, lon)) = truth.gps_at_precision(4) {
                url.push_query("lat", &lat);
                url.push_query("lon", &lon);
            }
        }
        let req = Request::get(url).with_user_agent(self.user_agent());
        let _ = net.exchange(req, now, self.reuse_policy());
    }

    // lint:allow(T1) the simulated tracker beacon IS the leak under study; mitm observes it at the capture point
    fn do_beacon(
        &self,
        net: &mut NetCtx,
        truth: &GroundTruth,
        tracker: &TrackerSpec,
        beacon_index: u32,
        now: SimTime,
    ) {
        let init = beacon_index == 0;
        let mut params: Vec<(String, String)> = vec![
            ("sdk".into(), format!("{}-android-ios-2.9", tracker.id)),
            ("ev".into(), if init { "init" } else { "hb" }.into()),
        ];
        // SDK chattiness is per-tracker: some send the identifier once at
        // init, others attach PII to every heartbeat (the Table 2 leak
        // averages span 0.2 to 517 per service because of exactly this).
        let carries_pii = match tracker.pii_every_n {
            0 => init,
            n => beacon_index.is_multiple_of(n),
        };
        if carries_pii {
            for &t in tracker.app_collects {
                if !self.app_allows(t) {
                    continue;
                }
                // The hardware model never changes: SDKs report it once,
                // at init (keeps Table 3's Device-Name leak averages at
                // the paper's ~2.7 rather than hundreds).
                if t == PiiType::DeviceInfo && !init {
                    continue;
                }
                params.extend(pii_params(t, truth, self.os, Some(tracker.id)));
            }
        }
        let host = tracker.hosts[now.as_millis() as usize % tracker.hosts.len()];
        let scheme = if tracker.plaintext {
            Scheme::Http
        } else {
            Scheme::Https
        };
        let req = build_payload(scheme, host, tracker.style, &params, &self.user_agent());
        let _ = net.exchange(req, now, ReusePolicy::app());
        // Ad-serving SDKs pull a creative with each refresh — the bulk of
        // app-side A&A bytes (Fig. 1c's positive tail).
        if tracker.creative_bytes > 0 {
            let url = Url::new(scheme, host, format!("/creative/{beacon_index}"));
            let req = Request::get(url).with_user_agent(self.user_agent());
            let _ = net.exchange(req, now, ReusePolicy::app());
        }
    }

    /// Platform/permission gate for SDK data access.
    fn app_allows(&self, t: PiiType) -> bool {
        match t {
            PiiType::UniqueId | PiiType::DeviceInfo => true,
            PiiType::Location => self.spec.app.requests_location && truth_has_gps(),
            PiiType::Email | PiiType::Gender | PiiType::Name | PiiType::Username => {
                self.spec.app.shares_profile_with_sdks
            }
            _ => false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    // lint:allow(T1) simulated page-view transmissions carry PII by design; mitm observes them at the capture point
    fn do_page_view(
        &self,
        net: &mut NetCtx,
        truth: &GroundTruth,
        jar: &mut CookieJar,
        cache: &mut BrowserCache,
        rng: &mut SimRng,
        n: u32,
        now: SimTime,
    ) {
        let www = self.www_host();
        let plaintext_page = self.spec.web.plaintext_site && n % 2 == 1;
        let scheme = if plaintext_page {
            Scheme::Http
        } else {
            Scheme::Https
        };

        // 1. The page itself. Sites that key content on location put it
        // in the page URL — over HTTP on plaintext sites, a textbook leak.
        let mut page_url = Url::new(scheme, www.clone(), format!("/page/{n}"));
        if self.web_pii_enabled() && self.spec.web.exposes.contains(&PiiType::Location) {
            if let Some((lat, lon)) = truth.gps_at_precision(3) {
                page_url.push_query("loc", &format!("{lat},{lon}"));
            }
        }
        let mut req = Request::get(page_url).with_user_agent(self.user_agent());
        if let Some(cookie) = jar.cookie_header(&www, "/", scheme == Scheme::Https) {
            req.headers.set("Cookie", cookie);
        }
        if let Ok(resp) = net.exchange(req, now, ReusePolicy::browser()) {
            for sc in resp.set_cookies() {
                jar.store(&www, sc);
            }
        }

        // 2. First-party content objects (batched 4 per fetch; shared
        // assets recur across pages, so the browser cache serves repeats
        // fresh or via ETag revalidation).
        let fetches = (self.spec.web.objects_per_page as usize).div_ceil(4);
        for i in 0..fetches {
            let url = Url::new(Scheme::Https, www.clone(), format!("/obj/{i}"));
            let url_str = url.to_string();
            let advice = cache.advise(&url_str, now.as_millis());
            if advice == CacheAdvice::Fresh {
                continue; // served locally, no network traffic
            }
            let mut req = Request::get(url)
                .with_user_agent(self.user_agent())
                .with_referer(format!("https://{www}/page/{n}"));
            cache.apply(&mut req, &advice);
            if let Ok(resp) = net.exchange(req, now, ReusePolicy::browser()) {
                cache.store(&url_str, &resp, now.as_millis());
            }
        }

        // 3. Ad tags + beacons. Only the first two tags whose collection
        // set intersects the page's data layer actually receive PII (data
        // layer wiring is per-integration work; the long tail of tags gets
        // cookies only), and most tags receive it on the landing pages
        // only. This is what keeps web-side leak counts per tracker small
        // (GA web avg ≈ 2.7 in Table 2) while web *contact* counts stay
        // large.
        let mut pii_tags_remaining = 3u32;
        for id in self.spec.web.ad_networks {
            let tracker = trackers::by_id(id);
            let host = tracker.primary_host();
            // Tag JavaScript: requested every page, but the browser cache
            // answers repeats (max-age=600 outlives the session).
            {
                let url = Url::new(Scheme::Https, host, format!("/adjs/{}.js", tracker.id));
                let url_str = url.to_string();
                let advice = cache.advise(&url_str, now.as_millis());
                if advice != CacheAdvice::Fresh {
                    let mut req = Request::get(url)
                        .with_user_agent(self.user_agent())
                        .with_referer(format!("https://{www}/page/{n}"));
                    cache.apply(&mut req, &advice);
                    if let Ok(resp) = net.exchange(req, now, ReusePolicy::one_shot()) {
                        cache.store(&url_str, &resp, now.as_millis());
                    }
                }
            }
            // Beacon with whatever the page exposes AND the tag collects.
            let mut params: Vec<(String, String)> = vec![
                ("v".into(), "1".into()),
                ("dl".into(), format!("https://{www}/page/{n}")),
            ];
            let tag_matches = tracker
                .web_collects
                .iter()
                .any(|t| self.spec.web.exposes.contains(t));
            let page_eligible = n < 2 || tracker.web_pii_all_pages;
            if self.web_pii_enabled() && tag_matches && page_eligible && pii_tags_remaining > 0 {
                if !tracker.web_pii_all_pages {
                    pii_tags_remaining -= 1;
                }
                for &t in tracker.web_collects {
                    if self.spec.web.exposes.contains(&t) {
                        params.extend(pii_params(t, truth, self.os, Some(tracker.id)));
                    }
                }
            }
            let scheme = if tracker.plaintext {
                Scheme::Http
            } else {
                Scheme::Https
            };
            let mut req = build_payload(scheme, host, tracker.style, &params, &self.user_agent());
            if let Some(cookie) = jar.cookie_header(host, "/", scheme == Scheme::Https) {
                req.headers.set("Cookie", cookie);
            }
            if let Ok(resp) = net.exchange(req, now, ReusePolicy::one_shot()) {
                for sc in resp.set_cookies() {
                    jar.store(host, sc);
                }
            }
        }

        // 4. RTB redirect chains ("browsers redirect through several more
        // [trackers] via real-time bidding", §1).
        if self.spec.web.rtb_depth > 0 {
            let exchanges: Vec<&TrackerSpec> = self
                .spec
                .web
                .ad_networks
                .iter()
                .map(|id| trackers::by_id(id))
                .filter(|t| t.rtb_exchange)
                .collect();
            // Three ad slots auction per page; the exchange rotation walks
            // the tag list across pages.
            let slots = exchanges.len().min(3);
            for k in 0..slots {
                let tracker = exchanges[(n as usize * slots + k) % exchanges.len()];
                let mut url = Url::new(Scheme::Https, tracker.primary_host(), "/rtb");
                url.push_query("rtb", &self.spec.web.rtb_depth.to_string());
                url.push_query("sync", &format!("c{:08x}", rng.next_u64() as u32));
                let _ = k;
                let mut hops = 0u8;
                let mut next = url;
                // Follow the 302 chain, one fresh connection per hop.
                loop {
                    let req = Request::get(next.clone())
                        .with_user_agent(self.user_agent())
                        .with_referer(format!("https://{www}/page/{n}"));
                    let Ok(resp) = net.exchange(req, now, ReusePolicy::one_shot()) else {
                        break;
                    };
                    for sc in resp.set_cookies() {
                        jar.store(next.host.as_str(), sc);
                    }
                    match resp.redirect_target() {
                        Some(target) if hops < 8 => {
                            hops += 1;
                            next = target;
                        }
                        _ => break,
                    }
                }
            }
        }
    }

    fn reuse_policy(&self) -> ReusePolicy {
        match self.medium {
            Medium::App => ReusePolicy::app(),
            Medium::Web => ReusePolicy::browser(),
        }
    }
}

/// Session-level constant: the test phones always have a GPS fix.
fn truth_has_gps() -> bool {
    true
}

/// Render the PII of type `t` as transmission parameters, using the
/// encoding conventions of the receiving tracker (`sink`).
// lint:allow(T1) renders PII into simulated tracker payloads on purpose; the mitm capture path audits the result
fn pii_params(
    t: PiiType,
    truth: &GroundTruth,
    os: Os,
    sink: Option<&str>,
) -> Vec<(String, String)> {
    use appvsweb_pii::encode::Encoding;
    // Trackers known for hashed-email matching.
    const EMAIL_HASHERS: &[&str] = &["criteo", "demdex", "thebrighttag", "krxd"];
    match t {
        PiiType::UniqueId => {
            let mut out = Vec::new();
            for (label, value) in &truth.device_ids {
                let (key, val) = match (os, label.as_str()) {
                    (Os::Android, "ad_id") => ("gaid", value.clone()),
                    (Os::Android, "android_id") => ("android_id", value.clone()),
                    (Os::Android, "imei") => ("imei", value.clone()),
                    (Os::Android, "mac") => ("wifi_mac", Encoding::StripSeparators.apply(value)),
                    (Os::Ios, "ad_id") => ("idfa", value.to_ascii_uppercase()),
                    (Os::Ios, "vendor_id") => ("idfv", value.to_ascii_uppercase()),
                    _ => continue,
                };
                out.push((key.to_string(), val));
            }
            out
        }
        PiiType::DeviceInfo => vec![("device_model".into(), truth.device_model.clone())],
        PiiType::Location => match truth.gps_at_precision(4) {
            Some((lat, lon)) => vec![("lat".into(), lat), ("lon".into(), lon)],
            None => vec![("zip".into(), truth.zip.clone())],
        },
        PiiType::Email => {
            let hashed = sink.is_some_and(|s| EMAIL_HASHERS.contains(&s));
            if hashed {
                vec![(
                    "em".into(),
                    appvsweb_pii::hash::md5_hex(truth.email.to_ascii_lowercase().as_bytes()),
                )]
            } else {
                vec![("email".into(), truth.email.clone())]
            }
        }
        PiiType::Gender => vec![("gender".into(), truth.gender.clone())],
        PiiType::Name => vec![
            ("firstname".into(), truth.first_name.clone()),
            ("lastname".into(), truth.last_name.clone()),
        ],
        PiiType::Username => vec![("username".into(), truth.username.clone())],
        PiiType::Password => vec![("password".into(), truth.password.clone())],
        PiiType::PhoneNumber => vec![("phone".into(), truth.phone.clone())],
        PiiType::Birthday => vec![("dob".into(), truth.birthday.clone())],
    }
}

/// Build a beacon request in the tracker's payload style.
fn build_payload(
    scheme: Scheme,
    host: &str,
    style: PayloadStyle,
    params: &[(String, String)],
    user_agent: &str,
) -> Request {
    let pairs: Vec<(&str, &str)> = params
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let req = match style {
        PayloadStyle::Query => {
            let url = Url::new(scheme, host, "/pixel").with_query(&pairs);
            Request::get(url)
        }
        PayloadStyle::Form => {
            let url = Url::new(scheme, host, "/track");
            Request::post(url, Body::form(&pairs))
        }
        PayloadStyle::Json => {
            let url = Url::new(scheme, host, "/collect");
            let fields: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("\"{k}\":\"{v}\""))
                .collect();
            Request::post(url, Body::json(format!("{{{}}}", fields.join(","))))
        }
        PayloadStyle::Base64Json => {
            let url = Url::new(scheme, host, "/batch");
            let fields: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("\"{k}\":\"{v}\""))
                .collect();
            let json = format!("{{{}}}", fields.join(","));
            Request::post(
                url,
                Body::form(&[("data", base64_encode(json.as_bytes()).as_str())]),
            )
        }
        PayloadStyle::GzipJson => {
            let url = Url::new(scheme, host, "/batch");
            let fields: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("\"{k}\":\"{v}\""))
                .collect();
            let json = format!("{{{}}}", fields.join(","));
            let mut req = Request::post(
                url,
                Body::binary(gzip_compress(json.as_bytes()), "application/json"),
            );
            req.headers.set("Content-Encoding", "gzip");
            req
        }
    };
    req.with_user_agent(user_agent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use appvsweb_mitm::MeddleConfig;
    use appvsweb_netsim::Device;

    fn testbed() -> (Meddle, OriginWorld, TrustStore) {
        let rng = SimRng::new(2016);
        let world = OriginWorld::new("PublicRoot", rng.fork("world"));
        let meddle = Meddle::new(MeddleConfig::default(), world.public_trust(), &rng);
        let mut device_trust = world.public_trust();
        device_trust.add_root(&meddle.ca().root);
        (meddle, world, device_trust)
    }

    fn truth_for(os: Os) -> GroundTruth {
        let mut rng = SimRng::new(2016);
        let device = Device::factory_reset(os, &mut rng);
        let ids: Vec<(&str, &str)> = device.ids.labelled();
        GroundTruth::synthetic(7).with_device(os.device_model(), &ids, device.gps)
    }

    fn run(id: &str, os: Os, medium: Medium) -> Trace {
        let catalog = Catalog::paper();
        let spec = catalog.get(id).unwrap();
        let (mut meddle, mut world, trust) = testbed();
        let runner = SessionRunner { spec, os, medium };
        runner.run(
            &mut meddle,
            &mut world,
            &trust,
            &truth_for(os),
            &SessionConfig::default(),
        )
    }

    #[test]
    fn app_session_produces_flows_and_transactions() {
        let trace = run("weather-channel", Os::Android, Medium::App);
        assert!(!trace.connections.is_empty());
        assert!(!trace.transactions.is_empty());
        // SDK beacons reached tracker hosts.
        assert!(trace.hosts().iter().any(|h| h.contains("flurry")));
        // All decrypted (no pinning in this service).
        assert!(trace.connections.iter().all(|c| c.decrypted));
    }

    #[test]
    fn web_session_contacts_many_more_aa_hosts() {
        let app = run("accuweather", Os::Android, Medium::App);
        let web = run("accuweather", Os::Android, Medium::Web);
        // The Accuweather headline case: few third parties in-app,
        // tens of A&A domains on the Web.
        assert!(web.hosts().len() > app.hosts().len() + 10);
        assert!(web.connections.len() > app.connections.len());
    }

    #[test]
    fn sessions_are_deterministic() {
        let a = run("yelp", Os::Ios, Medium::Web);
        let b = run("yelp", Os::Ios, Medium::Web);
        assert_eq!(a.connections.len(), b.connections.len());
        assert_eq!(a.transactions.len(), b.transactions.len());
        assert_eq!(a.total_bytes(), b.total_bytes());
    }

    #[test]
    fn background_traffic_is_stripped_by_default() {
        let trace = run("bbc-news", Os::Android, Medium::App);
        assert!(
            !trace
                .hosts()
                .iter()
                .any(|h| h.contains("google.com") || h.contains("googleapis")),
            "OS background hosts must be filtered"
        );
    }

    #[test]
    fn background_traffic_kept_when_unfiltered() {
        let catalog = Catalog::paper();
        let spec = catalog.get("bbc-news").unwrap();
        let (mut meddle, mut world, trust) = testbed();
        let runner = SessionRunner {
            spec,
            os: Os::Ios,
            medium: Medium::App,
        };
        let cfg = SessionConfig {
            strip_background: false,
            ..Default::default()
        };
        let trace = runner.run(&mut meddle, &mut world, &trust, &truth_for(Os::Ios), &cfg);
        assert!(trace.hosts().iter().any(|h| h.contains("apple.com")));
    }

    #[test]
    fn pinned_service_yields_opaque_first_party_traffic() {
        let trace = run("facebook-app", Os::Android, Medium::App);
        let fp: Vec<_> = trace
            .connections
            .iter()
            .filter(|c| c.host.contains("facebook.com"))
            .collect();
        assert!(!fp.is_empty());
        assert!(
            fp.iter().all(|c| !c.decrypted),
            "pinned traffic must stay opaque"
        );
        assert!(
            !trace
                .transactions
                .iter()
                .any(|t| t.host.contains("facebook.com")),
            "no plaintext visibility for pinned flows"
        );
    }

    #[test]
    fn grubhub_app_sends_password_to_taplytics() {
        let trace = run("grubhub", Os::Android, Medium::App);
        let taplytics: Vec<_> = trace
            .transactions
            .iter()
            .filter(|t| t.host.contains("taplytics"))
            .collect();
        assert!(!taplytics.is_empty());
        let texts: Vec<String> = taplytics
            .iter()
            .map(|t| String::from_utf8_lossy(&t.request_bytes()).into_owned())
            .collect();
        assert!(
            texts.iter().any(|txt| txt.contains("password=")),
            "the §4.2 Grubhub password leak must reproduce"
        );
    }

    #[test]
    fn rtb_chains_bounce_across_exchanges() {
        let trace = run("bbc-news", Os::Ios, Medium::Web);
        // Chains visit exchanges that are NOT in the page's ad tag list
        // directly (e.g. bounced-to hosts), and produce one-shot flows.
        let rtb_txns = trace
            .transactions
            .iter()
            .filter(|t| t.request.url.path == "/rtb")
            .count();
        assert!(rtb_txns > 50, "expected many RTB hops, got {rtb_txns}");
    }

    #[test]
    fn plaintext_api_produces_http_flows() {
        let trace = run("accuweather", Os::Android, Medium::App);
        assert!(
            trace
                .transactions
                .iter()
                .any(|t| t.plaintext && t.host.contains("accuweather")),
            "Accuweather's plaintext API calls must appear"
        );
    }

    #[test]
    fn android_web_withholds_ios_only_pii() {
        let android = run("ncaa-sports", Os::Android, Medium::Web);
        let ios = run("ncaa-sports", Os::Ios, Medium::Web);
        let truth_a = truth_for(Os::Android);
        let truth_i = truth_for(Os::Ios);
        let has_name = |trace: &Trace, truth: &GroundTruth| {
            trace
                .transactions
                .iter()
                .any(|t| String::from_utf8_lossy(&t.request_bytes()).contains(&truth.first_name))
        };
        assert!(!has_name(&android, &truth_a));
        assert!(has_name(&ios, &truth_i));
    }

    fn run_with_plan(id: &str, os: Os, medium: Medium, plan: FaultPlan) -> Trace {
        let catalog = Catalog::paper();
        let spec = catalog.get(id).unwrap();
        let (mut meddle, mut world, trust) = testbed();
        let runner = SessionRunner { spec, os, medium };
        let cfg = SessionConfig {
            faults: plan,
            ..Default::default()
        };
        runner.run(&mut meddle, &mut world, &trust, &truth_for(os), &cfg)
    }

    #[test]
    fn none_plan_session_records_no_faults_or_retries() {
        let trace = run_with_plan("yelp", Os::Android, Medium::App, FaultPlan::none());
        assert_eq!(trace.faults.total(), 0);
        assert_eq!(trace.retries, 0);
        // Byte-identical to the default-config path (same armed none-plan).
        let baseline = run("yelp", Os::Android, Medium::App);
        assert_eq!(trace, baseline);
    }

    #[test]
    fn moderate_chaos_session_completes_and_records_faults() {
        let trace = run_with_plan("bbc-news", Os::Ios, Medium::Web, FaultPlan::moderate());
        assert!(
            !trace.transactions.is_empty(),
            "a degraded session still captures traffic"
        );
        assert!(trace.faults.total() > 0, "5% fault rates must fire");
        assert!(trace.retries > 0, "the client must have retried something");
        // Every fault either got retried away, killed a recorded flow, or
        // damaged a recorded response — nothing silently vanished.
        assert!(
            trace.aborted_connections() > 0 || trace.partial_transactions() > 0,
            "injected faults must leave visible scars in the trace"
        );
    }

    #[test]
    fn chaos_sessions_are_deterministic() {
        let a = run_with_plan(
            "accuweather",
            Os::Android,
            Medium::Web,
            FaultPlan::moderate(),
        );
        let b = run_with_plan(
            "accuweather",
            Os::Android,
            Medium::Web,
            FaultPlan::moderate(),
        );
        assert_eq!(a, b, "same (seed, plan) must reproduce the exact trace");
    }

    #[test]
    fn ten_minute_session_scales_counts_not_types() {
        // The §3.2 duration control: longer sessions yield proportionally
        // more flows but (almost) no new PII types.
        let catalog = Catalog::paper();
        let spec = catalog.get("weather-channel").unwrap();
        let truth = truth_for(Os::Android);

        let mut traces = vec![];
        for mins in [4u64, 10] {
            let (mut meddle, mut world, trust) = testbed();
            let runner = SessionRunner {
                spec,
                os: Os::Android,
                medium: Medium::App,
            };
            let cfg = SessionConfig {
                duration: SimDuration::from_mins(mins),
                ..Default::default()
            };
            traces.push(runner.run(&mut meddle, &mut world, &trust, &truth, &cfg));
        }
        let short = traces[0].transactions.len() as f64;
        let long = traces[1].transactions.len() as f64;
        let ratio = long / short;
        assert!(
            (1.8..=3.2).contains(&ratio),
            "10-minute run should be roughly 2.5x a 4-minute run, got {ratio:.2}"
        );
    }
}
