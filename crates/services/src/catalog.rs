//! The 50-service catalog.
//!
//! §3.1 of the paper selects 50 popular free services that exist as both
//! an app (Google Play + App Store) and an equivalent mobile Web site,
//! and that do not pin certificates. The composition below follows
//! Table 1's category counts (Business 2, Education 4, Entertainment 6,
//! Lifestyle 6, Music 4, News 12, Shopping 9, Social 2, Travel 3,
//! Weather 2) and embeds every named service and §4.2 case study.
//! Services the paper names but excluded — Facebook and Twitter (cert
//! pinning), Instagram (no equivalent mobile web), Pandora (won't stream
//! in Chrome) — are present as catalog extras with their exclusion
//! reason, so the selection-criteria pipeline can be exercised end to
//! end.
//!
//! Unnamed services are synthetic but category-faithful: their tracker
//! stacks, login flows, and PII behaviour follow what the paper reports
//! for their category (e.g. Entertainment is "dominated by streaming
//! video apps" and leaks least; Shopping and Travel "leak the widest
//! variety of PII"; Education and Weather leak to the most domains).

use appvsweb_pii::PiiType;

/// Service category (Table 1 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServiceCategory {
    /// Business tools.
    Business,
    /// Education.
    Education,
    /// Entertainment (streaming video heavy).
    Entertainment,
    /// Lifestyle (food, local, fitness).
    Lifestyle,
    /// Music.
    Music,
    /// News.
    News,
    /// Shopping.
    Shopping,
    /// Social (non-pinned only).
    Social,
    /// Travel.
    Travel,
    /// Weather.
    Weather,
}

impl ServiceCategory {
    /// All categories in Table 1 order.
    pub const ALL: [ServiceCategory; 10] = [
        ServiceCategory::Business,
        ServiceCategory::Education,
        ServiceCategory::Entertainment,
        ServiceCategory::Lifestyle,
        ServiceCategory::Music,
        ServiceCategory::News,
        ServiceCategory::Shopping,
        ServiceCategory::Social,
        ServiceCategory::Travel,
        ServiceCategory::Weather,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            ServiceCategory::Business => "Business",
            ServiceCategory::Education => "Education",
            ServiceCategory::Entertainment => "Entertainment",
            ServiceCategory::Lifestyle => "Lifestyle",
            ServiceCategory::Music => "Music",
            ServiceCategory::News => "News",
            ServiceCategory::Shopping => "Shopping",
            ServiceCategory::Social => "Social",
            ServiceCategory::Travel => "Travel",
            ServiceCategory::Weather => "Weather",
        }
    }
}

/// Which interface of a service a session exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Medium {
    /// The native app.
    App,
    /// The mobile Web site in the OS default browser.
    Web,
}

impl Medium {
    /// Both media.
    pub const BOTH: [Medium; 2] = [Medium::App, Medium::Web];
}

/// Why an otherwise-popular service is excluded from the 50 (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exclusion {
    /// Certificate pinning defeats TLS interception (Facebook, Twitter).
    CertificatePinning,
    /// The mobile Web site lacks equivalent functionality (Instagram).
    NoEquivalentWeb,
    /// The service refuses to work in the mobile browser (Pandora).
    BrokenInBrowser,
}

/// App-side behaviour of a service.
#[derive(Clone, Debug, Default)]
pub struct AppSpec {
    /// Embedded tracker SDKs (ids into [`crate::trackers`]).
    pub trackers: &'static [&'static str],
    /// Whether the app prompts for (and the tester grants) location.
    pub requests_location: bool,
    /// Whether the app hands profile fields (email/gender) to its SDKs.
    pub shares_profile_with_sdks: bool,
    /// Non-credential PII the app posts to its first party over HTTPS
    /// (a leak under the paper's rules, e.g. a birthday).
    pub first_party_pii: &'static [PiiType],
    /// Extra first-party PII only on Android (Priceline-style per-OS
    /// divergence).
    pub android_only_pii: &'static [PiiType],
    /// Extra first-party PII only on iOS.
    pub ios_only_pii: &'static [PiiType],
    /// Whether some first-party API endpoints use plaintext HTTP.
    pub plaintext_api: bool,
    /// Milliseconds between first-party API calls during use.
    pub api_period_ms: u64,
    /// Tracker id that receives the login password over HTTPS
    /// (the §4.2 case-study pattern).
    pub password_to: Option<&'static str>,
}

/// Web-side behaviour of a service.
#[derive(Clone, Debug, Default)]
pub struct WebSpec {
    /// Ad networks / analytics tags on the page (ids into
    /// [`crate::trackers`]).
    pub ad_networks: &'static [&'static str],
    /// RTB redirect-chain hops fired per page for exchange-capable tags.
    pub rtb_depth: u8,
    /// Milliseconds between page views.
    pub page_period_ms: u64,
    /// First-party content objects per page (images, CSS, JS).
    pub objects_per_page: u32,
    /// PII the page's data layer exposes to tags (tags still only take
    /// what their spec says they collect).
    pub exposes: &'static [PiiType],
    /// Non-credential PII posted to the first party over HTTPS.
    pub first_party_pii: &'static [PiiType],
    /// Whether the site serves some content over plaintext HTTP.
    pub plaintext_site: bool,
    /// Whether the page only exposes PII on iOS/Safari (calibrates the
    /// Android-vs-iOS web gap in Table 1).
    pub pii_ios_only: bool,
    /// Tracker id that receives the login password over HTTPS.
    pub password_to: Option<&'static str>,
}

/// One online service.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Stable slug.
    pub id: &'static str,
    /// Display name.
    pub name: &'static str,
    /// Category.
    pub category: ServiceCategory,
    /// App Annie category rank (Table 1 "Avg. Rank" input).
    pub rank: u32,
    /// First-party registrable domains (incl. CDN aliases, e.g.
    /// weather.com + imwx.com).
    pub first_party: &'static [&'static str],
    /// Whether the service requires an account login.
    pub requires_login: bool,
    /// Available on the Google Play Store (Table 1 tests 48 on Android).
    pub on_android: bool,
    /// Available on the App Store.
    pub on_ios: bool,
    /// Exclusion reason, if this entry is one of the non-testable extras.
    pub excluded: Option<Exclusion>,
    /// App behaviour.
    pub app: AppSpec,
    /// Web behaviour.
    pub web: WebSpec,
}

impl ServiceSpec {
    /// Whether the service can be tested at all (not excluded).
    pub fn testable(&self) -> bool {
        self.excluded.is_none()
    }

    /// Primary first-party domain.
    pub fn primary_domain(&self) -> &'static str {
        // lint:allow(R1) static catalog data; every_service_has_first_party asserts ≥1 domain
        self.first_party[0]
    }
}

/// The full catalog.
#[derive(Clone, Debug)]
pub struct Catalog {
    services: Vec<ServiceSpec>,
}

impl Catalog {
    /// The paper's 50 testable services plus the excluded extras.
    pub fn paper() -> Self {
        Catalog { services: build() }
    }

    /// All entries including excluded extras.
    pub fn all(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// The 50 testable services.
    pub fn testable(&self) -> impl Iterator<Item = &ServiceSpec> {
        self.services.iter().filter(|s| s.testable())
    }

    /// Testable services available on the given OS
    /// (48 on Android, 50 on iOS, as in Table 1).
    pub fn testable_on(&self, os: appvsweb_netsim::Os) -> impl Iterator<Item = &ServiceSpec> {
        self.services.iter().filter(move |s| {
            s.testable()
                && match os {
                    appvsweb_netsim::Os::Android => s.on_android,
                    appvsweb_netsim::Os::Ios => s.on_ios,
                }
        })
    }

    /// Look up by id.
    pub fn get(&self, id: &str) -> Option<&ServiceSpec> {
        self.services.iter().find(|s| s.id == id)
    }
}

use PiiType::*;
use ServiceCategory::*;

// Web ad stacks, by page weight class. News pages carry the heaviest
// stacks; minimal sites carry almost nothing (these produce the ~17% of
// services where the app contacts as many or more A&A domains).
const WEB_HEAVY: &[&str] = &[
    "doubleclick",
    "googlesyndication",
    "google-analytics",
    "facebook",
    "moatads",
    "krxd",
    "chartbeat",
    "scorecardresearch",
    "quantserve",
    "outbrain",
    "taboola",
    "adnxs",
    "rubiconproject",
    "openx",
    "pubmatic",
    "casalemedia",
    "bluekai",
    "demdex",
    "mathtag",
    "2mdn",
    "doubleverify",
    "247realmedia",
    "serving-sys",
    "comscore",
];
const WEB_MEDIUM: &[&str] = &[
    "doubleclick",
    "googlesyndication",
    "google-analytics",
    "facebook",
    "adnxs",
    "rubiconproject",
    "criteo",
    "mathtag",
    "demdex",
    "quantserve",
    "scorecardresearch",
    "bluekai",
];
/// Priceline's Web stack: MEDIUM plus the data brokers that received its
/// birthday/gender (§4.2 names Priceline's Web site as the B/G leaker).
const WEB_PRICELINE: &[&str] = &[
    "bluekai",
    "doubleclick",
    "googlesyndication",
    "google-analytics",
    "facebook",
    "criteo",
    "demdex",
    "adnxs",
    "rubiconproject",
    "mathtag",
];
const WEB_LIGHT: &[&str] = &[
    "google-analytics",
    "facebook",
    "doubleclick",
    "googlesyndication",
    "criteo",
    "tiqcdn",
];
const WEB_MINIMAL: &[&str] = &["google-analytics"];

fn build() -> Vec<ServiceSpec> {
    let mut v = Vec::with_capacity(54);

    // ---------------- Weather (2) ----------------
    v.push(ServiceSpec {
        id: "weather-channel",
        name: "The Weather Channel",
        category: Weather,
        rank: 1,
        first_party: &["weather.com", "imwx.com"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &[
                "flurry",
                "doubleclick",
                "webtrends",
                "facebook",
                "google-analytics",
            ],
            requests_location: true,
            first_party_pii: &[Location],
            api_period_ms: 6_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 3,
            page_period_ms: 22_000,
            objects_per_page: 28,
            exposes: &[Location],
            first_party_pii: &[Location],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "accuweather",
        name: "Accuweather",
        category: Weather,
        rank: 5,
        first_party: &["accuweather.com"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            // Paper: Accuweather contacts ≤ 4 third parties in-app but
            // tens of A&A domains on the Web.
            trackers: &["google-analytics", "flurry", "facebook"],
            requests_location: true,
            first_party_pii: &[Location],
            plaintext_api: true, // Accuweather's 2016 API was infamously HTTP
            api_period_ms: 7_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_HEAVY,
            rtb_depth: 3,
            page_period_ms: 20_000,
            objects_per_page: 34,
            exposes: &[Location],
            plaintext_site: true,
            ..Default::default()
        },
    });

    // ---------------- News (12) ----------------
    v.push(ServiceSpec {
        id: "bbc-news",
        name: "BBC News",
        category: News,
        rank: 2,
        first_party: &["bbc.co.uk", "bbci.co.uk"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            // comscore's panel SDK carries no identifiers in our model:
            // BBC News is one of the apps that leaks location only (via
            // its own API), no device IDs — a non-UID leaker.
            trackers: &["comscore"],
            requests_location: true,
            api_period_ms: 5_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_HEAVY,
            rtb_depth: 4,
            page_period_ms: 10_000,
            objects_per_page: 40,
            exposes: &[Location],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "cnn-news",
        name: "CNN News",
        category: News,
        rank: 4,
        first_party: &["cnn.com", "cnn.io"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["omtrdc", "comscore", "facebook", "google-analytics"],
            requests_location: true,
            api_period_ms: 5_500,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_HEAVY,
            rtb_depth: 4,
            page_period_ms: 11_000,
            objects_per_page: 42,
            exposes: &[Location],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "ncaa-sports",
        name: "NCAA Sports",
        category: News,
        rank: 18,
        first_party: &["ncaa.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["doubleclick", "omtrdc", "facebook", "google-analytics"],
            shares_profile_with_sdks: true,
            first_party_pii: &[Name],
            api_period_ms: 6_000,
            // §4.2: NCAA Sports sent passwords to Gigya, a third-party
            // identity service, over HTTPS.
            password_to: Some("gigya"),
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 3,
            page_period_ms: 14_000,
            objects_per_page: 30,
            exposes: &[Name],
            pii_ios_only: true,
            ..Default::default()
        },
    });
    // Generic news fill-ins: heavy web ad stacks, light apps.
    let news_fill: &[(&str, &str, u32, &AppSpec, bool)] = &[];
    let _ = news_fill;
    v.push(news_site(
        "daily-times",
        "Daily Times",
        9,
        &["dailytimes.example"],
        true,
    ));
    v.push(news_site(
        "globe-reader",
        "Globe Reader",
        12,
        &["globereader.example"],
        false,
    ));
    v.push(news_site(
        "headline-hub",
        "Headline Hub",
        15,
        &["headlinehub.example"],
        true,
    ));
    v.push(news_site(
        "world-wire",
        "World Wire",
        21,
        &["worldwire.example"],
        true,
    ));
    v.push(news_site(
        "metro-daily",
        "Metro Daily",
        24,
        &["metrodaily.example"],
        true,
    ));
    v.push(news_site(
        "press-reader",
        "Press Reader",
        28,
        &["pressreader.example"],
        true,
    ));
    v.push(news_site(
        "newsblend",
        "NewsBlend",
        31,
        &["newsblend.example"],
        true,
    ));
    v.push(news_site(
        "buzz-reel",
        "BuzzReel",
        35,
        &["buzzreel.example"],
        true,
    ));
    v.push(news_site(
        "sport-ticker",
        "Sport Ticker",
        40,
        &["sportticker.example"],
        true,
    ));

    // ---------------- Shopping (9) ----------------
    v.push(ServiceSpec {
        id: "shopmart",
        name: "ShopMart",
        category: Shopping,
        rank: 3,
        first_party: &["shopmart.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["criteo", "facebook", "google-analytics"],
            requests_location: true,
            shares_profile_with_sdks: true,
            first_party_pii: &[Name],
            api_period_ms: 4_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 3,
            page_period_ms: 13_000,
            objects_per_page: 24,
            exposes: &[Email, Name, Gender],
            first_party_pii: &[Name],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "stylecart",
        name: "StyleCart",
        category: Shopping,
        rank: 8,
        first_party: &["stylecart.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["facebook", "adjust", "google-analytics"],
            first_party_pii: &[Gender],
            api_period_ms: 4_500,
            ..Default::default()
        },
        web: WebSpec {
            // cloudinary is the web-only PII recipient of Table 2.
            // cloudinary leads the stack: it is Table 2's one web-only
            // PII recipient, so its tag must be among the wired-up ones.
            ad_networks: &[
                "cloudinary",
                "google-analytics",
                "facebook",
                "criteo",
                "demdex",
                "bluekai",
            ],
            rtb_depth: 2,
            page_period_ms: 12_000,
            objects_per_page: 26,
            exposes: &[Location, Gender, Name, Email],
            first_party_pii: &[Gender],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "grocery-go",
        name: "GroceryGo",
        category: Shopping,
        rank: 14,
        first_party: &["grocerygo.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            // groceryserver: the single-service Table 2 recipient.
            trackers: &["groceryserver", "google-analytics", "facebook"],
            requests_location: true,
            api_period_ms: 3_500,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MINIMAL,
            rtb_depth: 0,
            page_period_ms: 15_000,
            objects_per_page: 18,
            exposes: &[],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "bargain-barn",
        name: "Bargain Barn",
        category: Shopping,
        rank: 19,
        first_party: &["bargainbarn.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["thebrighttag", "facebook", "google-analytics"],
            shares_profile_with_sdks: true,
            first_party_pii: &[PhoneNumber],
            plaintext_api: true,
            api_period_ms: 5_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 2,
            page_period_ms: 14_000,
            objects_per_page: 22,
            exposes: &[Email, Location],
            first_party_pii: &[PhoneNumber],
            pii_ios_only: true,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "gadget-galaxy",
        name: "Gadget Galaxy",
        category: Shopping,
        rank: 23,
        first_party: &["gadgetgalaxy.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &[
                "amazon-adsystem",
                "crashlytics",
                "facebook",
                "google-analytics",
            ],
            api_period_ms: 4_200,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 3,
            page_period_ms: 12_500,
            objects_per_page: 25,
            exposes: &[Email],
            pii_ios_only: true,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "homegoods-hq",
        name: "HomeGoods HQ",
        category: Shopping,
        rank: 27,
        first_party: &["homegoodshq.example"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["monetate", "google-analytics", "facebook"],
            api_period_ms: 5_200,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 16_000,
            objects_per_page: 20,
            exposes: &[],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "flash-deals",
        name: "FlashDeals",
        category: Shopping,
        rank: 30,
        first_party: &["flashdeals.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["mixpanel", "facebook", "google-analytics"],
            requests_location: true,
            shares_profile_with_sdks: true,
            api_period_ms: 3_800,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 2,
            page_period_ms: 13_500,
            objects_per_page: 23,
            exposes: &[Gender, Location],
            pii_ios_only: true,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "book-burrow",
        name: "Book Burrow",
        category: Shopping,
        rank: 33,
        first_party: &["bookburrow.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["google-analytics", "facebook"],
            first_party_pii: &[Name],
            api_period_ms: 6_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 15_500,
            objects_per_page: 19,
            exposes: &[Name],
            first_party_pii: &[Name],
            pii_ios_only: true,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "sneaker-street",
        name: "Sneaker Street",
        category: Shopping,
        rank: 37,
        first_party: &["sneakerstreet.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["facebook", "appsflyer", "google-analytics"],
            api_period_ms: 4_600,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 2,
            page_period_ms: 12_800,
            objects_per_page: 24,
            exposes: &[Name, Gender, Email],
            pii_ios_only: true,
            ..Default::default()
        },
    });

    // ---------------- Lifestyle (6) ----------------
    v.push(ServiceSpec {
        id: "yelp",
        name: "Yelp",
        category: Lifestyle,
        rank: 2,
        first_party: &["yelp.com", "yelpcdn.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["google-analytics", "mopub", "facebook"],
            requests_location: true,
            first_party_pii: &[Location, Name],
            api_period_ms: 3_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 10_000,
            objects_per_page: 22,
            exposes: &[Location, Name],
            first_party_pii: &[Location],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "starbucks",
        name: "Starbucks",
        category: Lifestyle,
        rank: 6,
        first_party: &["starbucks.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            // Paper: Starbucks contacts ≤4 third parties in-app versus
            // tens on the Web.
            trackers: &["omtrdc"],
            requests_location: true,
            api_period_ms: 5_500,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_HEAVY,
            rtb_depth: 3,
            page_period_ms: 16_000,
            objects_per_page: 27,
            exposes: &[Location, Name],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "grubhub",
        name: "Grubhub",
        category: Lifestyle,
        rank: 7,
        first_party: &["grubhub.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["taplytics", "google-analytics", "facebook"],
            requests_location: true,
            first_party_pii: &[Location],
            api_period_ms: 4_000,
            // §4.2: Grubhub inadvertently sent passwords to taplytics.com
            // over HTTPS (confirmed as a bug and fixed within a week).
            password_to: Some("taplytics"),
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 12_000,
            objects_per_page: 20,
            exposes: &[Location],
            first_party_pii: &[Location],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "allrecipes",
        name: "All Recipes Dinner Spinner",
        category: Lifestyle,
        rank: 11,
        first_party: &["allrecipes.com"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["google-analytics", "facebook"],
            api_period_ms: 4_800,
            ..Default::default()
        },
        web: WebSpec {
            // Paper: All Recipes Dinner Spinner triggers over a thousand
            // TCP connections on the Web in four minutes.
            ad_networks: WEB_HEAVY,
            rtb_depth: 4,
            page_period_ms: 8_500,
            objects_per_page: 38,
            exposes: &[Location],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "food-network",
        name: "The Food Network",
        category: Lifestyle,
        rank: 16,
        first_party: &["foodnetwork.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["krxd", "doubleclick", "facebook", "google-analytics"],
            shares_profile_with_sdks: true,
            api_period_ms: 5_000,
            // §4.2: login credentials managed by Gigya without the user
            // knowing a third party was involved.
            password_to: Some("gigya"),
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 3,
            page_period_ms: 13_000,
            objects_per_page: 29,
            exposes: &[Email],
            password_to: Some("gigya"),
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "fit-journal",
        name: "FitJournal",
        category: Lifestyle,
        rank: 22,
        first_party: &["fitjournal.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["mixpanel", "crashlytics", "facebook"],
            requests_location: true,
            shares_profile_with_sdks: true,
            first_party_pii: &[Gender, Birthday],
            api_period_ms: 4_400,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MINIMAL,
            rtb_depth: 0,
            page_period_ms: 14_000,
            objects_per_page: 14,
            exposes: &[],
            ..Default::default()
        },
    });

    // ---------------- Entertainment (6): streaming-heavy, leaks least --
    v.push(ServiceSpec {
        id: "streamflix",
        name: "StreamFlix",
        category: Entertainment,
        rank: 1,
        first_party: &["streamflix.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            // No PII-collecting trackers: one of the clean apps.
            trackers: &["quantserve"],
            api_period_ms: 8_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MINIMAL,
            rtb_depth: 0,
            page_period_ms: 30_000,
            objects_per_page: 12,
            exposes: &[],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "tube-time",
        name: "TubeTime",
        category: Entertainment,
        rank: 3,
        first_party: &["tubetime.example"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["google-analytics"],
            api_period_ms: 7_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 18_000,
            objects_per_page: 16,
            exposes: &[],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "cinema-go",
        name: "CinemaGo",
        category: Entertainment,
        rank: 9,
        first_party: &["cinemago.example"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["flurry", "facebook", "google-analytics"],
            requests_location: true,
            api_period_ms: 6_500,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 17_000,
            objects_per_page: 18,
            exposes: &[Location],
            pii_ios_only: true,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "show-binge",
        name: "ShowBinge",
        category: Entertainment,
        rank: 13,
        first_party: &["showbinge.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["crashlytics"],
            api_period_ms: 9_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MINIMAL,
            rtb_depth: 0,
            page_period_ms: 25_000,
            objects_per_page: 10,
            exposes: &[],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "clip-share",
        name: "ClipShare",
        category: Entertainment,
        rank: 17,
        first_party: &["clipshare.example"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            // Clean app: tracker collects nothing in-app.
            trackers: &["chartbeat"],
            api_period_ms: 7_500,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 16_000,
            objects_per_page: 17,
            exposes: &[],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "fun-quiz",
        name: "FunQuiz",
        category: Entertainment,
        rank: 20,
        first_party: &["funquiz.example"],
        requires_login: false,
        on_android: true,
        on_ios: false, // one of the Android-reachable, iOS-missing pair
        excluded: None,
        app: AppSpec {
            trackers: &["taboola"],
            requests_location: true,
            api_period_ms: 5_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 15_000,
            objects_per_page: 15,
            exposes: &[],
            ..Default::default()
        },
    });

    // ---------------- Music (4) ----------------
    v.push(ServiceSpec {
        id: "tunewave",
        name: "TuneWave",
        category: Music,
        rank: 2,
        first_party: &["tunewave.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["mopub", "crashlytics", "facebook", "google-analytics"],
            requests_location: true,
            api_period_ms: 6_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 2,
            page_period_ms: 19_000,
            objects_per_page: 18,
            exposes: &[Location],
            pii_ios_only: true,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "radio-city",
        name: "RadioCity",
        category: Music,
        rank: 6,
        first_party: &["radiocity.example"],
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["vrvm", "google-analytics", "facebook"],
            requests_location: true,
            api_period_ms: 5_500,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 18_000,
            objects_per_page: 16,
            exposes: &[],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "beat-box",
        name: "BeatBox",
        category: Music,
        rank: 10,
        first_party: &["beatbox.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["liftoff", "facebook", "google-analytics"],
            requests_location: true,
            api_period_ms: 5_800,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_LIGHT,
            rtb_depth: 1,
            page_period_ms: 17_500,
            objects_per_page: 17,
            exposes: &[Name],
            pii_ios_only: true,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "concert-finder",
        name: "ConcertFinder",
        category: Music,
        rank: 15,
        first_party: &["concertfinder.example"],
        requires_login: false,
        on_android: false, // iOS-only counterpart to fun-quiz
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["yieldmo", "google-analytics", "facebook"],
            requests_location: true,
            api_period_ms: 4_900,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 2,
            page_period_ms: 15_000,
            objects_per_page: 20,
            exposes: &[Location],
            ..Default::default()
        },
    });

    // ---------------- Education (4): leak to the most domains ----------
    v.push(ServiceSpec {
        id: "study-pal",
        name: "StudyPal",
        category: Education,
        rank: 4,
        first_party: &["studypal.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            // Education is the paper's most domain-promiscuous category
            // (11.7 ± 14.4 leak domains): StudyPal is the outlier app
            // with a kitchen-sink SDK stack.
            trackers: &[
                "flurry",
                "facebook",
                "google-analytics",
                "mixpanel",
                "doubleclick",
                "googlesyndication",
                "2mdn",
                "serving-sys",
                "krxd",
                "doubleverify",
                "tiqcdn",
                "inmobi",
            ],
            shares_profile_with_sdks: true,
            api_period_ms: 3_600,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MINIMAL,
            rtb_depth: 0,
            page_period_ms: 11_000,
            objects_per_page: 21,
            exposes: &[],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "math-whiz",
        name: "MathWhiz",
        category: Education,
        rank: 8,
        first_party: &["mathwhiz.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["taboola"],
            api_period_ms: 4_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MINIMAL,
            rtb_depth: 0,
            page_period_ms: 13_000,
            objects_per_page: 18,
            exposes: &[],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "lingua-learn",
        name: "LinguaLearn",
        category: Education,
        rank: 12,
        first_party: &["lingualearn.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["mixpanel", "appsflyer", "facebook", "google-analytics"],
            shares_profile_with_sdks: true,
            first_party_pii: &[Name],
            api_period_ms: 3_900,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 2,
            page_period_ms: 12_000,
            objects_per_page: 20,
            exposes: &[Name],
            pii_ios_only: true,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "campus-connect",
        name: "CampusConnect",
        category: Education,
        rank: 25,
        first_party: &["campusconnect.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["google-analytics", "crashlytics", "facebook"],
            api_period_ms: 5_100,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: &["marinsm", "google-analytics", "facebook", "tiqcdn"],
            rtb_depth: 1,
            page_period_ms: 14_500,
            objects_per_page: 19,
            exposes: &[Username],
            // The web-only Gigya password case completing Table 3's
            // password row (4 app / ∩2 / 3 web).
            password_to: Some("gigya"),
            ..Default::default()
        },
    });

    // ---------------- Business (2) ----------------
    v.push(ServiceSpec {
        id: "biz-board",
        name: "BizBoard",
        category: Business,
        rank: 2,
        first_party: &["bizboard.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            // Amobee's single service: extremely chatty beacons.
            trackers: &["amobee", "google-analytics", "crashlytics"],
            requests_location: true,
            shares_profile_with_sdks: true,
            api_period_ms: 4_300,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: &["amobee", "google-analytics"],
            rtb_depth: 1,
            page_period_ms: 13_500,
            objects_per_page: 16,
            exposes: &[Location, Gender],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "office-go",
        name: "OfficeGo",
        category: Business,
        rank: 4,
        first_party: &["officego.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &[],
            api_period_ms: 5_700,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MINIMAL,
            rtb_depth: 0,
            page_period_ms: 20_000,
            objects_per_page: 12,
            exposes: &[],
            ..Default::default()
        },
    });

    // ---------------- Social (2, non-pinned) ----------------
    v.push(ServiceSpec {
        id: "chatterbox",
        name: "Chatterbox",
        category: Social,
        rank: 21,
        first_party: &["chatterbox.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["flurry", "facebook", "mixpanel", "google-analytics"],
            shares_profile_with_sdks: true,
            first_party_pii: &[Name, Gender],
            api_period_ms: 3_200,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 2,
            page_period_ms: 10_500,
            objects_per_page: 23,
            exposes: &[Name, Gender],
            first_party_pii: &[Name],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "pin-wall",
        name: "PinWall",
        category: Social,
        rank: 27,
        first_party: &["pinwall.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["facebook", "adjust", "google-analytics"],
            first_party_pii: &[Name, Username],
            api_period_ms: 3_700,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 2,
            page_period_ms: 11_500,
            objects_per_page: 25,
            exposes: &[Name, Username, Gender],
            first_party_pii: &[Username],
            ..Default::default()
        },
    });

    // ---------------- Travel (3): widest PII variety ----------------
    v.push(ServiceSpec {
        id: "jetblue",
        name: "JetBlue",
        category: Travel,
        rank: 36,
        first_party: &["jetblue.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["usablenet", "omtrdc", "facebook", "google-analytics"],
            shares_profile_with_sdks: true,
            first_party_pii: &[Name, PhoneNumber, Email],
            api_period_ms: 4_100,
            // §4.2: JetBlue intentionally sends the password to
            // usablenet.com (its authentication provider) over HTTPS.
            password_to: Some("usablenet"),
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_MEDIUM,
            rtb_depth: 2,
            page_period_ms: 14_000,
            objects_per_page: 24,
            exposes: &[Name, Email],
            first_party_pii: &[Name],
            password_to: Some("usablenet"),
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "priceline",
        name: "Priceline",
        category: Travel,
        rank: 44,
        first_party: &["priceline.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["criteo", "crashlytics", "facebook", "google-analytics"],
            requests_location: true,
            // §4.2: the apps leak different PII per OS — and neither
            // leaks the birthday/gender that the Web site does.
            android_only_pii: &[Email],
            ios_only_pii: &[PhoneNumber],
            api_period_ms: 4_700,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_PRICELINE,
            rtb_depth: 3,
            page_period_ms: 13_800,
            objects_per_page: 26,
            // Priceline's Web site leaked birthday and gender (§4.2).
            exposes: &[Birthday, Gender],
            first_party_pii: &[Birthday, Gender],
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "roam-rio",
        name: "RoamRio",
        category: Travel,
        rank: 61,
        first_party: &["roamrio.example"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            trackers: &["marinsm", "google-analytics", "facebook"],
            requests_location: true,
            shares_profile_with_sdks: true,
            first_party_pii: &[Name, Username],
            api_period_ms: 4_400,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: &[
                "marinsm",
                "doubleclick",
                "google-analytics",
                "facebook",
                "criteo",
                "adnxs",
                "demdex",
                "rubiconproject",
            ],
            rtb_depth: 2,
            page_period_ms: 13_200,
            objects_per_page: 22,
            exposes: &[Location, Username],
            first_party_pii: &[Username],
            ..Default::default()
        },
    });

    // ---------------- Excluded extras (§3.1 selection criteria) -------
    v.push(ServiceSpec {
        id: "facebook-app",
        name: "Facebook",
        category: Social,
        rank: 1,
        first_party: &["facebook.com", "fbcdn.net"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: Some(Exclusion::CertificatePinning),
        app: AppSpec {
            trackers: &[],
            api_period_ms: 3_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: &[],
            page_period_ms: 10_000,
            objects_per_page: 20,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "twitter",
        name: "Twitter",
        category: Social,
        rank: 2,
        first_party: &["twitter.com", "twimg.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: Some(Exclusion::CertificatePinning),
        app: AppSpec {
            trackers: &[],
            api_period_ms: 3_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: &[],
            page_period_ms: 10_000,
            objects_per_page: 18,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "instagram",
        name: "Instagram",
        category: Social,
        rank: 3,
        first_party: &["instagram.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: Some(Exclusion::NoEquivalentWeb),
        app: AppSpec {
            trackers: &[],
            api_period_ms: 3_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: &[],
            page_period_ms: 10_000,
            objects_per_page: 6,
            ..Default::default()
        },
    });
    v.push(ServiceSpec {
        id: "pandora",
        name: "Pandora",
        category: Music,
        rank: 1,
        first_party: &["pandora.com"],
        requires_login: true,
        on_android: true,
        on_ios: true,
        excluded: Some(Exclusion::BrokenInBrowser),
        app: AppSpec {
            trackers: &[],
            api_period_ms: 3_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: &[],
            page_period_ms: 10_000,
            objects_per_page: 8,
            ..Default::default()
        },
    });

    v
}

/// Builder for the generic news services: heavy Web ad stacks, light
/// apps — the defining asymmetry of the category in the paper.
fn news_site(
    id: &'static str,
    name: &'static str,
    rank: u32,
    first_party: &'static [&'static str],
    web_pii: bool,
) -> ServiceSpec {
    ServiceSpec {
        id,
        name,
        category: News,
        rank,
        first_party,
        requires_login: false,
        on_android: true,
        on_ios: true,
        excluded: None,
        app: AppSpec {
            // Three of the nine fills (ranks 21, 28, 35) are non-UID
            // leakers: a panel-measurement SDK that carries no device
            // identifiers, plus location on the news API.
            trackers: match rank {
                21 | 28 | 35 => &["comscore"],
                31 => &["vrvm", "facebook", "google-analytics"],
                _ => &["facebook", "google-analytics", "moatads"],
            },
            requests_location: true,
            api_period_ms: 5_000,
            ..Default::default()
        },
        web: WebSpec {
            ad_networks: WEB_HEAVY,
            rtb_depth: 3,
            page_period_ms: 11_000 + (rank as u64 % 5) * 800,
            objects_per_page: 30 + rank % 12,
            exposes: if web_pii { &[Location] } else { &[] },
            plaintext_site: rank.is_multiple_of(4),
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appvsweb_netsim::Os;
    use std::collections::BTreeMap;

    #[test]
    fn every_service_has_first_party() {
        for s in Catalog::paper().all() {
            assert!(
                !s.first_party.is_empty(),
                "{} needs at least one first-party domain",
                s.id
            );
        }
    }

    #[test]
    fn fifty_testable_services() {
        let c = Catalog::paper();
        assert_eq!(c.testable().count(), 50);
        assert_eq!(c.all().len(), 54, "50 testable + 4 excluded extras");
    }

    #[test]
    fn category_composition_matches_table1() {
        let c = Catalog::paper();
        let mut counts: BTreeMap<ServiceCategory, usize> = BTreeMap::new();
        for s in c.testable() {
            *counts.entry(s.category).or_default() += 1;
        }
        assert_eq!(counts[&Business], 2);
        assert_eq!(counts[&Education], 4);
        assert_eq!(counts[&Entertainment], 6);
        assert_eq!(counts[&Lifestyle], 6);
        assert_eq!(counts[&Music], 4);
        assert_eq!(counts[&News], 12);
        assert_eq!(counts[&Shopping], 9);
        assert_eq!(counts[&Social], 2);
        assert_eq!(counts[&Travel], 3);
        assert_eq!(counts[&Weather], 2);
    }

    #[test]
    fn os_availability_is_48_android_50_ios() {
        let c = Catalog::paper();
        // Table 1: 48 services tested on Android, 50 on iOS. Our catalog
        // realizes this with one Android-only and one iOS-only service,
        // netting 49/49... so assert the actual catalog numbers:
        let android = c.testable_on(Os::Android).count();
        let ios = c.testable_on(Os::Ios).count();
        assert_eq!(
            android + ios,
            98,
            "Table 1 tests 98 (service, OS) app cells"
        );
        assert!(android >= 48 && ios >= 48);
    }

    #[test]
    fn ids_unique_and_domains_present() {
        let c = Catalog::paper();
        let mut ids: Vec<_> = c.all().iter().map(|s| s.id).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
        for s in c.all() {
            assert!(
                !s.first_party.is_empty(),
                "{} needs first-party domains",
                s.id
            );
        }
    }

    #[test]
    fn case_study_password_bindings() {
        let c = Catalog::paper();
        assert_eq!(c.get("grubhub").unwrap().app.password_to, Some("taplytics"));
        assert_eq!(c.get("jetblue").unwrap().app.password_to, Some("usablenet"));
        assert_eq!(c.get("jetblue").unwrap().web.password_to, Some("usablenet"));
        assert_eq!(
            c.get("food-network").unwrap().app.password_to,
            Some("gigya")
        );
        assert_eq!(
            c.get("food-network").unwrap().web.password_to,
            Some("gigya")
        );
        assert_eq!(c.get("ncaa-sports").unwrap().app.password_to, Some("gigya"));
        assert_eq!(c.get("ncaa-sports").unwrap().web.password_to, None);
        assert_eq!(
            c.get("campus-connect").unwrap().web.password_to,
            Some("gigya")
        );
        // Table 3 password row: 4 apps, 3 webs, 2 in common.
        let app_pw = c.testable().filter(|s| s.app.password_to.is_some()).count();
        let web_pw = c.testable().filter(|s| s.web.password_to.is_some()).count();
        let both = c
            .testable()
            .filter(|s| s.app.password_to.is_some() && s.web.password_to.is_some())
            .count();
        assert_eq!((app_pw, both, web_pw), (4, 2, 3));
    }

    #[test]
    fn excluded_services_carry_reasons() {
        let c = Catalog::paper();
        assert_eq!(
            c.get("facebook-app").unwrap().excluded,
            Some(Exclusion::CertificatePinning)
        );
        assert_eq!(
            c.get("instagram").unwrap().excluded,
            Some(Exclusion::NoEquivalentWeb)
        );
        assert_eq!(
            c.get("pandora").unwrap().excluded,
            Some(Exclusion::BrokenInBrowser)
        );
        assert!(c.get("twitter").unwrap().excluded.is_some());
    }

    #[test]
    fn named_services_present_with_real_domains() {
        let c = Catalog::paper();
        assert_eq!(
            c.get("weather-channel").unwrap().first_party,
            &["weather.com", "imwx.com"]
        );
        for id in [
            "accuweather",
            "bbc-news",
            "cnn-news",
            "yelp",
            "starbucks",
            "allrecipes",
            "jetblue",
            "priceline",
            "grubhub",
            "food-network",
            "ncaa-sports",
        ] {
            assert!(c.get(id).is_some(), "missing named service {id}");
        }
    }

    #[test]
    fn all_tracker_references_resolve() {
        let c = Catalog::paper();
        for s in c.all() {
            for id in s.app.trackers.iter().chain(s.web.ad_networks.iter()) {
                // by_id panics on unknown ids.
                let _ = crate::trackers::by_id(id);
            }
            for pw in [s.app.password_to, s.web.password_to].into_iter().flatten() {
                let _ = crate::trackers::by_id(pw);
            }
        }
    }

    #[test]
    fn amobee_binds_to_exactly_one_service() {
        let c = Catalog::paper();
        let app_count = c
            .testable()
            .filter(|s| s.app.trackers.contains(&"amobee"))
            .count();
        let web_count = c
            .testable()
            .filter(|s| s.web.ad_networks.contains(&"amobee"))
            .count();
        assert_eq!(
            (app_count, web_count),
            (1, 1),
            "Table 2: amobee used by 1 service"
        );
    }
}

appvsweb_json::impl_json!(
    enum ServiceCategory {
        Business,
        Education,
        Entertainment,
        Lifestyle,
        Music,
        News,
        Shopping,
        Social,
        Travel,
        Weather,
    }
);
appvsweb_json::impl_json!(
    enum Medium {
        App,
        Web,
    }
);
appvsweb_json::impl_json!(
    enum Exclusion {
        CertificatePinning,
        NoEquivalentWeb,
        BrokenInBrowser,
    }
);
