//! The §3.2 duration-control experiment.
//!
//! The paper validates the 4-minute session length by re-running the
//! five leakiest and five least-leaky apps for 10 minutes: "the number
//! of third parties contacted and number of times PII leaked were
//! roughly proportional to the duration of the experiment … but we
//! generally did not see additional types of PII leaked during the
//! longer experiment duration". This module reruns that control.

use crate::study::{run_cell, StudyConfig};
use appvsweb_netsim::{Os, SimDuration};
use appvsweb_pii::PiiType;
use appvsweb_services::{Catalog, Medium};
use std::collections::BTreeSet;

/// Result of one service's duration comparison.
#[derive(Clone, Debug)]
pub struct DurationComparison {
    /// Service slug.
    pub service_id: String,
    /// Leak instances in the short run.
    pub short_leaks: u64,
    /// Leak instances in the long run.
    pub long_leaks: u64,
    /// Distinct PII types in the short run.
    pub short_types: BTreeSet<PiiType>,
    /// Distinct PII types in the long run.
    pub long_types: BTreeSet<PiiType>,
}

impl DurationComparison {
    /// leak-count scaling factor (long / short).
    pub fn leak_ratio(&self) -> f64 {
        if self.short_leaks == 0 {
            return if self.long_leaks == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.long_leaks as f64 / self.short_leaks as f64
    }

    /// PII types seen only in the long run.
    pub fn new_types(&self) -> BTreeSet<PiiType> {
        self.long_types
            .difference(&self.short_types)
            .copied()
            .collect()
    }
}

/// Run the duration control on `service_ids` for the app medium,
/// comparing `short` vs `long` session lengths.
pub fn duration_experiment(
    service_ids: &[&str],
    os: Os,
    short: SimDuration,
    long: SimDuration,
    cfg: &StudyConfig,
) -> Vec<DurationComparison> {
    let catalog = Catalog::paper();
    let mut out = Vec::new();
    for id in service_ids {
        let Some(spec) = catalog.get(id) else {
            continue;
        };
        let short_cell = run_cell(
            spec,
            os,
            Medium::App,
            &StudyConfig {
                duration: short,
                ..cfg.clone()
            },
            None,
        );
        let long_cell = run_cell(
            spec,
            os,
            Medium::App,
            &StudyConfig {
                duration: long,
                ..cfg.clone()
            },
            None,
        );
        out.push(DurationComparison {
            service_id: id.to_string(),
            short_leaks: short_cell.leak_count(),
            long_leaks: long_cell.leak_count(),
            short_types: short_cell.leaked_types.clone(),
            long_types: long_cell.leaked_types.clone(),
        });
    }
    out
}

/// The paper's selection: the five leakiest and five least-leaky apps.
pub fn default_duration_services() -> Vec<&'static str> {
    vec![
        // leakiest (heavy SDK stacks)
        "biz-board",
        "study-pal",
        "chatterbox",
        "grubhub",
        "weather-channel",
        // least leaky (clean entertainment apps)
        "streamflix",
        "show-binge",
        "clip-share",
        "tube-time",
        "office-go",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_types_plateau() {
        let cfg = StudyConfig {
            use_recon: false,
            ..Default::default()
        };
        let results = duration_experiment(
            &["biz-board", "weather-channel"],
            Os::Android,
            SimDuration::from_mins(4),
            SimDuration::from_mins(10),
            &cfg,
        );
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(
                (1.7..=3.5).contains(&r.leak_ratio()),
                "{}: leak counts should scale ~2.5x, got {:.2}",
                r.service_id,
                r.leak_ratio()
            );
            assert!(
                r.new_types().is_empty(),
                "{}: no new PII types expected in longer runs, got {:?}",
                r.service_id,
                r.new_types()
            );
        }
    }
}

appvsweb_json::impl_json!(struct DurationComparison {
    service_id, short_leaks, long_leaks, short_types, long_types
});
