//! # appvsweb-core
//!
//! The experiment driver for the `appvsweb` reproduction of *"Should You
//! Use the App for That?"* (IMC 2016).
//!
//! This crate assembles the substrates into the paper's full
//! methodology:
//!
//! * [`testbed`] — one test cell's equipment: a factory-reset device, a
//!   fresh account (ground truth), the Meddle tunnel with its CA
//!   installed on the device, and the origin world
//! * [`study`] — the full campaign: 50 services × {Android, iOS} ×
//!   {app, Web}, 4 simulated minutes each, with ReCon training and the
//!   combined detection pipeline, parallelized across cells
//! * [`exec`] — the work-stealing batch executor the study (and the
//!   `appvsweb-population` campaign) schedule cells/shards on, with
//!   index-ordered results so worker count never changes output
//! * [`duration`] — the §3.2 control experiment (4- vs 10-minute
//!   sessions)
//! * [`dataset`] — JSON export of the measurement dataset (the paper
//!   publishes its dataset; so does the reproduction)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod duration;
pub mod exec;
pub mod study;
pub mod testbed;

pub use study::{
    run_study, run_study_checked, CellId, CellSelection, StudyConfig, StudyConfigError,
};
pub use testbed::Testbed;
