//! The full study: 50 services × 2 OSes × 2 media.
//!
//! Reproduces the paper's campaign (§3.3: "We manually tested online
//! services over app and Web versions … between March 23 and May 11,
//! 2016"), compressed to simulated time. The runner:
//!
//! 1. trains the ReCon classifier on a training subset of cells (using
//!    ground-truth labels from the matcher, exactly how the ReCon
//!    corpus was labelled),
//! 2. runs every (service, OS, medium) cell through its own
//!    deterministic testbed, in parallel across worker threads,
//! 3. analyzes each trace with the combined detector and the EasyList
//!    categorizer, producing the [`Study`] dataset every table and
//!    figure builder consumes.

use crate::testbed::Testbed;
use appvsweb_adblock::Categorizer;
use appvsweb_analysis::{analyze_trace, CellAnalysis, CellFailure, Study, StudyHealth};
use appvsweb_httpsim::Host;
use appvsweb_netsim::{rng_labels, FaultKind, FaultPlan, Os, SimDuration, SimRng};
use appvsweb_pii::recon::{ReconClassifier, ReconTrainer, TrainingFlow, TreeConfig};
use appvsweb_pii::{CombinedDetector, GroundTruthMatcher};
use appvsweb_services::{Catalog, Medium, ServiceSpec, SessionConfig};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Study parameters.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Experiment seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Session duration (4 minutes in the paper).
    pub duration: SimDuration,
    /// Worker threads (1 = fully sequential).
    pub workers: usize,
    /// Train and use the ReCon classifier (disable for the
    /// matcher-only ablation).
    pub use_recon: bool,
    /// Fault plan applied to every measurement cell. The default
    /// ([`FaultPlan::none`]) reproduces the golden dataset byte for
    /// byte; classifier training always runs fault-free.
    pub faults: FaultPlan,
    /// Attempts per cell before recording it failed (1 = no retry).
    pub cell_attempts: u32,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2016,
            duration: SimDuration::from_mins(4),
            workers: available_workers(),
            use_recon: true,
            faults: FaultPlan::none(),
            cell_attempts: 2,
        }
    }
}

fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Services used to train ReCon (their traces are still measured; the
/// original ReCon was likewise trained on labelled traffic from the
/// same ecosystem it later classified).
const TRAINING_SERVICES: &[&str] = &["weather-channel", "shopmart", "study-pal", "chatterbox"];

/// Train the ReCon ensemble from matcher-labelled training flows.
pub fn train_recon(catalog: &Catalog, cfg: &StudyConfig) -> ReconClassifier {
    let mut trainer = ReconTrainer::new();
    // Training always runs fault-free: the classifier must learn from
    // clean labelled flows regardless of the measurement plan.
    let session_cfg = SessionConfig {
        duration: cfg.duration,
        seed: cfg.seed ^ 0x7261_696e, // distinct stream from measurement
        ..SessionConfig::default()
    };
    for id in TRAINING_SERVICES {
        let Some(spec) = catalog.get(id) else {
            continue;
        };
        for os in [Os::Android, Os::Ios] {
            let mut tb = Testbed::for_cell(spec, os, session_cfg.seed);
            let matcher = GroundTruthMatcher::new(&tb.truth);
            for medium in Medium::BOTH {
                // Training sessions journal under a `train/` pseudo-cell
                // id; they run on the main thread before any worker.
                let _scope =
                    appvsweb_obs::cell_scope(&format!("train/{}/{os:?}/{medium:?}", spec.id));
                let trace = tb.run_session(spec, os, medium, &session_cfg);
                for txn in &trace.transactions {
                    let text = appvsweb_analysis::leaks::scan_text_of(&txn.request);
                    let labels: BTreeSet<_> = matcher.types_in(&text).into_iter().collect();
                    trainer.add(TrainingFlow {
                        domain: Host::new(&txn.host).registrable_domain(),
                        text,
                        labels,
                    });
                }
            }
        }
    }
    trainer.train(&TreeConfig::default())
}

/// Run one cell: session + analysis.
pub fn run_cell(
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    cfg: &StudyConfig,
    recon: Option<&ReconClassifier>,
) -> CellAnalysis {
    run_cell_attempt(spec, os, medium, cfg, recon, 0)
}

/// One attempt at a cell. The attempt number salts the injected-panic
/// roll, so a cell that crashed once can succeed on retry (unless the
/// plan pins `cell_panic` at 1.0).
fn run_cell_attempt(
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    cfg: &StudyConfig,
    recon: Option<&ReconClassifier>,
    attempt: u32,
) -> CellAnalysis {
    if cfg.faults.cell_panic > 0.0 {
        let mut rng =
            SimRng::new(cfg.seed).fork(&rng_labels::cell_panic(spec.id, os, medium, attempt));
        if rng.chance(cfg.faults.cell_panic) {
            // lint:allow(R1) deliberate fault injection; run_study_resilient catches it
            panic!(
                "injected {:?}: cell {}/{:?}/{:?} attempt {attempt}",
                FaultKind::CellPanic,
                spec.id,
                os,
                medium
            );
        }
    }
    let session_cfg = SessionConfig {
        duration: cfg.duration,
        seed: cfg.seed,
        faults: cfg.faults.clone(),
        ..SessionConfig::default()
    };
    let mut tb = Testbed::for_cell(spec, os, cfg.seed);
    let trace = tb.run_session(spec, os, medium, &session_cfg);
    let detector = CombinedDetector::new(&tb.truth, recon.cloned());
    let categorizer = Categorizer::bundled(spec.first_party);
    analyze_trace(&trace, spec, os, medium, &detector, &categorizer)
}

/// Outcome of one cell, including the attempts its isolation loop spent.
struct CellOutcome {
    label: String,
    cell: Option<CellAnalysis>,
    attempts: u32,
    panics: u64,
    /// Payload string of the last panic, when any attempt panicked.
    panic_msg: Option<String>,
}

/// Best-effort string form of a `catch_unwind` payload. Panics raised
/// with `panic!("…")` carry `&str` or `String`; anything else gets a
/// placeholder rather than being dropped on the floor.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run a cell inside a panic boundary with bounded retry. A cell that
/// keeps crashing is recorded as failed instead of taking the whole
/// campaign down.
fn run_cell_guarded(
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    cfg: &StudyConfig,
    recon: Option<&ReconClassifier>,
) -> CellOutcome {
    let label = format!("{}/{:?}/{:?}", spec.id, os, medium);
    // The cell scope and per-attempt span live *outside* the panic
    // boundary, so an unwinding attempt still closes them exactly once;
    // spans opened inside the attempt close during the unwind itself.
    let _scope = appvsweb_obs::cell_scope(&label);
    appvsweb_obs::counter!("study.cells_scheduled");
    let allowed = cfg.cell_attempts.max(1);
    let mut panics = 0u64;
    let mut panic_msg = None;
    for attempt in 0..allowed {
        let _attempt = appvsweb_obs::span!("study.cell_attempt", "attempt={attempt}");
        if attempt > 0 {
            appvsweb_obs::counter!("study.cell_retries");
        }
        match catch_unwind(AssertUnwindSafe(|| {
            run_cell_attempt(spec, os, medium, cfg, recon, attempt)
        })) {
            Ok(cell) => {
                return CellOutcome {
                    label,
                    cell: Some(cell),
                    attempts: attempt + 1,
                    panics,
                    panic_msg,
                }
            }
            Err(payload) => {
                panics += 1;
                let msg = panic_message(payload.as_ref());
                appvsweb_obs::counter!("study.cell_panics");
                appvsweb_obs::event!("study.cell_panic", "attempt={attempt} {msg}");
                panic_msg = Some(msg);
            }
        }
    }
    CellOutcome {
        label,
        cell: None,
        attempts: allowed,
        panics,
        panic_msg,
    }
}

/// Run one cell under its own journal capture, returning the analysis
/// (when the cell survives its attempts) together with everything it
/// recorded — including `train/`-free single-cell traces for
/// `repro trace --cell` and the golden-trace tests.
///
/// Takes over the process-wide capture; callers must not already be
/// inside [`appvsweb_obs::capture_begin`].
pub fn run_cell_journal(
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    cfg: &StudyConfig,
    recon: Option<&ReconClassifier>,
) -> (Option<CellAnalysis>, appvsweb_obs::StudyJournal) {
    appvsweb_obs::capture_begin();
    let outcome = run_cell_guarded(spec, os, medium, cfg, recon);
    (outcome.cell, appvsweb_obs::capture_end())
}

/// Run the full study over the paper catalog.
pub fn run_study(cfg: &StudyConfig) -> Study {
    let catalog = Catalog::paper();
    let recon = if cfg.use_recon {
        Some(train_recon(&catalog, cfg))
    } else {
        None
    };

    // Work list: every testable (service, OS, medium) cell, respecting
    // per-OS availability (48 Android / 50 iOS, Table 1).
    let mut work: Vec<(&ServiceSpec, Os, Medium)> = Vec::new();
    for os in [Os::Android, Os::Ios] {
        for spec in catalog.testable_on(os) {
            for medium in Medium::BOTH {
                work.push((spec, os, medium));
            }
        }
    }

    // Work-stealing over cells (chunk = 1: cells are ragged — a heavy
    // web cell can cost several light app cells — so fine-grained
    // stealing beats the old static partition). Results come back in
    // work-list order, and the fold below is order-independent anyway.
    let outcomes: Vec<CellOutcome> =
        crate::exec::run_indexed(&work, cfg.workers.max(1), 1, |_, (spec, os, medium)| {
            run_cell_guarded(spec, *os, *medium, cfg, recon.as_ref())
        });

    // Fold the outcomes into the dataset + ledger. Every aggregate here
    // is order-independent (sums and a sorted list), so the result is
    // identical no matter how workers interleaved.
    let mut health = StudyHealth {
        cells_attempted: work.len() as u64,
        ..StudyHealth::default()
    };
    let mut cells: Vec<CellAnalysis> = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        health.faults.cell_panics += outcome.panics;
        match outcome.cell {
            Some(cell) => {
                health.cells_completed += 1;
                if outcome.attempts > 1 {
                    health.cells_retried += 1;
                }
                health.faults.merge(&cell.fault_counts);
                health.session_retries += cell.retries;
                cells.push(cell);
            }
            None => {
                health.cells_failed += 1;
                health.failed_cells.push(outcome.label.clone());
                health.failures.push(CellFailure {
                    cell: outcome.label,
                    error: outcome
                        .panic_msg
                        .unwrap_or_else(|| "panic payload unavailable".to_string()),
                });
            }
        }
    }
    health.failed_cells.sort();
    health.failures.sort_by(|a, b| a.cell.cmp(&b.cell));

    // Deterministic output order regardless of worker scheduling.
    cells.sort_by(|a, b| {
        (a.service_id.clone(), a.os, a.medium).cmp(&(b.service_id.clone(), b.os, b.medium))
    });
    Study { cells, health }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> StudyConfig {
        // One simulated minute keeps unit tests fast; integration tests
        // and benches run the full four.
        StudyConfig {
            seed: 2016,
            duration: SimDuration::from_mins(1),
            workers: available_workers(),
            use_recon: false,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn study_covers_all_cells() {
        let study = run_study(&quick_cfg());
        // 49 services on Android (one iOS-only) + 49 on iOS, × 2 media.
        let android = study.cells.iter().filter(|c| c.os == Os::Android).count();
        let ios = study.cells.iter().filter(|c| c.os == Os::Ios).count();
        assert_eq!(android + ios, 196);
        // Golden path: a clean ledger with zero faults.
        assert!(study.health.is_complete());
        assert!(study.health.all_accounted());
        assert_eq!(study.health.cells_attempted, 196);
        assert_eq!(study.health.faults.total(), 0);
        assert_eq!(study.health.session_retries, 0);
        let apps = study
            .cells
            .iter()
            .filter(|c| c.medium == Medium::App)
            .count();
        assert_eq!(apps * 2, android + ios);
    }

    #[test]
    fn study_is_deterministic_across_worker_counts() {
        let seq = run_study(&StudyConfig {
            workers: 1,
            ..quick_cfg()
        });
        let par = run_study(&StudyConfig {
            workers: 4,
            ..quick_cfg()
        });
        assert_eq!(seq.cells.len(), par.cells.len());
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.service_id, b.service_id);
            assert_eq!(a.aa_flows, b.aa_flows);
            assert_eq!(a.leaked_types, b.leaked_types);
            assert_eq!(a.leak_count(), b.leak_count());
        }
    }

    #[test]
    fn chaotic_study_accounts_for_every_cell() {
        let study = run_study(&StudyConfig {
            faults: FaultPlan::moderate(),
            ..quick_cfg()
        });
        let h = &study.health;
        assert!(h.all_accounted(), "completed + failed must equal attempted");
        assert_eq!(h.cells_attempted, 196);
        assert_eq!(study.cells.len() as u64, h.cells_completed);
        assert!(h.faults.total() > 0, "a 5% plan must inject faults");
        assert!(h.session_retries > 0, "clients must have retried");
    }

    #[test]
    fn recon_training_produces_models() {
        let catalog = Catalog::paper();
        let clf = train_recon(&catalog, &quick_cfg());
        assert!(clf.domain_model_count() > 0, "per-domain models expected");
    }

    #[test]
    fn single_cell_run_smoke() {
        let catalog = Catalog::paper();
        let spec = catalog.get("grubhub").unwrap();
        let cell = run_cell(spec, Os::Android, Medium::App, &quick_cfg(), None);
        assert!(
            cell.leaked(),
            "Grubhub app leaks (password to taplytics at minimum)"
        );
        assert!(cell.leak_domains.contains("taplytics.com"));
    }
}
