//! The full study: 50 services × 2 OSes × 2 media.
//!
//! Reproduces the paper's campaign (§3.3: "We manually tested online
//! services over app and Web versions … between March 23 and May 11,
//! 2016"), compressed to simulated time. The runner:
//!
//! 1. trains the ReCon classifier on a training subset of cells (using
//!    ground-truth labels from the matcher, exactly how the ReCon
//!    corpus was labelled),
//! 2. runs every (service, OS, medium) cell through its own
//!    deterministic testbed, in parallel across worker threads,
//! 3. analyzes each trace with the combined detector and the EasyList
//!    categorizer, producing the [`Study`] dataset every table and
//!    figure builder consumes.

use crate::testbed::Testbed;
use appvsweb_adblock::Categorizer;
use appvsweb_analysis::{analyze_trace, CellAnalysis, CellFailure, Study, StudyHealth};
use appvsweb_httpsim::Host;
use appvsweb_json::JsonKey;
use appvsweb_netsim::{rng_labels, FaultKind, FaultPlan, Os, SimDuration, SimRng};
use appvsweb_pii::recon::{ReconClassifier, ReconTrainer, TrainingFlow, TreeConfig};
use appvsweb_pii::CombinedDetector;
use appvsweb_services::{Catalog, Medium, ServiceSpec, SessionConfig};
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One (service, OS, medium) coordinate of the campaign grid.
///
/// The canonical text form is the `service/Os/Medium` label the health
/// ledger, the obs journal, and the `repro trace --cell` flag already
/// use (e.g. `yelp/Android/App`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellId {
    /// Service slug from the catalog.
    pub service: String,
    /// Test phone OS.
    pub os: Os,
    /// App or Web.
    pub medium: Medium,
}

impl CellId {
    /// Build a cell id from its parts.
    pub fn new(service: &str, os: Os, medium: Medium) -> Self {
        CellId {
            service: service.to_string(),
            os,
            medium,
        }
    }

    /// Parse the canonical `service/Os/Medium` label.
    pub fn parse(label: &str) -> Result<CellId, StudyConfigError> {
        let mut parts = label.splitn(3, '/');
        let (Some(service), Some(os), Some(medium)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(StudyConfigError::BadCellLabel(label.to_string()));
        };
        if service.is_empty() {
            return Err(StudyConfigError::BadCellLabel(label.to_string()));
        }
        let os = Os::from_key(os).map_err(|_| StudyConfigError::BadCellLabel(label.to_string()))?;
        let medium = Medium::from_key(medium)
            .map_err(|_| StudyConfigError::BadCellLabel(label.to_string()))?;
        Ok(CellId {
            service: service.to_string(),
            os,
            medium,
        })
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{:?}/{:?}", self.service, self.os, self.medium)
    }
}

appvsweb_json::impl_json!(struct CellId { service, os, medium });

/// Which cells of the catalog a campaign covers.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum CellSelection {
    /// Every testable (service, OS, medium) cell — the paper's grid.
    #[default]
    All,
    /// An explicit cell list (validated: known services, available on
    /// the requested OS, and duplicate-free).
    Explicit(Vec<CellId>),
    /// Every n-th cell of the full grid, in grid order. This is the
    /// load-shedding degradation: an overloaded queue runs a thinner,
    /// still OS/medium-balanced sample instead of refusing the job.
    Strided(u32),
}

/// Why a [`StudyConfig`] was rejected before any cell ran. Silent
/// degeneracies (duplicate cells double-counting a service, zero-length
/// sessions producing empty-but-plausible reports) are structured
/// errors instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StudyConfigError {
    /// The session duration is zero; every trace would be empty.
    ZeroDuration,
    /// A strided selection with stride 0 selects nothing meaningfully.
    ZeroStride,
    /// The same (service, OS, medium) cell appears twice.
    DuplicateCell(String),
    /// No such service slug in the catalog.
    UnknownService(String),
    /// The service exists but is not testable on the requested OS.
    UnavailableCell(String),
    /// A cell label did not parse as `service/Os/Medium`.
    BadCellLabel(String),
    /// A named fault-plan preset does not exist.
    BadFaultPreset(String),
}

impl fmt::Display for StudyConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyConfigError::ZeroDuration => {
                write!(f, "zero-duration campaign: sessions would capture nothing")
            }
            StudyConfigError::ZeroStride => write!(f, "cell stride must be at least 1"),
            StudyConfigError::DuplicateCell(cell) => {
                write!(f, "duplicate cell in campaign spec: {cell}")
            }
            StudyConfigError::UnknownService(id) => {
                write!(f, "unknown service in campaign spec: {id}")
            }
            StudyConfigError::UnavailableCell(cell) => {
                write!(f, "cell not testable on that OS: {cell}")
            }
            StudyConfigError::BadCellLabel(label) => {
                write!(f, "cell label must be service/Os/Medium: {label:?}")
            }
            StudyConfigError::BadFaultPreset(name) => {
                write!(f, "no such fault-plan preset: {name:?}")
            }
        }
    }
}

impl std::error::Error for StudyConfigError {}

/// Study parameters.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Experiment seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Session duration (4 minutes in the paper).
    pub duration: SimDuration,
    /// Worker threads (1 = fully sequential).
    pub workers: usize,
    /// Train and use the ReCon classifier (disable for the
    /// matcher-only ablation).
    pub use_recon: bool,
    /// Fault plan applied to every measurement cell. The default
    /// ([`FaultPlan::none`]) reproduces the golden dataset byte for
    /// byte; classifier training always runs fault-free.
    pub faults: FaultPlan,
    /// Attempts per cell before recording it failed (1 = no retry).
    pub cell_attempts: u32,
    /// Which cells of the grid to run (default: all of them).
    pub cells: CellSelection,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2016,
            duration: SimDuration::from_mins(4),
            workers: available_workers(),
            use_recon: true,
            faults: FaultPlan::none(),
            cell_attempts: 2,
            cells: CellSelection::All,
        }
    }
}

impl StudyConfig {
    /// Reject configurations that would silently produce degenerate
    /// reports: zero-duration campaigns and duplicate or unknown cells.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), StudyConfigError> {
        if self.duration == SimDuration::ZERO {
            return Err(StudyConfigError::ZeroDuration);
        }
        campaign_cells(catalog, &self.cells).map(|_| ())
    }
}

/// Resolve a [`CellSelection`] against the catalog into the concrete
/// work list, in grid order (OS-major, catalog order, then medium for
/// `All`/`Strided`; spec order for `Explicit`).
pub fn campaign_cells<'a>(
    catalog: &'a Catalog,
    selection: &CellSelection,
) -> Result<Vec<(&'a ServiceSpec, Os, Medium)>, StudyConfigError> {
    let grid = |stride: usize| -> Vec<(&ServiceSpec, Os, Medium)> {
        let mut work = Vec::new();
        for os in [Os::Android, Os::Ios] {
            for spec in catalog.testable_on(os) {
                for medium in Medium::BOTH {
                    work.push((spec, os, medium));
                }
            }
        }
        work.into_iter().step_by(stride).collect()
    };
    match selection {
        CellSelection::All => Ok(grid(1)),
        CellSelection::Strided(0) => Err(StudyConfigError::ZeroStride),
        CellSelection::Strided(n) => Ok(grid(*n as usize)),
        CellSelection::Explicit(cells) => {
            let mut seen = BTreeSet::new();
            let mut work = Vec::with_capacity(cells.len());
            for cell in cells {
                if !seen.insert(cell.clone()) {
                    return Err(StudyConfigError::DuplicateCell(cell.to_string()));
                }
                let spec = catalog
                    .get(&cell.service)
                    .ok_or_else(|| StudyConfigError::UnknownService(cell.service.clone()))?;
                if !catalog.testable_on(cell.os).any(|s| s.id == spec.id) {
                    return Err(StudyConfigError::UnavailableCell(cell.to_string()));
                }
                work.push((spec, cell.os, cell.medium));
            }
            Ok(work)
        }
    }
}

fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Services used to train ReCon (their traces are still measured; the
/// original ReCon was likewise trained on labelled traffic from the
/// same ecosystem it later classified).
const TRAINING_SERVICES: &[&str] = &["weather-channel", "shopmart", "study-pal", "chatterbox"];

/// Train the ReCon ensemble from matcher-labelled training flows.
pub fn train_recon(catalog: &Catalog, cfg: &StudyConfig) -> ReconClassifier {
    let mut trainer = ReconTrainer::new();
    // Training always runs fault-free: the classifier must learn from
    // clean labelled flows regardless of the measurement plan.
    let session_cfg = SessionConfig {
        duration: cfg.duration,
        seed: cfg.seed ^ 0x7261_696e, // distinct stream from measurement
        ..SessionConfig::default()
    };
    for id in TRAINING_SERVICES {
        let Some(spec) = catalog.get(id) else {
            continue;
        };
        for os in [Os::Android, Os::Ios] {
            let mut tb = Testbed::for_cell(spec, os, session_cfg.seed);
            let dict = appvsweb_pii::cache::compiled(&tb.truth);
            let matcher = &dict.matcher;
            for medium in Medium::BOTH {
                // Training sessions journal under a `train/` pseudo-cell
                // id; they run on the main thread before any worker.
                let _scope =
                    appvsweb_obs::cell_scope(&format!("train/{}/{os:?}/{medium:?}", spec.id));
                let trace = tb.run_session(spec, os, medium, &session_cfg);
                for txn in &trace.transactions {
                    let text = appvsweb_analysis::leaks::scan_text_of(&txn.request);
                    let labels: BTreeSet<_> = matcher.types_in(&text).into_iter().collect();
                    trainer.add(TrainingFlow {
                        domain: Host::new(&txn.host).registrable_domain(),
                        text,
                        labels,
                    });
                }
            }
        }
    }
    trainer.train(&TreeConfig::default())
}

/// Run one cell: session + analysis.
pub fn run_cell(
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    cfg: &StudyConfig,
    recon: Option<&ReconClassifier>,
) -> CellAnalysis {
    run_cell_attempt(spec, os, medium, cfg, recon, 0)
}

/// One attempt at a cell. The attempt number salts the injected-panic
/// roll, so a cell that crashed once can succeed on retry (unless the
/// plan pins `cell_panic` at 1.0).
fn run_cell_attempt(
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    cfg: &StudyConfig,
    recon: Option<&ReconClassifier>,
    attempt: u32,
) -> CellAnalysis {
    if cfg.faults.cell_panic > 0.0 {
        let mut rng =
            SimRng::new(cfg.seed).fork(&rng_labels::cell_panic(spec.id, os, medium, attempt));
        if rng.chance(cfg.faults.cell_panic) {
            // lint:allow(R1) deliberate fault injection; run_study_resilient catches it
            panic!(
                "injected {:?}: cell {}/{:?}/{:?} attempt {attempt}",
                FaultKind::CellPanic,
                spec.id,
                os,
                medium
            );
        }
    }
    let session_cfg = SessionConfig {
        duration: cfg.duration,
        seed: cfg.seed,
        faults: cfg.faults.clone(),
        ..SessionConfig::default()
    };
    let mut tb = Testbed::for_cell(spec, os, cfg.seed);
    let trace = tb.run_session(spec, os, medium, &session_cfg);
    let detector = CombinedDetector::new(&tb.truth, recon.cloned());
    let categorizer = Categorizer::bundled(spec.first_party);
    analyze_trace(&trace, spec, os, medium, &detector, &categorizer)
}

/// Outcome of one cell, including the attempts its isolation loop spent.
///
/// Public so external supervisors (the `appvsweb-serve` queue/worker
/// substrate) can run cells attempt-by-attempt with their own retry
/// policy and still fold results through [`fold_outcomes`] into the
/// same ledger the batch runner produces.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Cell label, `service/Os/Medium`.
    pub label: String,
    /// The analysis, when any attempt survived.
    pub cell: Option<CellAnalysis>,
    /// Attempts spent (completed + panicked).
    pub attempts: u32,
    /// Panicked attempts.
    pub panics: u64,
    /// Payload string of the last panic, when any attempt panicked.
    pub panic_msg: Option<String>,
}

/// Best-effort string form of a `catch_unwind` payload. Panics raised
/// with `panic!("…")` carry `&str` or `String`; anything else gets a
/// placeholder rather than being dropped on the floor.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One isolated attempt at a cell: the panic boundary without the retry
/// loop. `Err` carries the panic payload. This is the worker primitive
/// the supervised queue executor schedules; [`run_cell_guarded`] is the
/// batch runner's bounded-retry loop over it.
pub fn run_cell_caught(
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    cfg: &StudyConfig,
    recon: Option<&ReconClassifier>,
    attempt: u32,
) -> Result<CellAnalysis, String> {
    catch_unwind(AssertUnwindSafe(|| {
        run_cell_attempt(spec, os, medium, cfg, recon, attempt)
    }))
    .map_err(|payload| panic_message(payload.as_ref()))
}

/// Run a cell inside a panic boundary with bounded retry. A cell that
/// keeps crashing is recorded as failed instead of taking the whole
/// campaign down.
fn run_cell_guarded(
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    cfg: &StudyConfig,
    recon: Option<&ReconClassifier>,
) -> CellOutcome {
    let label = format!("{}/{:?}/{:?}", spec.id, os, medium);
    // The cell scope and per-attempt span live *outside* the panic
    // boundary, so an unwinding attempt still closes them exactly once;
    // spans opened inside the attempt close during the unwind itself.
    let _scope = appvsweb_obs::cell_scope(&label);
    appvsweb_obs::counter!("study.cells_scheduled");
    let allowed = cfg.cell_attempts.max(1);
    let mut panics = 0u64;
    let mut panic_msg = None;
    for attempt in 0..allowed {
        let _attempt = appvsweb_obs::span!("study.cell_attempt", "attempt={attempt}");
        if attempt > 0 {
            appvsweb_obs::counter!("study.cell_retries");
        }
        match run_cell_caught(spec, os, medium, cfg, recon, attempt) {
            Ok(cell) => {
                return CellOutcome {
                    label,
                    cell: Some(cell),
                    attempts: attempt + 1,
                    panics,
                    panic_msg,
                }
            }
            Err(msg) => {
                panics += 1;
                appvsweb_obs::counter!("study.cell_panics");
                appvsweb_obs::event!("study.cell_panic", "attempt={attempt} {msg}");
                panic_msg = Some(msg);
            }
        }
    }
    CellOutcome {
        label,
        cell: None,
        attempts: allowed,
        panics,
        panic_msg,
    }
}

/// Run one cell under its own journal capture, returning the analysis
/// (when the cell survives its attempts) together with everything it
/// recorded — including `train/`-free single-cell traces for
/// `repro trace --cell` and the golden-trace tests.
///
/// Takes over the process-wide capture; callers must not already be
/// inside [`appvsweb_obs::capture_begin`].
pub fn run_cell_journal(
    spec: &ServiceSpec,
    os: Os,
    medium: Medium,
    cfg: &StudyConfig,
    recon: Option<&ReconClassifier>,
) -> (Option<CellAnalysis>, appvsweb_obs::StudyJournal) {
    appvsweb_obs::capture_begin();
    let outcome = run_cell_guarded(spec, os, medium, cfg, recon);
    (outcome.cell, appvsweb_obs::capture_end())
}

/// Fold per-cell outcomes into the dataset + ledger. Every aggregate
/// here is order-independent (sums and sorted lists), so the result is
/// identical no matter how workers interleaved. Shared by the batch
/// runner and the supervised `appvsweb-serve` executor.
pub fn fold_outcomes(outcomes: Vec<CellOutcome>) -> Study {
    let mut health = StudyHealth {
        cells_attempted: outcomes.len() as u64,
        ..StudyHealth::default()
    };
    let mut cells: Vec<CellAnalysis> = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        health.faults.cell_panics += outcome.panics;
        match outcome.cell {
            Some(cell) => {
                health.cells_completed += 1;
                if outcome.attempts > 1 {
                    health.cells_retried += 1;
                }
                health.faults.merge(&cell.fault_counts);
                health.session_retries += cell.retries;
                cells.push(cell);
            }
            None => {
                health.cells_failed += 1;
                health.failed_cells.push(outcome.label.clone());
                health.failures.push(CellFailure {
                    cell: outcome.label,
                    error: outcome
                        .panic_msg
                        .unwrap_or_else(|| "panic payload unavailable".to_string()),
                });
            }
        }
    }
    health.failed_cells.sort();
    health.failures.sort_by(|a, b| a.cell.cmp(&b.cell));

    // Deterministic output order regardless of worker scheduling.
    cells.sort_by(|a, b| {
        (a.service_id.clone(), a.os, a.medium).cmp(&(b.service_id.clone(), b.os, b.medium))
    });
    Study { cells, health }
}

/// Run the study with the configuration validated first: duplicate
/// cells, unknown services, and zero-duration campaigns come back as
/// structured errors instead of degenerate reports.
pub fn run_study_checked(cfg: &StudyConfig) -> Result<Study, StudyConfigError> {
    let catalog = Catalog::paper();
    if cfg.duration == SimDuration::ZERO {
        return Err(StudyConfigError::ZeroDuration);
    }
    // Work list: the selected cells of the full grid (48 Android / 50
    // iOS services × 2 media, Table 1), validated against the catalog.
    let work = campaign_cells(&catalog, &cfg.cells)?;
    let recon = if cfg.use_recon {
        Some(train_recon(&catalog, cfg))
    } else {
        None
    };

    // Work-stealing over cells (chunk = 1: cells are ragged — a heavy
    // web cell can cost several light app cells — so fine-grained
    // stealing beats the old static partition). Results come back in
    // work-list order, and the fold below is order-independent anyway.
    let outcomes: Vec<CellOutcome> =
        crate::exec::run_indexed(&work, cfg.workers.max(1), 1, |_, (spec, os, medium)| {
            run_cell_guarded(spec, *os, *medium, cfg, recon.as_ref())
        });
    Ok(fold_outcomes(outcomes))
}

/// Run the full study over the paper catalog.
pub fn run_study(cfg: &StudyConfig) -> Study {
    match run_study_checked(cfg) {
        Ok(study) => study,
        // Reviewed invariant: every in-tree caller passes a validated
        // config; programmatic misuse should fail loudly here.
        // lint:allow(R1) checked delegation to run_study_checked
        Err(err) => panic!("invalid StudyConfig: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> StudyConfig {
        // One simulated minute keeps unit tests fast; integration tests
        // and benches run the full four.
        StudyConfig {
            seed: 2016,
            duration: SimDuration::from_mins(1),
            workers: available_workers(),
            use_recon: false,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn study_covers_all_cells() {
        let study = run_study(&quick_cfg());
        // 49 services on Android (one iOS-only) + 49 on iOS, × 2 media.
        let android = study.cells.iter().filter(|c| c.os == Os::Android).count();
        let ios = study.cells.iter().filter(|c| c.os == Os::Ios).count();
        assert_eq!(android + ios, 196);
        // Golden path: a clean ledger with zero faults.
        assert!(study.health.is_complete());
        assert!(study.health.all_accounted());
        assert_eq!(study.health.cells_attempted, 196);
        assert_eq!(study.health.faults.total(), 0);
        assert_eq!(study.health.session_retries, 0);
        let apps = study
            .cells
            .iter()
            .filter(|c| c.medium == Medium::App)
            .count();
        assert_eq!(apps * 2, android + ios);
    }

    #[test]
    fn study_is_deterministic_across_worker_counts() {
        let seq = run_study(&StudyConfig {
            workers: 1,
            ..quick_cfg()
        });
        let par = run_study(&StudyConfig {
            workers: 4,
            ..quick_cfg()
        });
        assert_eq!(seq.cells.len(), par.cells.len());
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.service_id, b.service_id);
            assert_eq!(a.aa_flows, b.aa_flows);
            assert_eq!(a.leaked_types, b.leaked_types);
            assert_eq!(a.leak_count(), b.leak_count());
        }
    }

    #[test]
    fn chaotic_study_accounts_for_every_cell() {
        let study = run_study(&StudyConfig {
            faults: FaultPlan::moderate(),
            ..quick_cfg()
        });
        let h = &study.health;
        assert!(h.all_accounted(), "completed + failed must equal attempted");
        assert_eq!(h.cells_attempted, 196);
        assert_eq!(study.cells.len() as u64, h.cells_completed);
        assert!(h.faults.total() > 0, "a 5% plan must inject faults");
        assert!(h.session_retries > 0, "clients must have retried");
    }

    #[test]
    fn recon_training_produces_models() {
        let catalog = Catalog::paper();
        let clf = train_recon(&catalog, &quick_cfg());
        assert!(clf.domain_model_count() > 0, "per-domain models expected");
    }

    #[test]
    fn duplicate_cells_are_rejected_with_a_structured_error() {
        let cell = CellId::new("yelp", Os::Android, Medium::App);
        let cfg = StudyConfig {
            cells: CellSelection::Explicit(vec![cell.clone(), cell.clone()]),
            ..quick_cfg()
        };
        let err = run_study_checked(&cfg).expect_err("duplicate cell must be rejected");
        assert_eq!(err, StudyConfigError::DuplicateCell(cell.to_string()));
        assert_eq!(
            cfg.validate(&Catalog::paper()),
            Err(StudyConfigError::DuplicateCell("yelp/Android/App".into()))
        );
    }

    #[test]
    fn zero_duration_campaigns_are_rejected() {
        let cfg = StudyConfig {
            duration: SimDuration::ZERO,
            ..quick_cfg()
        };
        assert_eq!(
            run_study_checked(&cfg).expect_err("zero duration must be rejected"),
            StudyConfigError::ZeroDuration
        );
        assert_eq!(
            cfg.validate(&Catalog::paper()),
            Err(StudyConfigError::ZeroDuration)
        );
    }

    #[test]
    fn unknown_and_unavailable_cells_are_rejected() {
        let unknown = StudyConfig {
            cells: CellSelection::Explicit(vec![CellId::new("no-such", Os::Ios, Medium::Web)]),
            ..quick_cfg()
        };
        assert_eq!(
            run_study_checked(&unknown).expect_err("unknown service"),
            StudyConfigError::UnknownService("no-such".into())
        );
        // big-medical is the paper's iOS-only service (Table 1: 48
        // Android / 50 iOS).
        let catalog = Catalog::paper();
        let ios_only = catalog
            .all()
            .iter()
            .find(|s| !catalog.testable_on(Os::Android).any(|a| a.id == s.id))
            .expect("one iOS-only service exists");
        let unavailable = StudyConfig {
            cells: CellSelection::Explicit(vec![CellId::new(
                ios_only.id,
                Os::Android,
                Medium::App,
            )]),
            ..quick_cfg()
        };
        assert!(matches!(
            run_study_checked(&unavailable),
            Err(StudyConfigError::UnavailableCell(_))
        ));
    }

    #[test]
    fn explicit_selection_runs_exactly_those_cells_in_spec_order() {
        let cells = vec![
            CellId::new("yelp", Os::Ios, Medium::Web),
            CellId::new("yelp", Os::Ios, Medium::App),
            CellId::new("grubhub", Os::Android, Medium::App),
        ];
        let study = run_study_checked(&StudyConfig {
            cells: CellSelection::Explicit(cells.clone()),
            ..quick_cfg()
        })
        .expect("explicit selection runs");
        assert_eq!(study.cells.len(), 3);
        assert_eq!(study.health.cells_attempted, 3);
        // Output order is the deterministic sorted order, not spec order.
        let got: Vec<String> = study
            .cells
            .iter()
            .map(|c| format!("{}/{:?}/{:?}", c.service_id, c.os, c.medium))
            .collect();
        let mut expect: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn strided_selection_thins_the_grid_deterministically() {
        let catalog = Catalog::paper();
        let full = campaign_cells(&catalog, &CellSelection::All).unwrap();
        let thin = campaign_cells(&catalog, &CellSelection::Strided(4)).unwrap();
        assert_eq!(thin.len(), full.len().div_ceil(4));
        for (i, cell) in thin.iter().enumerate() {
            assert_eq!(cell.0.id, full[i * 4].0.id);
        }
        assert_eq!(
            campaign_cells(&catalog, &CellSelection::Strided(0)).unwrap_err(),
            StudyConfigError::ZeroStride
        );
    }

    #[test]
    fn cell_id_labels_roundtrip() {
        for label in ["yelp/Android/App", "bbc-news/Ios/Web"] {
            let cell = CellId::parse(label).expect("label parses");
            assert_eq!(cell.to_string(), label);
        }
        for bad in ["", "yelp", "yelp/Android", "yelp/Linux/App", "/Android/App"] {
            assert!(matches!(
                CellId::parse(bad),
                Err(StudyConfigError::BadCellLabel(_))
            ));
        }
    }

    #[test]
    fn run_cell_caught_surfaces_panic_payloads() {
        let catalog = Catalog::paper();
        let spec = catalog.get("yelp").unwrap();
        let cfg = StudyConfig {
            faults: FaultPlan {
                cell_panic: 1.0,
                ..FaultPlan::none()
            },
            ..quick_cfg()
        };
        // Silence the backtrace of the deliberate panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = run_cell_caught(spec, Os::Android, Medium::App, &cfg, None, 0);
        std::panic::set_hook(prev);
        let err = result.expect_err("pinned cell_panic must fire");
        assert!(err.contains("injected"), "payload preserved: {err}");
    }

    #[test]
    fn single_cell_run_smoke() {
        let catalog = Catalog::paper();
        let spec = catalog.get("grubhub").unwrap();
        let cell = run_cell(spec, Os::Android, Medium::App, &quick_cfg(), None);
        assert!(
            cell.leaked(),
            "Grubhub app leaks (password to taplytics at minimum)"
        );
        assert!(cell.leak_domains.contains("taplytics.com"));
    }
}
