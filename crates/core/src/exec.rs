//! A work-stealing batch executor shared by the study runner and the
//! population campaign.
//!
//! Workers claim chunks of the item list from a shared atomic cursor —
//! a chunked work queue, so a worker that finishes early steals the
//! next chunk instead of idling behind a static partition. Results
//! carry their item index back over a channel and are re-slotted into
//! input order, so the output is a pure function of `(items, f)`:
//! worker count and scheduling interleavings cannot reorder it. That is
//! the first half of the workspace's byte-determinism guarantee; the
//! second half is that every consumer folds the ordered results with
//! order-independent (or explicitly ordered) reductions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Map `f` over `items` on `workers` threads, returning results in
/// item order regardless of scheduling.
///
/// `chunk` is the steal granularity: how many consecutive items a
/// worker claims per trip to the shared cursor (clamped to ≥ 1). Small
/// chunks balance ragged workloads; larger chunks amortize contention.
/// `workers <= 1` runs inline on the caller's thread — the parallel
/// path must produce byte-identical downstream results, which
/// `tests/population_golden.rs` and the study worker-invariance tests
/// pin.
pub fn run_indexed<T, R, F>(items: &[T], workers: usize, chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let chunk = chunk.max(1);
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = start.saturating_add(chunk).min(items.len());
                for (i, item) in items.iter().enumerate().skip(start).take(end - start) {
                    // Receiver outlives every sender in this scope.
                    let _ = tx.send((i, f(i, item)));
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, result) in rx {
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(result);
            }
        }
        // Every index is sent exactly once, so this drops nothing.
        slots.into_iter().flatten().collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_item_order_for_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|v| v * 3).collect();
        for workers in [1, 2, 3, 8, 64] {
            for chunk in [1, 4, 1000] {
                let got = run_indexed(&items, workers, chunk, |_, &v| v * 3);
                assert_eq!(got, expect, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..100).collect();
        let got = run_indexed(&items, 8, 3, |i, &v| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, v);
            i
        });
        assert_eq!(got.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn handles_empty_and_single_item_lists() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_indexed(&empty, 8, 4, |_, &v| v).is_empty());
        assert_eq!(run_indexed(&[7u8], 8, 4, |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn zero_chunk_and_zero_workers_are_clamped() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(run_indexed(&items, 0, 0, |_, &v| v), items);
    }
}
