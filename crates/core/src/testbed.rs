//! One test cell's equipment.
//!
//! §3.2: each experiment uses a factory-reset phone connected to Meddle
//! over a VPN tunnel, with the interception CA installed, and a freshly
//! created account whose PII is fully known. [`Testbed::for_cell`]
//! assembles exactly that, deterministically from the experiment seed.

use appvsweb_mitm::{Meddle, MeddleConfig};
use appvsweb_netsim::{rng_labels, Device, Os, Permission, SimRng};
use appvsweb_pii::GroundTruth;
use appvsweb_services::{Medium, OriginWorld, ServiceSpec, SessionConfig, SessionRunner};
use appvsweb_tlssim::TrustStore;

/// The equipment for one (service, OS, medium) experiment.
pub struct Testbed {
    /// The origin world (first parties, trackers, exchanges).
    pub world: OriginWorld,
    /// The Meddle tunnel with TLS interception.
    pub meddle: Meddle,
    /// The factory-reset test phone.
    pub device: Device,
    /// The device's trust store: public roots + the proxy CA.
    pub device_trust: TrustStore,
    /// Ground truth for the fresh account + this device.
    pub truth: GroundTruth,
}

impl Testbed {
    /// Assemble a testbed for one cell. Each service gets its own fresh
    /// account ("a previously unused email address"); the same two
    /// phones (one per OS) serve every service, so device identifiers
    /// are stable per OS for a given seed.
    pub fn for_cell(spec: &ServiceSpec, os: Os, seed: u64) -> Self {
        let rng = SimRng::new(seed);
        let world = OriginWorld::new("PublicRoot", rng.fork(rng_labels::WORLD));
        let meddle = Meddle::new(MeddleConfig::default(), world.public_trust(), &rng);

        // Install the proxy CA on the device (the methodology step that
        // makes HTTPS interception work).
        let mut device_trust = world.public_trust();
        device_trust.add_root(&meddle.ca().root);

        let mut device_rng = rng.fork(rng_labels::DEVICE);
        let mut device = Device::factory_reset(os, &mut device_rng);
        // The testers "approved any system permission requests when
        // prompted" — grant what this service's app will ask for.
        if spec.app.requests_location {
            device.grant(Permission::Location);
        }
        device.grant(Permission::PhoneState);

        // Fresh account per service, same device identity per OS.
        let account_seed = seed ^ fnv(spec.id);
        let ids = device.ids.labelled();
        let truth =
            GroundTruth::synthetic(account_seed).with_device(os.device_model(), &ids, device.gps);

        Testbed {
            world,
            meddle,
            device,
            device_trust,
            truth,
        }
    }

    /// Run one session through this testbed.
    pub fn run_session(
        &mut self,
        spec: &ServiceSpec,
        os: Os,
        medium: Medium,
        cfg: &SessionConfig,
    ) -> appvsweb_mitm::Trace {
        let runner = SessionRunner { spec, os, medium };
        runner.run(
            &mut self.meddle,
            &mut self.world,
            &self.device_trust,
            &self.truth,
            cfg,
        )
    }
}

/// FNV-1a over a str, for deriving per-service account seeds.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use appvsweb_services::Catalog;

    #[test]
    fn testbed_is_deterministic_per_cell() {
        let catalog = Catalog::paper();
        let spec = catalog.get("yelp").unwrap();
        let a = Testbed::for_cell(spec, Os::Android, 2016);
        let b = Testbed::for_cell(spec, Os::Android, 2016);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.device.ids, b.device.ids);
    }

    #[test]
    fn accounts_differ_per_service_but_device_is_shared() {
        let catalog = Catalog::paper();
        let yelp = Testbed::for_cell(catalog.get("yelp").unwrap(), Os::Ios, 2016);
        let grubhub = Testbed::for_cell(catalog.get("grubhub").unwrap(), Os::Ios, 2016);
        assert_ne!(
            yelp.truth.email, grubhub.truth.email,
            "fresh account per service"
        );
        assert_eq!(
            yelp.device.ids, grubhub.device.ids,
            "same phone for every service"
        );
    }

    #[test]
    fn proxy_ca_is_trusted_by_device() {
        let catalog = Catalog::paper();
        let tb = Testbed::for_cell(catalog.get("yelp").unwrap(), Os::Android, 1);
        assert!(tb.device_trust.trusts_key(tb.meddle.ca().root.key));
    }

    #[test]
    fn session_runs_end_to_end() {
        let catalog = Catalog::paper();
        let spec = catalog.get("weather-channel").unwrap();
        let mut tb = Testbed::for_cell(spec, Os::Android, 2016);
        let trace = tb.run_session(spec, Os::Android, Medium::App, &SessionConfig::default());
        assert!(!trace.transactions.is_empty());
    }
}
