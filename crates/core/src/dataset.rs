//! Dataset export.
//!
//! The paper makes "our dataset and code available" at the project page;
//! the reproduction does the same by serializing the full [`Study`]
//! (every cell's leak events, per-type and per-domain aggregates, and
//! traffic counters) as JSON.

use appvsweb_analysis::Study;

/// Serialize a study to pretty JSON.
pub fn to_json(study: &Study) -> String {
    appvsweb_json::encode_pretty(study)
}

/// Parse a study back from JSON.
pub fn from_json(text: &str) -> Result<Study, appvsweb_json::JsonError> {
    appvsweb_json::decode(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{run_cell, StudyConfig};
    use appvsweb_netsim::{Os, SimDuration};
    use appvsweb_services::{Catalog, Medium};

    #[test]
    fn json_roundtrip_preserves_cells() {
        let catalog = Catalog::paper();
        let cfg = StudyConfig {
            duration: SimDuration::from_secs(30),
            use_recon: false,
            ..Default::default()
        };
        let cell = run_cell(
            catalog.get("yelp").unwrap(),
            Os::Ios,
            Medium::Web,
            &cfg,
            None,
        );
        let study = Study {
            cells: vec![cell],
            health: Default::default(),
        };
        let json = to_json(&study);
        let parsed = from_json(&json).unwrap();
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.cells[0].service_id, "yelp");
        assert_eq!(parsed.cells[0].aa_flows, study.cells[0].aa_flows);
        assert_eq!(parsed.cells[0].leaked_types, study.cells[0].leaked_types);
    }
}
