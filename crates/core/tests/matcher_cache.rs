//! Pins the compiled-dictionary cache guarantee: one Aho–Corasick build
//! per distinct ground-truth identity per study, zero rebuilds on a
//! repeat run. This is the fix for the old per-cell
//! `GroundTruthMatcher::new` rebuild (each ~ms of automaton
//! construction, 196 times per campaign).
//!
//! Lives in its own test binary: the build/hit counters are
//! process-wide, so the assertions must not race unrelated tests that
//! compile dictionaries of their own.

use appvsweb_core::study::{run_study, StudyConfig};
use appvsweb_netsim::SimDuration;
use appvsweb_pii::cache;

#[test]
fn study_compiles_each_identity_once() {
    // A seed no other fixture uses, so every identity in this study is
    // cold in the process-wide cache when the test starts.
    let cfg = StudyConfig {
        seed: 0x00D1_C7CA,
        duration: SimDuration::from_mins(1),
        use_recon: false,
        workers: 1,
        ..StudyConfig::default()
    };

    let before = cache::stats();
    let first = run_study(&cfg);
    let mid = cache::stats();
    let cells = first.cells.len() as u64;
    // One build per (service, OS) identity — the two mediums of each
    // identity share a single compilation.
    assert_eq!(
        mid.builds - before.builds,
        cells / 2,
        "expected exactly one dictionary build per distinct identity"
    );
    assert!(
        mid.hits - before.hits >= cells / 2,
        "remaining cells must hit the cache"
    );

    // An identical second study performs zero automaton builds.
    let second = run_study(&cfg);
    let after = cache::stats();
    assert_eq!(
        after.builds, mid.builds,
        "repeat study must not recompile any dictionary"
    );
    assert!(after.hits - mid.hits >= cells);

    // And sharing the compiled dictionary does not perturb results.
    assert_eq!(
        appvsweb_json::encode(&first),
        appvsweb_json::encode(&second)
    );
}
