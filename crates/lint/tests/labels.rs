//! The acceptance check for rule D3: the label table the lint emits for
//! the *real* workspace must match the canonical `rng_labels` tables
//! exactly — complete, duplicate-free, and with every stream
//! independent under a fixed seed.

use appvsweb_lint::{analyze_files, collect_workspace};
use appvsweb_netsim::{rng_labels, SimRng};
use std::collections::BTreeSet;
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn emitted_label_table_matches_rng_labels_exactly() {
    let files = collect_workspace(workspace_root()).expect("workspace readable");
    let report = analyze_files(&files);

    let emitted: Vec<&str> = report.labels.iter().map(|l| l.label.as_str()).collect();
    let unique: BTreeSet<&str> = emitted.iter().copied().collect();
    assert_eq!(
        emitted.len(),
        unique.len(),
        "duplicate fork labels in the workspace: {emitted:?}"
    );

    let canonical: BTreeSet<&str> = rng_labels::STATIC
        .iter()
        .chain(rng_labels::DYNAMIC_PREFIXES)
        .copied()
        .collect();
    assert_eq!(
        unique, canonical,
        "lint label table diverged from rng_labels; register new labels there"
    );
}

#[test]
fn every_label_forks_an_independent_stream() {
    // Same parent seed, different labels ⇒ different draws. A collision
    // here would mean two subsystems silently share entropy.
    let labels: Vec<String> = rng_labels::STATIC
        .iter()
        .map(|l| l.to_string())
        .chain([
            rng_labels::session("svc", "Android", "App"),
            rng_labels::cell_panic("svc", "Android", "App", 1),
            rng_labels::device_ids("iOS"),
        ])
        .collect();
    let draws: Vec<u64> = labels
        .iter()
        .map(|l| SimRng::new(0xA11CE).fork(l).next_u64())
        .collect();
    let unique: BTreeSet<u64> = draws.iter().copied().collect();
    assert_eq!(
        unique.len(),
        draws.len(),
        "two labels produced identical first draws: {labels:?}"
    );
}
