//! The lint must pass its own rules (ISSUE 3 satellite): analyzing the
//! `crates/lint` sources with the full pipeline yields zero findings,
//! which is also what keeps the committed baseline empty.

use appvsweb_lint::{analyze_files, collect_workspace};
use std::path::Path;

#[test]
fn lint_crate_passes_its_own_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root");
    let files: Vec<_> = collect_workspace(root)
        .expect("workspace readable")
        .into_iter()
        .filter(|f| f.path.starts_with("crates/lint/"))
        .collect();
    assert!(!files.is_empty(), "lint sources not found");
    let report = analyze_files(&files);
    assert!(
        report.findings.is_empty(),
        "the lint does not pass its own rules: {:#?}",
        report.findings
    );
}

#[test]
fn whole_workspace_is_clean() {
    // Stronger than the baseline gate: the workspace currently has zero
    // findings at all, so any new violation shows up both here and in
    // `--check`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let files = collect_workspace(root).expect("workspace readable");
    let report = analyze_files(&files);
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings: {:#?}",
        report.findings
    );
}
