//! Baseline workflow tests: fingerprint matching is line-independent
//! and multiset-aware, and the JSON document round-trips.

use appvsweb_lint::{analyze_files, Baseline, SourceFile};

fn report_for(text: &str) -> appvsweb_lint::Report {
    analyze_files(&[SourceFile {
        path: "crates/x/src/lib.rs".to_string(),
        text: text.to_string(),
    }])
}

#[test]
fn baseline_accepts_known_findings_and_flags_new_ones() {
    let v1 = "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let baseline = Baseline::from_report(&report_for(v1));
    assert!(baseline.diff(&report_for(v1)).new.is_empty());

    // Adding lines *above* the site must not churn the match: the
    // fingerprint keys on tokens, not line numbers.
    let v2 = "fn pad() {}\n\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let diff = baseline.diff(&report_for(v2));
    assert!(
        diff.new.is_empty(),
        "line shift broke the match: {:?}",
        diff.new
    );
    assert!(diff.stale.is_empty());

    // A genuinely new violation is new.
    let v3 = "fn f(v: Option<u8>) -> u8 { v.unwrap() }\nfn g() { panic!(\"boom\"); }\n";
    let diff = baseline.diff(&report_for(v3));
    assert_eq!(diff.new.len(), 1);
    assert_eq!(diff.new[0].rule, "R1");
}

#[test]
fn matching_is_multiset_aware() {
    // Two identical sites need two baseline entries.
    let one = "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let two =
        "fn f(v: Option<u8>) -> u8 { v.unwrap() }\nfn g(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let baseline_one = Baseline::from_report(&report_for(one));
    let diff = baseline_one.diff(&report_for(two));
    assert_eq!(diff.new.len(), 1, "second identical site must count as new");

    // And fixing one of two leaves one stale entry.
    let baseline_two = Baseline::from_report(&report_for(two));
    let diff = baseline_two.diff(&report_for(one));
    assert!(diff.new.is_empty());
    assert_eq!(diff.stale.len(), 1);
}

#[test]
fn baseline_document_round_trips() {
    let baseline = Baseline::from_report(&report_for("fn f(v: Option<u8>) -> u8 { v.unwrap() }\n"));
    let text = baseline.to_json_text();
    let parsed = Baseline::from_json_text(&text).expect("well-formed document");
    assert_eq!(parsed, baseline);
    // An empty baseline (the committed state) parses too.
    let empty = Baseline::default().to_json_text();
    assert_eq!(
        Baseline::from_json_text(&empty).expect("empty ok"),
        Baseline::default()
    );
}
