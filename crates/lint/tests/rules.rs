//! Per-rule fixture tests: one positive and one negative fixture per
//! rule, all run through the real [`analyze_files`] pipeline so the
//! classification, test-region, and annotation layers are exercised too.
//!
//! Fixtures live in string literals, which the workspace-wide lint run
//! lexes as single opaque tokens — so nothing here pollutes the real
//! label table or baseline.

use appvsweb_lint::{analyze_files, SourceFile};

fn file(path: &str, text: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        text: text.to_string(),
    }
}

/// Rules of every finding when analyzing a single library file.
fn lib_rules(text: &str) -> Vec<String> {
    rules_of(&[file("crates/x/src/lib.rs", text)])
}

fn rules_of(files: &[SourceFile]) -> Vec<String> {
    analyze_files(files)
        .findings
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// ---------------------------------------------------------------- D1 --

#[test]
fn d1_flags_wall_clocks_in_library_code() {
    assert_eq!(
        lib_rules("fn f() { let t = std::time::Instant::now(); }"),
        ["D1"]
    );
    // Two hits on one line collapse into one finding.
    assert_eq!(
        lib_rules("fn f() -> SystemTime { SystemTime::now() }"),
        ["D1"]
    );
}

#[test]
fn d1_waived_for_bench_and_test_code() {
    let body = "fn f() { let t = std::time::Instant::now(); }";
    assert!(rules_of(&[file("crates/bench/src/repro.rs", body)]).is_empty());
    assert!(rules_of(&[file("crates/x/benches/speed.rs", body)]).is_empty());
    assert!(rules_of(&[file("crates/x/tests/integration.rs", body)]).is_empty());
    // In-file test regions are exempt too.
    let in_test_mod =
        "#[cfg(test)]\nmod tests {\n    fn f() { let t = std::time::Instant::now(); }\n}\n";
    assert!(lib_rules(in_test_mod).is_empty());
}

#[test]
fn d1_not_waived_under_cfg_not_test() {
    let live = "#[cfg(not(test))]\nfn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(lib_rules(live), ["D1"]);
}

// ---------------------------------------------------------------- D2 --

#[test]
fn d2_flags_unordered_hash_iteration() {
    let src = "use std::collections::HashMap;\n\
               fn sum(m: HashMap<String, u32>) -> u32 {\n\
                   let mut total = 0;\n\
                   for (_k, v) in m.iter() { total += v; }\n\
                   total\n\
               }\n";
    assert_eq!(lib_rules(src), ["D2"]);
}

#[test]
fn d2_accepts_sorted_iteration_and_btreemap() {
    let sorted = "use std::collections::HashMap;\n\
                  fn keys(m: HashMap<String, u32>) -> Vec<String> {\n\
                      let mut out: Vec<String> = m.keys().cloned().collect();\n\
                      out.sort();\n\
                      out\n\
                  }\n";
    assert!(lib_rules(sorted).is_empty());
    let btree = "use std::collections::BTreeMap;\n\
                 fn sum(m: BTreeMap<String, u32>) -> u32 { m.values().sum() }\n";
    assert!(lib_rules(btree).is_empty());
}

// ---------------------------------------------------------------- D3 --

#[test]
fn d3_flags_ad_hoc_dynamic_fork_labels() {
    let src = "fn f(rng: &mut SimRng, n: u32) {\n\
                   let child = rng.fork(&format!(\"stream-{n}\"));\n\
               }\n";
    assert_eq!(lib_rules(src), ["D3"]);
}

#[test]
fn d3_accepts_literals_and_rng_labels_builders() {
    let src = "fn f(rng: &mut SimRng) {\n\
                   let a = rng.fork(\"alpha\");\n\
                   let b = rng.fork(rng_labels::WORLD);\n\
                   let c = rng.fork(&rng_labels::session(\"svc\", 1, 2));\n\
               }\n";
    let report = analyze_files(&[file("crates/x/src/lib.rs", src)]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    // The literal label lands in the table; the rng_labels uses do not
    // (they are declared once in rng_labels.rs).
    assert_eq!(report.labels.len(), 1);
    assert_eq!(report.labels[0].label, "alpha");
}

#[test]
fn d3_collects_rng_labels_constants_and_rejects_duplicates() {
    let consts = "pub const A: &str = \"alpha\";\npub const B: &str = \"beta\";\n";
    let user = "fn f(rng: &mut SimRng) { let r = rng.fork(\"alpha\"); }\n";
    let report = analyze_files(&[
        file("crates/netsim/src/rng_labels.rs", consts),
        file("crates/x/src/lib.rs", user),
    ]);
    // "alpha" appears both as a constant and as a raw fork literal: a
    // duplicate, caught by the cross-file uniqueness pass.
    let labels: Vec<&str> = report.labels.iter().map(|l| l.label.as_str()).collect();
    assert_eq!(labels, ["alpha", "alpha", "beta"]);
    assert_eq!(rules_of_report(&report), ["D3"]);
}

fn rules_of_report(report: &appvsweb_lint::Report) -> Vec<String> {
    report.findings.iter().map(|f| f.rule.clone()).collect()
}

// ---------------------------------------------------------------- R1 --

#[test]
fn r1_flags_panicking_paths() {
    assert_eq!(
        lib_rules("fn f(v: Option<u8>) -> u8 { v.unwrap() }"),
        ["R1"]
    );
    assert_eq!(
        lib_rules("fn f(v: Option<u8>) -> u8 { v.expect(\"present\") }"),
        ["R1"]
    );
    assert_eq!(lib_rules("fn f() { panic!(\"boom\"); }"), ["R1"]);
    assert_eq!(lib_rules("fn f(v: &[u8]) -> u8 { v[0] }"), ["R1"]);
}

#[test]
fn r1_ignores_non_panicking_lookalikes() {
    // A parser's `self.expect(b'{')` is not Option::expect.
    assert!(lib_rules("fn f(p: &mut P) { p.expect(b'{'); }").is_empty());
    // Variable indices are usually loop-bounded; only literals flagged.
    assert!(lib_rules("fn f(v: &[u8], i: usize) -> u8 { v[i] }").is_empty());
    // Panic-free alternatives pass.
    assert!(lib_rules("fn f(v: &[u8]) -> u8 { v.first().copied().unwrap_or(0) }").is_empty());
}

#[test]
fn r1_respects_inline_allow_annotations() {
    let annotated = "fn f(v: Option<u8>) -> u8 {\n\
                     // lint:allow(R1) reviewed invariant: v is Some by construction\n\
                     v.unwrap()\n\
                     }\n";
    assert!(lib_rules(annotated).is_empty());
}

#[test]
fn malformed_allow_annotations_are_findings() {
    // Unknown rule id.
    let unknown = "// lint:allow(R9) not a rule\nfn f() {}\n";
    assert_eq!(lib_rules(unknown), ["LINT"]);
    // Missing reason.
    let reasonless = "fn f(v: Option<u8>) -> u8 {\n\
                      // lint:allow(R1)\n\
                      v.unwrap()\n\
                      }\n";
    assert_eq!(lib_rules(reasonless), ["LINT", "R1"]);
}

// ---------------------------------------------------------------- R2 --

#[test]
fn r2_flags_hand_rolled_json_impls_outside_json_crate() {
    let src = "impl appvsweb_json::ToJson for Foo {\n\
                   fn to_json(&self) -> Json { Json::Null }\n\
               }\n";
    assert_eq!(lib_rules(src), ["R2"]);
    // The json crate itself provides the blanket impls.
    assert!(rules_of(&[file("crates/json/src/convert.rs", src)]).is_empty());
}

#[test]
fn r2_accepts_impl_json_macro() {
    let src = "appvsweb_json::impl_json!(struct Foo { a, b });\n";
    assert!(lib_rules(src).is_empty());
}

// ---------------------------------------------------------------- S1 --

#[test]
fn s1_flags_partial_cmp_in_analysis_only() {
    let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
    let in_analysis = rules_of(&[file("crates/analysis/src/stats.rs", src)]);
    assert_eq!(in_analysis, ["R1", "S1"]);
    // Outside the analysis crate only the unwrap is an issue.
    assert_eq!(lib_rules(src), ["R1"]);
    // total_cmp passes.
    let total = "fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }";
    assert!(rules_of(&[file("crates/analysis/src/stats.rs", total)]).is_empty());
}
