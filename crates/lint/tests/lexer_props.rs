//! Property tests for the lint lexer: it must be *total* (never panic,
//! whatever bytes arrive) and *lossless* (token concatenation
//! reconstructs the input byte-for-byte), because every rule and the
//! baseline fingerprints build on those two guarantees.

use appvsweb_lint::lex;
use appvsweb_testkit::{gen, prop_test, Gen, SimRng};

/// Strings biased toward lexer-interesting shapes: quotes, comment
/// openers, raw-string hashes, lifetimes, numbers with underscores.
fn tricky_strings() -> impl Gen<Value = String> {
    gen::from_fn(|rng: &mut SimRng| {
        const PIECES: &[&str] = &[
            "\"",
            "'",
            "r#\"",
            "\"#",
            "r#",
            "#",
            "//",
            "/*",
            "*/",
            "b\"",
            "br#\"",
            "'a",
            "'\\''",
            "0x_f",
            "1_000.5e-3",
            "..",
            "::",
            "ident",
            "\\",
            "\n",
            " ",
            "\u{2603}",
            "0.",
            "'x'",
        ];
        let n = rng.below(12);
        let mut out = String::new();
        for _ in 0..n {
            out.push_str(PIECES[rng.below(PIECES.len() as u64) as usize]);
        }
        out
    })
}

prop_test! {
    fn lexing_printable_strings_is_lossless(s in gen::printable_strings(0..=120)) {
        let rebuilt: String = lex(&s).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, s, "lexer dropped or altered bytes");
    }

    fn lexing_tricky_strings_never_panics_and_is_lossless(s in tricky_strings()) {
        let rebuilt: String = lex(&s).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, s, "lexer dropped or altered bytes");
    }

    fn lexing_arbitrary_bytes_never_panics(raw in gen::bytes(0..=160)) {
        // Arbitrary bytes, lossily decoded: exercises multi-byte
        // boundaries, stray continuation bytes, and embedded NULs.
        let s = String::from_utf8_lossy(&raw);
        let rebuilt: String = lex(&s).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, s, "lexer dropped or altered bytes");
    }

    fn token_lines_are_monotonic(s in tricky_strings()) {
        let toks = lex(&s);
        for pair in toks.windows(2) {
            assert!(pair[0].line <= pair[1].line, "line numbers went backwards");
        }
    }
}
