//! The interprocedural passes over the workspace call graph: T1 PII
//! taint, R1x transitive panic-reachability, and D3x RNG stream
//! discipline.
//!
//! All three are deliberately *static over-approximations* whose
//! soundness caveats are documented in DESIGN §10; each finding can be
//! waived with a reviewed `lint:allow` annotation naming `T1`, `R1x`,
//! or `D3x` at the reported line, exactly like the file-local rules.
//!
//! * **T1** — the paper's leak analysis turned on our own code: a
//!   function that *handles PII* (its signature mentions a type defined
//!   in `pii::types`/`pii::profile`, or it directly calls a
//!   `pii::profile` constructor) must not reach a serialization, byte-
//!   encoding, or socket sink except through the audited `mitm`
//!   recording path. Traversal stops at other PII handlers (each owns
//!   its own flow) and at `mitm`; one finding per handler, carrying the
//!   shortest offending path.
//! * **R1x** — any function reachable from `serve::runner` workers or
//!   `core::study` cell execution whose body can panic (`unwrap`,
//!   `expect`, panic-family macros, literal indexing) is flagged,
//!   unless the site carries a reviewed allow for `R1` or `R1x`, or
//!   the path crosses a `catch_unwind` boundary.
//! * **D3x** — every `rng_labels` item is forked from exactly one
//!   statically-known scope, and no `SimRng` value is stashed in a
//!   struct field outside the `netsim` substrate (field storage is how
//!   a stream escapes its fork scope and crosses cell boundaries).

use crate::callgraph::CallGraph;
use crate::engine::{rule_applies, FileClass, Finding};
use crate::parse::FileTable;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Where PII model types and their constructors live.
const PII_MODULES: &[&str] = &["appvsweb_pii::types", "appvsweb_pii::profile"];
/// Functions originating PII values: the profile constructors/accessors.
const PII_SOURCE_PREFIX: &str = "appvsweb_pii::profile::";
/// The audited recording path: flows through here are the measurement.
const AUDITED_PREFIX: &str = "appvsweb_mitm::";
/// Crates whose internals are the serializer itself, not a flow.
const SINK_HOME_PREFIX: &str = "appvsweb_json::";

/// Roots of R1x reachability: the serve worker loop and the study-cell
/// execution path — a panic here kills a worker or poisons a cell.
const R1X_ROOT_PREFIXES: &[&str] = &[
    "appvsweb_serve::runner::",
    "appvsweb_core::study::run_cell",
    "appvsweb_core::study::run_study",
];

/// Is this node a T1 sink (serialization / wire-byte / socket)?
fn is_sink(qual: &str, name: &str) -> bool {
    (qual.starts_with("appvsweb_json::")
        && matches!(
            name,
            "encode" | "encode_pretty" | "to_compact" | "to_pretty" | "to_json"
        ))
        || (qual.starts_with("appvsweb_httpsim::wire::") && name.starts_with("serialize"))
        || (qual.starts_with("appvsweb_httpsim::codec::")
            && (name.contains("encode") || name == "form_urlencode"))
        || (qual.starts_with("appvsweb_netsim::tcp::") && name == "send")
}

/// Everything the workspace passes need, assembled by the engine.
pub struct PassCtx<'a> {
    /// Per-file item tables, sorted by path.
    pub tables: &'a [FileTable],
    /// File class per table (parallel).
    pub classes: &'a [FileClass],
    /// Valid `lint:allow` annotations per table (parallel): line → rules.
    pub allows: &'a [BTreeMap<u32, Vec<String>>],
    /// The workspace call graph over `tables`.
    pub graph: &'a CallGraph<'a>,
}

impl PassCtx<'_> {
    /// Is `rule` waived at `line` of table `ti` by an inline annotation?
    fn allowed(&self, ti: usize, rule: &str, line: u64) -> bool {
        let line = line as u32;
        self.allows.get(ti).is_some_and(|map| {
            [line, line.saturating_sub(1)].iter().any(|l| {
                map.get(l)
                    .is_some_and(|rules| rules.iter().any(|r| r == rule))
            })
        })
    }

    /// Emit unless class-waived or annotation-suppressed; suppressions
    /// are tallied per rule so the bench meta can report them.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        findings: &mut Vec<Finding>,
        suppressed: &mut BTreeMap<String, u64>,
        rule: &str,
        ti: usize,
        line: u64,
        message: String,
        fingerprint: String,
    ) {
        let class = self.classes.get(ti).copied().unwrap_or(FileClass::Lib);
        if !rule_applies(rule, class) {
            return;
        }
        if self.allowed(ti, rule, line) {
            *suppressed.entry(rule.to_string()).or_insert(0) += 1;
            return;
        }
        let path = self
            .tables
            .get(ti)
            .map(|t| t.path.clone())
            .unwrap_or_default();
        findings.push(Finding {
            rule: rule.to_string(),
            path,
            line,
            message,
            fingerprint,
        });
    }

    /// A node participates in workspace analyses only when it is live
    /// library/tool code (not tests, not `#[cfg(test)]` regions).
    fn live(&self, node: usize) -> bool {
        let Some(f) = self.graph.fns.get(node) else {
            return false;
        };
        if f.in_test {
            return false;
        }
        let ti = self.graph.file_of.get(node).copied().unwrap_or(usize::MAX);
        !matches!(self.classes.get(ti), Some(FileClass::Test) | None)
    }
}

/// Run all three workspace passes, appending findings (unsorted; the
/// engine sorts the merged set) and tallying suppressed sites.
pub fn run_workspace_passes(
    ctx: &PassCtx<'_>,
    findings: &mut Vec<Finding>,
    suppressed: &mut BTreeMap<String, u64>,
) {
    pass_t1_pii_taint(ctx, findings, suppressed);
    pass_r1x_panic_reachability(ctx, findings, suppressed);
    pass_d3x_stream_discipline(ctx, findings, suppressed);
}

// ---------------------------------------------------------------- T1 --

fn pass_t1_pii_taint(
    ctx: &PassCtx<'_>,
    findings: &mut Vec<Finding>,
    suppressed: &mut BTreeMap<String, u64>,
) {
    let graph = ctx.graph;
    // PII model types, discovered from the item tables.
    let pii_types: BTreeSet<&str> = ctx
        .tables
        .iter()
        .flat_map(|t| t.types.iter())
        .filter(|ty| {
            PII_MODULES
                .iter()
                .any(|m| ty.qual == format!("{m}::{}", ty.name))
        })
        .map(|ty| ty.name.as_str())
        .collect();
    if pii_types.is_empty() {
        return; // nothing to track (synthetic workspaces without pii)
    }

    // Classify every node once.
    let n = graph.fns.len();
    let mut handles_pii = vec![false; n];
    let mut audited = vec![false; n];
    let mut sink = vec![false; n];
    for (idx, f) in graph.fns.iter().enumerate() {
        audited[idx] = f.qual.starts_with(AUDITED_PREFIX);
        sink[idx] = is_sink(&f.qual, &f.name);
        let sig_mentions = f
            .sig_types
            .iter()
            .chain(f.ret_types.iter())
            .any(|t| pii_types.contains(t.as_str()));
        let calls_source = graph
            .edges
            .get(idx)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .any(|e| {
                graph
                    .fns
                    .get(e.to)
                    .is_some_and(|g| g.qual.starts_with(PII_SOURCE_PREFIX))
            });
        handles_pii[idx] = sig_mentions || calls_source;
    }

    for carrier in 0..n {
        if !handles_pii[carrier] || !ctx.live(carrier) {
            continue;
        }
        let cf = &graph.fns[carrier];
        // The serializer's own internals and the audited recorder are
        // exempt carriers; everything else owns its flows.
        if audited[carrier] || cf.qual.starts_with(SINK_HOME_PREFIX) {
            continue;
        }
        // BFS through helper functions: stop at audited nodes and at
        // other PII handlers (each handler owns its own flows), report
        // the first (= shortest-path) sink reached outside `mitm`.
        let mut seen = vec![false; n];
        seen[carrier] = true;
        let mut queue: VecDeque<usize> = VecDeque::from([carrier]);
        let mut hit: Option<usize> = None;
        'bfs: while let Some(node) = queue.pop_front() {
            for e in graph.edges.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.get(e.to).copied().unwrap_or(true) || !ctx.live(e.to) {
                    continue;
                }
                seen[e.to] = true;
                if audited[e.to] {
                    continue; // flows through mitm are the measurement
                }
                if sink[e.to] {
                    hit = Some(e.to);
                    break 'bfs;
                }
                if handles_pii[e.to] {
                    continue; // that handler owns its own flows
                }
                queue.push_back(e.to);
            }
        }
        let Some(sink_node) = hit else {
            continue;
        };
        let sf = &graph.fns[sink_node];
        let path = graph.path_between(carrier, sink_node).join(" -> ");
        let ti = graph.file_of[carrier];
        ctx.emit(
            findings,
            suppressed,
            "T1",
            ti,
            cf.line,
            format!(
                "PII handled by `{}` can reach sink `{}` without passing the audited \
                 mitm recording path ({path}); route the flow through mitm or annotate \
                 the reviewed design",
                cf.qual, sf.qual
            ),
            format!("T1|{}|{}->{}", ctx.tables[ti].path, cf.qual, sf.qual),
        );
    }
}

// --------------------------------------------------------------- R1x --

fn pass_r1x_panic_reachability(
    ctx: &PassCtx<'_>,
    findings: &mut Vec<Finding>,
    suppressed: &mut BTreeMap<String, u64>,
) {
    let graph = ctx.graph;
    let n = graph.fns.len();
    // Deterministic root set: sorted node order.
    let mut roots: Vec<usize> = (0..n)
        .filter(|&i| {
            ctx.live(i)
                && R1X_ROOT_PREFIXES
                    .iter()
                    .any(|p| graph.fns[i].qual.starts_with(p))
        })
        .collect();
    roots.sort_unstable();
    if roots.is_empty() {
        return;
    }

    // Forward reachability from the roots, not descending past
    // `catch_unwind` boundaries (panics below them are absorbed).
    let mut reach_from: Vec<Option<usize>> = vec![None; n]; // first root reaching the node
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in &roots {
        if reach_from[r].is_none() {
            reach_from[r] = Some(r);
            queue.push_back(r);
        }
    }
    while let Some(node) = queue.pop_front() {
        if graph.fns[node].catches_unwind {
            continue; // boundary: callee panics do not escape
        }
        let root = reach_from[node];
        for e in graph.edges.get(node).map(Vec::as_slice).unwrap_or(&[]) {
            if reach_from[e.to].is_none() && ctx.live(e.to) {
                reach_from[e.to] = root;
                queue.push_back(e.to);
            }
        }
    }

    for (node, reached) in reach_from.iter().enumerate() {
        let Some(root) = *reached else {
            continue;
        };
        let f = &graph.fns[node];
        let ti = graph.file_of[node];
        for p in &f.panics {
            if p.allowed {
                *suppressed.entry("R1x".to_string()).or_insert(0) += 1;
                continue;
            }
            let via = if root == node {
                String::new()
            } else {
                format!(
                    " (reachable from `{}` via {})",
                    graph.fns[root].qual,
                    graph.path_between(root, node).join(" -> ")
                )
            };
            ctx.emit(
                findings,
                suppressed,
                "R1x",
                ti,
                p.line,
                format!(
                    "`{}` can panic ({}) and worker/cell execution reaches it{via}; \
                     return a typed error or annotate the reviewed invariant",
                    f.qual, p.kind
                ),
                format!("R1x|{}|{}|{}", ctx.tables[ti].path, f.qual, p.kind),
            );
        }
    }
}

// --------------------------------------------------------------- D3x --

fn pass_d3x_stream_discipline(
    ctx: &PassCtx<'_>,
    findings: &mut Vec<Finding>,
    suppressed: &mut BTreeMap<String, u64>,
) {
    let graph = ctx.graph;
    // (a) every rng_labels item is forked from exactly one scope.
    let mut sites: BTreeMap<&str, Vec<(usize, u64)>> = BTreeMap::new(); // item → (node, line)
    for (idx, f) in graph.fns.iter().enumerate() {
        if !ctx.live(idx) {
            continue;
        }
        for fork in &f.forks {
            if !fork.label_item.is_empty() {
                sites
                    .entry(fork.label_item.as_str())
                    .or_default()
                    .push((idx, fork.line));
            }
        }
    }
    for (item, mut uses) in sites {
        if uses.len() <= 1 {
            continue;
        }
        uses.sort_by(|a, b| {
            let pa = &ctx.tables[graph.file_of[a.0]].path;
            let pb = &ctx.tables[graph.file_of[b.0]].path;
            pa.cmp(pb).then(a.1.cmp(&b.1))
        });
        let total = uses.len();
        let first = uses
            .first()
            .map(|u| ctx.tables[graph.file_of[u.0]].path.clone())
            .unwrap_or_default();
        for &(node, line) in uses.iter().skip(1) {
            let ti = graph.file_of[node];
            ctx.emit(
                findings,
                suppressed,
                "D3x",
                ti,
                line,
                format!(
                    "`rng_labels::{item}` is forked from {total} scopes (first: {first}); \
                     a stream label must have exactly one statically-known fork scope or \
                     the streams collide",
                ),
                format!("D3x|{}|fork:{item}", ctx.tables[ti].path),
            );
        }
    }

    // (b) no SimRng stashed in struct fields outside the netsim
    // substrate: field storage lets a stream outlive its fork scope and
    // cross cell boundaries.
    for (ti, table) in ctx.tables.iter().enumerate() {
        if table.module.starts_with("appvsweb_netsim") {
            continue;
        }
        for ty in &table.types {
            if ty.field_types.iter().any(|t| t == "SimRng") {
                ctx.emit(
                    findings,
                    suppressed,
                    "D3x",
                    ti,
                    ty.line,
                    format!(
                        "`{}` stores a SimRng in a field outside the netsim substrate; \
                         a stashed stream outlives its fork scope and can cross cell \
                         boundaries — thread it as `&mut SimRng` or annotate the \
                         reviewed ownership",
                        ty.qual
                    ),
                    format!("D3x|{}|field:{}", table.path, ty.qual),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{classify, sig_view_of};
    use crate::parse::parse_file;

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let tables: Vec<FileTable> = files
            .iter()
            .map(|(p, s)| parse_file(p, &sig_view_of(s), &[], &BTreeMap::new()))
            .collect();
        let classes: Vec<FileClass> = files.iter().map(|(p, _)| classify(p)).collect();
        let allows: Vec<BTreeMap<u32, Vec<String>>> =
            files.iter().map(|_| BTreeMap::new()).collect();
        let graph = CallGraph::build(&tables);
        let ctx = PassCtx {
            tables: &tables,
            classes: &classes,
            allows: &allows,
            graph: &graph,
        };
        let mut findings = Vec::new();
        let mut suppressed = BTreeMap::new();
        run_workspace_passes(&ctx, &mut findings, &mut suppressed);
        findings
    }

    #[test]
    fn t1_flags_flow_around_mitm_but_not_through_it() {
        let findings = analyze(&[
            (
                "crates/pii/src/profile.rs",
                "pub struct GroundTruth { pub email: String }\n\
                 impl GroundTruth { pub fn synthetic(_s: u64) -> GroundTruth { GroundTruth { email: String::new() } } }",
            ),
            (
                "crates/json/src/lib.rs",
                "pub fn encode_pretty(_v: &str) -> String { String::new() }",
            ),
            (
                "crates/mitm/src/har.rs",
                "pub fn record(t: &str) { appvsweb_json::encode_pretty(t); }",
            ),
            (
                "crates/demo/src/lib.rs",
                "use appvsweb_pii::profile::GroundTruth;\n\
                 pub fn leaky(truth: &GroundTruth) { relay(&truth.email); }\n\
                 fn relay(v: &str) { appvsweb_json::encode_pretty(v); }\n\
                 pub fn clean(truth: &GroundTruth) { appvsweb_mitm::har::record(&truth.email); }",
            ),
        ]);
        let t1: Vec<&Finding> = findings.iter().filter(|f| f.rule == "T1").collect();
        assert_eq!(t1.len(), 1, "{findings:?}");
        assert_eq!(t1[0].path, "crates/demo/src/lib.rs");
        assert!(t1[0].message.contains("leaky"));
        assert!(t1[0].message.contains("encode_pretty"));
    }

    #[test]
    fn r1x_flags_reachable_panics_and_respects_boundaries() {
        let findings = analyze(&[
            (
                "crates/serve/src/runner.rs",
                "pub fn run_job() { helper::step(); helper::guarded(); }",
            ),
            (
                "crates/serve/src/helper.rs",
                "pub fn step() { deep() }\n\
                 fn deep() { let v: Vec<u64> = Vec::new(); v.first().unwrap(); }\n\
                 pub fn guarded() { let _ = std::panic::catch_unwind(|| absorbed()); }\n\
                 fn absorbed() { panic!(\"caught\") }\n\
                 pub fn unreached() { panic!(\"dead\") }",
            ),
        ]);
        let r1x: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R1x").collect();
        assert_eq!(r1x.len(), 1, "{findings:?}");
        assert!(r1x[0].message.contains("deep"));
        assert!(r1x[0].message.contains("unwrap"));
        assert!(r1x[0].message.contains("run_job"));
    }

    #[test]
    fn d3x_flags_duplicate_fork_scopes_and_stashed_rng() {
        let findings = analyze(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Holder { rng: SimRng }\n\
                 pub fn f(r: &mut SimRng) { r.fork(rng_labels::WORLD); }",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn g(r: &mut SimRng) { r.fork(rng_labels::WORLD); }",
            ),
            (
                "crates/netsim/src/faults.rs",
                "pub struct Injector { rng: SimRng }",
            ),
        ]);
        let d3x: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D3x").collect();
        assert_eq!(d3x.len(), 2, "{findings:?}");
        assert!(d3x.iter().any(|f| f.message.contains("WORLD")));
        assert!(d3x.iter().any(|f| f.message.contains("Holder")));
        assert!(!d3x.iter().any(|f| f.message.contains("Injector")));
    }
}
