//! Content-hash cache for per-file analysis results.
//!
//! Lexing + parsing + file-local rules dominate the analyzer's cost and
//! are a pure function of one file's bytes, so each file's
//! [`FileAnalysis`] is cached under `target/lint-cache/` keyed on an
//! FNV-1a hash of its contents. A warm run loads tables from JSON and
//! goes straight to the cross-file passes; CI asserts the cold and warm
//! runs are finding-identical (`ci.sh`), and the cache can be disabled
//! wholesale with `--no-cache`.
//!
//! Entries self-invalidate two ways: the file name embeds the content
//! hash (edited file → new key), and the payload embeds
//! [`crate::parse::TABLE_SCHEMA`] (analyzer upgrade → schema mismatch →
//! recompute). Stale entries are left behind — `target/` is disposable
//! and `cargo clean` reclaims them.

use crate::engine::FileAnalysis;
use appvsweb_json::{encode_pretty, parse, FromJson};
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit, the same construction the workspace uses elsewhere
/// for content addressing: tiny, stable, and plenty for cache keys
/// (a collision would need two different source files with equal hash
/// *and* equal path).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cache file for `path` (workspace-relative) with `hash` of its text.
fn entry_path(dir: &Path, path: &str, hash: u64) -> PathBuf {
    let safe: String = path
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}-{hash:016x}.json"))
}

/// Load a cached analysis for (`path`, content `hash`), if present,
/// parseable, and schema-current. Any failure is a miss, never an
/// error: the caller recomputes.
pub fn load(dir: &Path, path: &str, hash: u64) -> Option<FileAnalysis> {
    let text = std::fs::read_to_string(entry_path(dir, path, hash)).ok()?;
    let value = parse(&text).ok()?;
    let analysis = FileAnalysis::from_json(&value).ok()?;
    (analysis.schema == crate::parse::TABLE_SCHEMA && analysis.path == path).then_some(analysis)
}

/// Store a freshly computed analysis; best-effort (a read-only target
/// dir degrades to cold runs, it never fails the analyzer). The write
/// goes through a temp file + rename so concurrent workers and
/// interrupted runs can't leave a torn entry behind.
pub fn store(dir: &Path, hash: u64, analysis: &FileAnalysis) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let dest = entry_path(dir, &analysis.path, hash);
    let tmp = dest.with_extension(format!("tmp{}", std::process::id()));
    if std::fs::write(&tmp, encode_pretty(analysis)).is_ok() {
        let _ = std::fs::rename(&tmp, &dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a64(b"fn main() {}"), fnv1a64(b"fn main() { }"));
    }

    #[test]
    fn roundtrip_and_schema_gate() {
        let dir = std::env::temp_dir().join(format!("lint-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let analysis = crate::engine::analyze_one(&crate::engine::SourceFile {
            path: "crates/demo/src/lib.rs".to_string(),
            text: "pub fn f() { x.unwrap(); }".to_string(),
        });
        let hash = fnv1a64(b"pub fn f() { x.unwrap(); }");
        assert!(load(&dir, &analysis.path, hash).is_none(), "cold miss");
        store(&dir, hash, &analysis);
        let warm = load(&dir, &analysis.path, hash).expect("warm hit");
        assert_eq!(warm, analysis);
        assert!(
            load(&dir, &analysis.path, hash ^ 1).is_none(),
            "hash mismatch misses"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
