//! The workspace call graph: a symbol table over every parsed
//! [`FnItem`] plus path-qualified call-site resolution.
//!
//! Resolution is deliberately an *over-approximation* (DESIGN §10):
//!
//! * **Path calls** (`a::b::f(…)`) resolve through the file's `use`
//!   table, `crate`/`self`/`super` prefixes, sibling modules of the
//!   same crate, and — because crates re-export items at their root —
//!   a crate-wide by-name fallback for `cratename::f` shapes.
//! * **Method calls** (`recv.m(…)`) have no receiver types to consult,
//!   so they resolve to *every* workspace method named `m`. That keeps
//!   panic-reachability sound at the cost of spurious edges through
//!   popular names; ubiquitous container/iterator names that shadow
//!   `std` methods are excluded (`METHOD_NOISE`), which is the
//!   corresponding unsoundness.
//! * Unresolved targets (std, primitives) produce no edge.
//!
//! Node order is sorted by qualified name and every index is stable
//! across runs and worker counts, which is what makes the downstream
//! passes byte-deterministic.

use crate::parse::{FileTable, FnItem};
use std::collections::BTreeMap;

/// Method names whose workspace impls shadow ubiquitous `std` methods;
/// resolving these by bare name would connect nearly every function to
/// nearly every other, so method edges skip them. Path-qualified calls
/// (`Type::get(…)`) still resolve. Documented soundness caveat.
pub const METHOD_NOISE: &[&str] = &[
    "as_str",
    "clone",
    "cmp",
    "contains",
    "default",
    "eq",
    "fmt",
    "from",
    "get",
    "hash",
    "insert",
    "into",
    "is_empty",
    "iter",
    "len",
    "new",
    "next",
    "parse",
    "push",
    "remove",
    "to_string",
    "try_from",
    "try_into",
    "write",
];

/// One call edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u64,
    /// True when the edge came from by-name method resolution (less
    /// trustworthy than a path-resolved edge).
    pub method: bool,
}

/// The assembled workspace call graph.
pub struct CallGraph<'a> {
    /// Nodes, sorted by qualified name; parallel to `edges`.
    pub fns: Vec<&'a FnItem>,
    /// The file each node came from (index into the table slice).
    pub file_of: Vec<usize>,
    /// Outgoing edges per node, deduplicated, in deterministic order.
    pub edges: Vec<Vec<Edge>>,
    by_qual: BTreeMap<&'a str, usize>,
}

impl<'a> CallGraph<'a> {
    /// Build the graph from every file's item table.
    pub fn build(tables: &'a [FileTable]) -> CallGraph<'a> {
        // Collect nodes in deterministic order: tables are already
        // sorted by path, fns are in source order; sort by (qual, file,
        // line) so duplicate names (e.g. `tests::*::main`) stay stable.
        let mut nodes: Vec<(usize, &FnItem)> = Vec::new();
        for (ti, table) in tables.iter().enumerate() {
            for f in &table.fns {
                nodes.push((ti, f));
            }
        }
        nodes.sort_by(|a, b| {
            a.1.qual
                .cmp(&b.1.qual)
                .then(a.0.cmp(&b.0))
                .then(a.1.line.cmp(&b.1.line))
        });
        let fns: Vec<&FnItem> = nodes.iter().map(|&(_, f)| f).collect();
        let file_of: Vec<usize> = nodes.iter().map(|&(ti, _)| ti).collect();

        // First definition wins for duplicate quals (overloads across
        // cfg blocks); the loser still exists as a node.
        let mut by_qual: BTreeMap<&str, usize> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            by_qual.entry(f.qual.as_str()).or_insert(idx);
        }
        // Method name → node indices (methods only, noise excluded).
        let mut by_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if !f.self_ty.is_empty() && !METHOD_NOISE.contains(&f.name.as_str()) {
                by_method.entry(f.name.as_str()).or_default().push(idx);
            }
        }
        // Crate root → (name → node indices), the re-export fallback.
        let mut by_crate: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if let Some(krate) = f.qual.split("::").next() {
                by_crate
                    .entry((krate, f.name.as_str()))
                    .or_default()
                    .push(idx);
            }
        }

        let resolver = Resolver {
            by_qual: &by_qual,
            by_method: &by_method,
            by_crate: &by_crate,
        };
        let mut edges: Vec<Vec<Edge>> = Vec::with_capacity(fns.len());
        for (idx, f) in fns.iter().enumerate() {
            let table = file_of.get(idx).and_then(|&ti| tables.get(ti));
            let mut out: Vec<Edge> = Vec::new();
            for call in &f.calls {
                for to in resolver.resolve(call.method, &call.target, f, table) {
                    out.push(Edge {
                        to,
                        line: call.line,
                        method: call.method,
                    });
                }
            }
            out.sort_by(|a, b| a.to.cmp(&b.to).then(a.line.cmp(&b.line)));
            out.dedup_by(|a, b| a.to == b.to && a.line == b.line);
            edges.push(out);
        }

        CallGraph {
            fns,
            file_of,
            edges,
            by_qual,
        }
    }

    /// Node index of a qualified name, if defined in the workspace.
    pub fn lookup(&self, qual: &str) -> Option<usize> {
        self.by_qual.get(qual).copied()
    }

    /// All node indices whose qualified name starts with `prefix`.
    pub fn by_prefix(&self, prefix: &str) -> Vec<usize> {
        self.by_qual
            .range(prefix..)
            .take_while(|(q, _)| q.starts_with(prefix))
            .map(|(_, &idx)| idx)
            .collect()
    }

    /// Deterministic shortest call path from `from` to `to`, as
    /// qualified names — used to explain findings. Breadth-first over
    /// sorted edges, so the same path comes back every run.
    pub fn path_between(&self, from: usize, to: usize) -> Vec<String> {
        if from == to {
            return vec![self
                .fns
                .get(from)
                .map(|f| f.qual.clone())
                .unwrap_or_default()];
        }
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for e in self.edges.get(n).map(Vec::as_slice).unwrap_or(&[]) {
                if e.to != from && !prev.contains_key(&e.to) {
                    prev.insert(e.to, n);
                    if e.to == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev.get(&cur).copied().unwrap_or(from);
                            path.push(cur);
                        }
                        path.reverse();
                        return path
                            .into_iter()
                            .map(|i| self.fns.get(i).map(|f| f.qual.clone()).unwrap_or_default())
                            .collect();
                    }
                    queue.push_back(e.to);
                }
            }
        }
        Vec::new()
    }
}

struct Resolver<'a, 'b> {
    by_qual: &'b BTreeMap<&'a str, usize>,
    by_method: &'b BTreeMap<&'a str, Vec<usize>>,
    by_crate: &'b BTreeMap<(&'a str, &'a str), Vec<usize>>,
}

impl Resolver<'_, '_> {
    /// Resolve one call target to zero or more node indices.
    fn resolve(
        &self,
        method: bool,
        target: &str,
        caller: &FnItem,
        table: Option<&FileTable>,
    ) -> Vec<usize> {
        if method {
            return self.by_method.get(target).cloned().unwrap_or_default();
        }
        let segs: Vec<&str> = target.split("::").collect();
        let module = caller_module(caller);
        let mut candidates: Vec<String> = Vec::new();
        match segs.as_slice() {
            [] => {}
            [name] => {
                // Bare call: same module, then any single-name `use`.
                candidates.push(format!("{module}::{name}"));
                if let Some(table) = table {
                    for u in &table.uses {
                        if u.name == *name {
                            candidates.push(u.path.clone());
                        }
                    }
                }
                // Same-impl sibling: `Type::name` in this module.
                if !caller.self_ty.is_empty() {
                    candidates.push(format!("{module}::{}::{name}", caller.self_ty));
                }
            }
            [first, rest @ ..] => {
                let tail = rest.join("::");
                match *first {
                    "crate" => {
                        let krate = module.split("::").next().unwrap_or(&module);
                        candidates.push(format!("{krate}::{tail}"));
                    }
                    "self" => candidates.push(format!("{module}::{tail}")),
                    "super" => {
                        let parent = module
                            .rsplit_once("::")
                            .map(|(p, _)| p.to_string())
                            .unwrap_or_else(|| module.clone());
                        candidates.push(format!("{parent}::{tail}"));
                    }
                    _ => {
                        // `use`-imported first segment.
                        if let Some(table) = table {
                            for u in &table.uses {
                                if u.name == *first {
                                    candidates.push(format!("{}::{tail}", u.path));
                                }
                            }
                        }
                        // Absolute crate path or sibling module/type of
                        // the current module and crate root.
                        candidates.push(target.to_string());
                        candidates.push(format!("{module}::{target}"));
                        let krate = module.split("::").next().unwrap_or(&module);
                        candidates.push(format!("{krate}::{target}"));
                    }
                }
            }
        }
        let mut out: Vec<usize> = candidates
            .iter()
            .filter_map(|c| self.by_qual.get(c.as_str()).copied())
            .collect();
        // Re-export fallback: `appvsweb_x::f(…)` where `f` really lives
        // in `appvsweb_x::inner::f`. Only when nothing resolved, and
        // only for two-segment paths whose head is a crate root.
        if out.is_empty() {
            if let [krate, name] = segs.as_slice() {
                if krate.starts_with("appvsweb") {
                    if let Some(hits) = self.by_crate.get(&(*krate, *name)) {
                        out.extend(hits.iter().copied());
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The module a fn's qual sits in (qual minus `[Type::]name`).
fn caller_module(f: &FnItem) -> String {
    let mut q = f.qual.as_str();
    if let Some(stripped) = q.strip_suffix(f.name.as_str()) {
        q = stripped.trim_end_matches(':');
    }
    if !f.self_ty.is_empty() {
        if let Some(stripped) = q.strip_suffix(f.self_ty.as_str()) {
            q = stripped.trim_end_matches(':');
        }
    }
    q.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sig_view_of;
    use crate::parse::parse_file;
    use std::collections::BTreeMap;

    fn table(path: &str, src: &str) -> FileTable {
        parse_file(path, &sig_view_of(src), &[], &BTreeMap::new())
    }

    #[test]
    fn resolves_paths_uses_and_methods() {
        let tables = vec![
            table(
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); appvsweb_b::remote(); t.record(1); }\n\
                 fn helper() { crate::deep::leaf(); }",
            ),
            table("crates/a/src/deep.rs", "pub fn leaf() {}"),
            table(
                "crates/b/src/lib.rs",
                "pub fn remote() {}\n\
                 pub struct T;\n\
                 impl T { pub fn record(&self, _x: u64) {} }",
            ),
        ];
        let g = CallGraph::build(&tables);
        let entry = g.lookup("appvsweb_a::entry").unwrap();
        let helper = g.lookup("appvsweb_a::helper").unwrap();
        let leaf = g.lookup("appvsweb_a::deep::leaf").unwrap();
        let remote = g.lookup("appvsweb_b::remote").unwrap();
        let record = g.lookup("appvsweb_b::T::record").unwrap();
        let tos = |i: usize| -> Vec<usize> { g.edges[i].iter().map(|e| e.to).collect() };
        assert!(tos(entry).contains(&helper));
        assert!(tos(entry).contains(&remote), "crate-root absolute path");
        assert!(tos(entry).contains(&record), "method by-name resolution");
        assert!(tos(helper).contains(&leaf), "crate:: prefix");
    }

    #[test]
    fn reexport_fallback_resolves_crate_level_names() {
        let tables = vec![
            table(
                "crates/a/src/lib.rs",
                "fn f() { appvsweb_json::encode_pretty(&x); }",
            ),
            table("crates/json/src/ser.rs", "pub fn encode_pretty() {}"),
        ];
        let g = CallGraph::build(&tables);
        let f = g.lookup("appvsweb_a::f").unwrap();
        let enc = g.lookup("appvsweb_json::ser::encode_pretty").unwrap();
        assert!(g.edges[f].iter().any(|e| e.to == enc));
    }

    #[test]
    fn noisy_method_names_produce_no_edges() {
        let tables = vec![
            table("crates/a/src/lib.rs", "fn f(m: &Map) { m.get(1); }"),
            table(
                "crates/b/src/lib.rs",
                "pub struct Map; impl Map { pub fn get(&self, _i: u64) { panic!() } }",
            ),
        ];
        let g = CallGraph::build(&tables);
        let f = g.lookup("appvsweb_a::f").unwrap();
        assert!(g.edges[f].is_empty());
    }

    #[test]
    fn path_between_is_shortest_and_deterministic() {
        let tables = vec![table(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn a2() { c(); }",
        )];
        let g = CallGraph::build(&tables);
        let a = g.lookup("appvsweb_a::a").unwrap();
        let c = g.lookup("appvsweb_a::c").unwrap();
        assert_eq!(
            g.path_between(a, c),
            ["appvsweb_a::a", "appvsweb_a::b", "appvsweb_a::c"]
        );
        assert!(g.path_between(c, a).is_empty());
    }
}
