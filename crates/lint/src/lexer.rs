//! A small, lossless Rust lexer.
//!
//! The analyzer's rules match token *sequences*, so the lexer's one job
//! is to split source text into tokens without ever being confused by
//! literals or comments: an `unwrap()` inside a string, a doc-comment
//! example, or a raw-string fixture must never fire a rule. Three
//! properties the rest of the crate (and the property tests) rely on:
//!
//! 1. **Lossless**: concatenating the `text` of every token reproduces
//!    the input byte-for-byte — nothing is dropped or normalized.
//! 2. **Total**: any input, including invalid or truncated Rust, lexes
//!    without panicking; unterminated literals simply run to the end.
//! 3. **Line-accurate**: each token records the 1-based line where it
//!    starts, which is what findings and `lint:allow` annotations key on.

/// The coarse token classes the rule engine distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `'x'`, `b'x'`.
    Lit,
    /// `//…` line comment (doc comments included).
    LineComment,
    /// `/* … */` block comment, nesting-aware.
    BlockComment,
    /// A run of whitespace.
    Whitespace,
    /// Any other single character.
    Punct,
}

/// One token: its class, exact source text, and starting line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text, verbatim.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// Lex `source` into a lossless token stream. Never panics.
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one char, tracking line numbers.
    fn bump(&mut self, buf: &mut String) {
        if let Some(&c) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
            buf.push(c);
            self.pos += 1;
        }
    }

    fn emit(&mut self, kind: TokKind, text: String, line: u32) {
        if !text.is_empty() {
            self.out.push(Tok { kind, text, line });
        }
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            let mut text = String::new();
            if c.is_whitespace() {
                while self.peek(0).is_some_and(|c| c.is_whitespace()) {
                    self.bump(&mut text);
                }
                self.emit(TokKind::Whitespace, text, line);
            } else if c == '/' && self.peek(1) == Some('/') {
                appvsweb_cover::cover!();
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.bump(&mut text);
                }
                self.emit(TokKind::LineComment, text, line);
            } else if c == '/' && self.peek(1) == Some('*') {
                appvsweb_cover::cover!();
                self.block_comment(&mut text);
                self.emit(TokKind::BlockComment, text, line);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line);
            } else if c == '"' {
                appvsweb_cover::cover!();
                self.string_body(&mut text);
                self.emit(TokKind::Lit, text, line);
            } else if c == '\'' {
                appvsweb_cover::cover!();
                self.quote(&mut text);
                let kind = if text.ends_with('\'') && text.chars().count() > 1 {
                    TokKind::Lit
                } else {
                    TokKind::Lifetime
                };
                self.emit(kind, text, line);
            } else if c.is_ascii_digit() {
                self.number(&mut text);
                self.emit(TokKind::Num, text, line);
            } else {
                self.bump(&mut text);
                self.emit(TokKind::Punct, text, line);
            }
        }
        self.out
    }

    /// Nesting-aware `/* … */`; an unterminated comment runs to EOF.
    fn block_comment(&mut self, text: &mut String) {
        let mut depth = 0usize;
        while self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump(text);
                self.bump(text);
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                self.bump(text);
                self.bump(text);
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump(text);
            }
        }
    }

    /// An identifier, or — when the identifier is `r`/`b`/`br` directly
    /// followed by a quote or raw-string hashes — a prefixed literal.
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump(&mut text);
        }
        let raw_capable = text == "r" || text == "br";
        let byte_capable = text == "b" || text == "br";
        match self.peek(0) {
            Some('"') if raw_capable || byte_capable => {
                appvsweb_cover::cover!();
                self.string_body(&mut text);
                self.emit(TokKind::Lit, text, line);
            }
            Some('\'') if text == "b" => {
                appvsweb_cover::cover!();
                self.quote(&mut text);
                self.emit(TokKind::Lit, text, line);
            }
            Some('#') if raw_capable => {
                appvsweb_cover::cover!();
                // Count hashes; a quote after them begins a raw string.
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..=hashes {
                        self.bump(&mut text);
                    }
                    self.raw_string_tail(&mut text, hashes);
                    self.emit(TokKind::Lit, text, line);
                } else {
                    // `r#ident` raw identifier (or stray hash): emit the
                    // prefix as an ident and let the main loop carry on.
                    self.emit(TokKind::Ident, text, line);
                }
            }
            _ => self.emit(TokKind::Ident, text, line),
        }
    }

    /// Body of a `"…"` string with escapes; opening quote not yet
    /// consumed. Unterminated strings run to EOF.
    fn string_body(&mut self, text: &mut String) {
        self.bump(text); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump(text);
                self.bump(text);
            } else if c == '"' {
                self.bump(text);
                return;
            } else {
                self.bump(text);
            }
        }
    }

    /// After `r#…#"`: consume until `"` followed by `hashes` hashes.
    fn raw_string_tail(&mut self, text: &mut String, hashes: usize) {
        while self.peek(0).is_some() {
            if self.peek(0) == Some('"') && (1..=hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..=hashes {
                    self.bump(text);
                }
                return;
            }
            self.bump(text);
        }
    }

    /// A `'` token: char literal (`'a'`, `'\n'`, `'£'`) or lifetime
    /// (`'a`, `'static`). Disambiguated by whether a closing quote
    /// directly follows the short body.
    fn quote(&mut self, text: &mut String) {
        self.bump(text); // opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then to the quote.
                self.bump(text);
                self.bump(text);
                while self.peek(0).is_some_and(|c| c != '\'' && c != '\n') {
                    self.bump(text);
                }
                self.bump(text); // closing ' (or nothing at EOF)
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char; `'abc` (no closing quote) a lifetime.
                let mut body = 1usize;
                while self.peek(body).is_some_and(is_ident_continue) {
                    body += 1;
                }
                let is_char = self.peek(body) == Some('\'');
                for _ in 0..body {
                    self.bump(text);
                }
                if is_char {
                    self.bump(text);
                }
            }
            Some('\'') | None => {} // `''` or EOF: lone quote, Punct-ish
            Some(_) => {
                // Single-char literal like '+' or '0'.
                self.bump(text);
                if self.peek(0) == Some('\'') {
                    self.bump(text);
                }
            }
        }
    }

    /// A numeric literal: prefixes, underscores, a fraction part (but
    /// not `..`), exponents, and type suffixes. Heuristic but total.
    fn number(&mut self, text: &mut String) {
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b' | 'X')) {
            self.bump(text);
            self.bump(text);
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump(text);
            }
            return;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump(text);
        }
        // Fraction: `1.5` yes; `1..5` and `1.method()` no.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump(text);
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump(text);
            }
        }
        // Exponent: `1e3`, `1.5E-3`.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = matches!(self.peek(1), Some('+' | '-')) as usize;
            if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                for _ in 0..=sign {
                    self.bump(text);
                }
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump(text);
                }
            }
        }
        // Suffix: `u64`, `f32`, `usize`.
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump(text);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Tok> {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, src, "lexer must be lossless");
        toks
    }

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        roundtrip(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let ks = kinds("let x = foo.unwrap();");
        assert_eq!(ks[0], (TokKind::Ident, "let".into()));
        assert_eq!(ks[3], (TokKind::Ident, "foo".into()));
        assert_eq!(ks[5], (TokKind::Ident, "unwrap".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let ks = kinds(r#"let s = "x.unwrap() /* not a comment */";"#);
        assert!(ks.iter().filter(|(k, _)| *k == TokKind::Lit).count() == 1);
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let ks = kinds(r###"let s = r#"quote " inside"#;"###);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Lit && t.starts_with("r#")));
        let ks = kinds("let b = br\"bytes\";");
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Lit && t.starts_with("br")));
    }

    #[test]
    fn raw_identifier_prefix_splits() {
        let ks = kinds("let r#type = 1;");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "type"));
    }

    #[test]
    fn comments_nest_and_terminate() {
        let ks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].0, TokKind::BlockComment);
        roundtrip("/* unterminated ");
        roundtrip("\"unterminated ");
        roundtrip("r#\"unterminated ");
    }

    #[test]
    fn chars_vs_lifetimes() {
        let ks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) {} let n = '\\n';");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lit && t == "'a'"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lit && t == "'\\n'"));
    }

    #[test]
    fn numbers() {
        let ks = kinds("0x1f 1_000 1.5e-3 2u64 1..5 9.min(3)");
        let nums: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            ["0x1f", "1_000", "1.5e-3", "2u64", "1", "5", "9", "3"]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let toks = roundtrip("a\nb\n  c");
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(2));
        assert_eq!(find("c"), Some(3));
    }
}
