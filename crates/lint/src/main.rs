//! Standalone entry point: `cargo run -p appvsweb-lint -- [flags]`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(appvsweb_lint::cli::run(&args));
}
