//! Command-line front end, shared by the standalone `appvsweb-lint`
//! binary and the `repro lint` subcommand.

use crate::baseline::Baseline;
use crate::engine::{analyze_files, collect_workspace, Report};
use appvsweb_json::encode_pretty;
use std::path::{Path, PathBuf};

const USAGE: &str =
    "usage: appvsweb-lint [--root DIR] [--check] [--json] [--fix-baseline] [--labels]\n\
  (default)       analyze the workspace and list every finding\n\
  --check         diff findings against lint.baseline.json; exit 1 on new ones\n\
  --fix-baseline  rewrite lint.baseline.json to accept the current findings\n\
  --json          print the full report as JSON\n\
  --labels        print only the D3 fork-label table\n\
  --root DIR      workspace root (default: discovered from the cwd)";

/// The committed baseline file name, at the workspace root.
pub const BASELINE_FILE: &str = "lint.baseline.json";

struct Options {
    root: Option<PathBuf>,
    check: bool,
    json: bool,
    fix_baseline: bool,
    labels_only: bool,
}

/// Run the CLI with pre-split arguments; returns the process exit code
/// (0 clean, 1 findings/new findings, 2 usage or I/O error).
pub fn run(args: &[String]) -> i32 {
    let mut opts = Options {
        root: None,
        check: false,
        json: false,
        fix_baseline: false,
        labels_only: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => opts.root = it.next().map(PathBuf::from),
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--fix-baseline" => opts.fix_baseline = true,
            "--labels" => opts.labels_only = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("appvsweb-lint: unknown argument {other:?}\n{USAGE}");
                return 2;
            }
        }
    }

    let root = match opts.root.clone().or_else(discover_root) {
        Some(root) => root,
        None => {
            eprintln!(
                "appvsweb-lint: could not find the workspace root (no Cargo.toml + \
                 crates/ above the cwd); pass --root"
            );
            return 2;
        }
    };
    let files = match collect_workspace(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!(
                "appvsweb-lint: cannot read workspace at {}: {err}",
                root.display()
            );
            return 2;
        }
    };
    let report = analyze_files(&files);

    if opts.json {
        println!("{}", encode_pretty(&report));
        return i32::from(!report.findings.is_empty());
    }
    if opts.labels_only {
        print_labels(&report);
        return 0;
    }
    if opts.fix_baseline {
        let baseline = Baseline::from_report(&report);
        let path = root.join(BASELINE_FILE);
        if let Err(err) = std::fs::write(&path, baseline.to_json_text()) {
            eprintln!("appvsweb-lint: cannot write {}: {err}", path.display());
            return 2;
        }
        println!(
            "baseline rewritten: {} accepted finding(s) -> {}",
            baseline.findings.len(),
            path.display()
        );
        return 0;
    }

    println!(
        "appvsweb-lint: {} files, {} tokens, {} allow annotation(s)",
        report.files, report.tokens, report.allows
    );
    if opts.check {
        return check_against_baseline(&root, &report);
    }

    print_findings(&report.findings, "findings");
    print_labels(&report);
    i32::from(!report.findings.is_empty())
}

fn check_against_baseline(root: &Path, report: &Report) -> i32 {
    let path = root.join(BASELINE_FILE);
    let baseline = match std::fs::read_to_string(&path) {
        Ok(text) => match Baseline::from_json_text(&text) {
            Ok(baseline) => baseline,
            Err(err) => {
                eprintln!("appvsweb-lint: bad baseline {}: {err:?}", path.display());
                return 2;
            }
        },
        Err(_) => Baseline::default(), // no baseline file = empty baseline
    };
    let diff = baseline.diff(report);
    if !diff.stale.is_empty() {
        println!(
            "note: {} stale baseline entr{} (fixed or moved); run --fix-baseline to drop",
            diff.stale.len(),
            if diff.stale.len() == 1 { "y" } else { "ies" }
        );
    }
    if diff.new.is_empty() {
        println!(
            "check passed: no findings outside the baseline ({} baselined)",
            baseline.findings.len()
        );
        0
    } else {
        print_findings(&diff.new, "NEW findings (not in baseline)");
        println!("fix these, add a `// lint:allow(RULE) reason`, or run --fix-baseline");
        1
    }
}

fn print_findings(findings: &[crate::engine::Finding], heading: &str) {
    if findings.is_empty() {
        println!("{heading}: none");
        return;
    }
    println!("{heading}: {}", findings.len());
    for f in findings {
        println!("  [{}] {}:{} — {}", f.rule, f.path, f.line, f.message);
    }
}

fn print_labels(report: &Report) {
    println!("fork-label table ({} entr{}):", report.labels.len(), {
        if report.labels.len() == 1 {
            "y"
        } else {
            "ies"
        }
    });
    for site in &report.labels {
        println!("  {:<24} {}:{}", site.label, site.path, site.line);
    }
}

/// Walk up from the cwd to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
