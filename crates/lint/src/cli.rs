//! Command-line front end, shared by the standalone `appvsweb-lint`
//! binary and the `repro lint` subcommand.

use crate::baseline::Baseline;
use crate::engine::{analyze_files_with, collect_workspace, AnalysisOptions, Report};
use appvsweb_json::encode_pretty;
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: appvsweb-lint [--root DIR] [--check] [--json] [--fix-baseline] \
     [--migrate-baseline] [--labels] [--workers N] [--no-cache]\n\
  (default)           analyze the workspace and list every finding\n\
  --check             diff findings against lint.baseline.json; exit 1 on new ones\n\
  --fix-baseline      rewrite lint.baseline.json to accept the current findings\n\
  --migrate-baseline  rewrite lint.baseline.json in place to schema v2 (no re-analysis)\n\
  --json              print the full report as canonical JSON (always exits 0)\n\
  --labels            print only the D3 fork-label table\n\
  --workers N         per-file analysis threads (default 1; output is identical for any N)\n\
  --no-cache          skip the content-hash cache under target/lint-cache/\n\
  --root DIR          workspace root (default: discovered from the cwd)";

/// The committed baseline file name, at the workspace root.
pub const BASELINE_FILE: &str = "lint.baseline.json";

struct Options {
    root: Option<PathBuf>,
    check: bool,
    json: bool,
    fix_baseline: bool,
    migrate_baseline: bool,
    labels_only: bool,
    workers: usize,
    no_cache: bool,
}

/// Run the CLI with pre-split arguments; returns the process exit code
/// (0 clean, 1 findings/new findings, 2 usage or I/O error).
pub fn run(args: &[String]) -> i32 {
    let mut opts = Options {
        root: None,
        check: false,
        json: false,
        fix_baseline: false,
        migrate_baseline: false,
        labels_only: false,
        workers: 1,
        no_cache: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => opts.root = it.next().map(PathBuf::from),
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--fix-baseline" => opts.fix_baseline = true,
            "--migrate-baseline" => opts.migrate_baseline = true,
            "--labels" => opts.labels_only = true,
            "--no-cache" => opts.no_cache = true,
            "--workers" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.workers = n,
                _ => {
                    eprintln!("appvsweb-lint: --workers needs a positive integer\n{USAGE}");
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("appvsweb-lint: unknown argument {other:?}\n{USAGE}");
                return 2;
            }
        }
    }

    let root = match opts.root.clone().or_else(discover_root) {
        Some(root) => root,
        None => {
            eprintln!(
                "appvsweb-lint: could not find the workspace root (no Cargo.toml + \
                 crates/ above the cwd); pass --root"
            );
            return 2;
        }
    };

    if opts.migrate_baseline {
        return migrate_baseline(&root);
    }

    let files = match collect_workspace(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!(
                "appvsweb-lint: cannot read workspace at {}: {err}",
                root.display()
            );
            return 2;
        }
    };
    let analysis_opts = AnalysisOptions {
        workers: opts.workers,
        cache_dir: (!opts.no_cache).then(|| root.join("target").join("lint-cache")),
    };
    let report = analyze_files_with(&files, &analysis_opts);

    if opts.json {
        // Machine-readable mode: the canonical report (findings sorted
        // by path, line, rule), documented in DESIGN §10. Always exits
        // 0 so pipelines distinguish "ran and reported" from crashes.
        println!("{}", encode_pretty(&report));
        return 0;
    }
    if opts.labels_only {
        print_labels(&report);
        return 0;
    }
    if opts.fix_baseline {
        let baseline = Baseline::from_report(&report);
        let path = root.join(BASELINE_FILE);
        if let Err(err) = std::fs::write(&path, baseline.to_json_text()) {
            eprintln!("appvsweb-lint: cannot write {}: {err}", path.display());
            return 2;
        }
        println!(
            "baseline rewritten: {} accepted finding(s) -> {}",
            baseline.findings.len(),
            path.display()
        );
        return 0;
    }

    println!(
        "appvsweb-lint: {} files, {} tokens, {} allow annotation(s)",
        report.files, report.tokens, report.allows
    );
    if !report.suppressed.is_empty() {
        let parts: Vec<String> = report
            .suppressed
            .iter()
            .map(|rc| format!("{} {}", rc.rule, rc.count))
            .collect();
        println!("suppressed by allow: {}", parts.join(", "));
    }
    if opts.check {
        return check_against_baseline(&root, &report);
    }

    print_findings(&report.findings, "findings");
    print_labels(&report);
    i32::from(!report.findings.is_empty())
}

/// `--migrate-baseline`: read the committed baseline (v1 or v2) and
/// rewrite it as v2, without re-running the analysis.
fn migrate_baseline(root: &Path) -> i32 {
    let path = root.join(BASELINE_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("appvsweb-lint: cannot read {}: {err}", path.display());
            return 2;
        }
    };
    let baseline = match Baseline::from_json_text(&text) {
        Ok(baseline) => baseline,
        Err(err) => {
            eprintln!("appvsweb-lint: bad baseline {}: {err:?}", path.display());
            return 2;
        }
    };
    if let Err(err) = std::fs::write(&path, baseline.to_json_text()) {
        eprintln!("appvsweb-lint: cannot write {}: {err}", path.display());
        return 2;
    }
    println!(
        "baseline migrated to v2: {} entr{} -> {}",
        baseline.findings.len(),
        if baseline.findings.len() == 1 {
            "y"
        } else {
            "ies"
        },
        path.display()
    );
    0
}

fn check_against_baseline(root: &Path, report: &Report) -> i32 {
    let path = root.join(BASELINE_FILE);
    let baseline = match std::fs::read_to_string(&path) {
        Ok(text) => match Baseline::from_json_text(&text) {
            Ok(baseline) => baseline,
            Err(err) => {
                eprintln!("appvsweb-lint: bad baseline {}: {err:?}", path.display());
                return 2;
            }
        },
        Err(_) => Baseline::default(), // no baseline file = empty baseline
    };
    let diff = baseline.diff(report);
    if !diff.stale.is_empty() {
        println!(
            "note: {} stale baseline entr{} (fixed or moved); run --fix-baseline to drop",
            diff.stale.len(),
            if diff.stale.len() == 1 { "y" } else { "ies" }
        );
    }
    if diff.new.is_empty() {
        println!(
            "check passed: no findings outside the baseline ({} baselined)",
            baseline.findings.len()
        );
        0
    } else {
        print_findings(&diff.new, "NEW findings (not in baseline)");
        println!("fix these, add a `// lint:allow(RULE) reason`, or run --fix-baseline");
        1
    }
}

fn print_findings(findings: &[crate::engine::Finding], heading: &str) {
    if findings.is_empty() {
        println!("{heading}: none");
        return;
    }
    println!("{heading}: {}", findings.len());
    for f in findings {
        println!("  [{}] {}:{} — {}", f.rule, f.path, f.line, f.message);
    }
}

fn print_labels(report: &Report) {
    println!("fork-label table ({} entr{}):", report.labels.len(), {
        if report.labels.len() == 1 {
            "y"
        } else {
            "ies"
        }
    });
    for site in &report.labels {
        println!("  {:<24} {}:{}", site.label, site.path, site.line);
    }
}

/// Walk up from the cwd to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
