//! `appvsweb-lint` — the workspace's self-hosted determinism &
//! robustness analyzer.
//!
//! The reproduction's headline numbers are only trustworthy because the
//! simulation is bit-deterministic: every RNG draw flows through
//! labelled [`SimRng`] forks and nothing reads wall clocks or ambient
//! entropy. This crate machine-checks those invariants on every CI run
//! instead of trusting convention:
//!
//! * a small, lossless, literal/comment-aware Rust lexer ([`lexer`]);
//! * a rule engine over the token stream with light cross-file state
//!   ([`engine`], [`rules`]): `D1` no wall clocks, `D2` no unordered
//!   hash iteration into aggregates, `D3` closed fork-label table,
//!   `R1` no panicking paths in library code, `R2` all serialization
//!   through `impl_json!`, `S1` total-order float comparisons;
//! * inline `lint:allow(R1) reason`-style suppressions the engine
//!   parses and validates;
//! * a committed `lint.baseline.json` ([`baseline`]) so CI fails on
//!   *new* violations while existing debt burns down.
//!
//! Run it as `cargo run -p appvsweb-lint -- --check` (what `ci.sh`
//! does) or via the `repro lint` subcommand.
//!
//! [`SimRng`]: https://docs.rs/appvsweb-netsim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cli;
pub mod engine;
pub mod fuzz;
pub mod lexer;
pub mod rules;

pub use baseline::{Baseline, BaselineDiff, BaselineEntry};
pub use engine::{
    analyze_files, classify, collect_workspace, FileClass, Finding, Report, SourceFile,
};
pub use lexer::{lex, Tok, TokKind};
