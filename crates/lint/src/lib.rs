//! `appvsweb-lint` — the workspace's self-hosted determinism &
//! robustness analyzer.
//!
//! The reproduction's headline numbers are only trustworthy because the
//! simulation is bit-deterministic: every RNG draw flows through
//! labelled [`SimRng`] forks and nothing reads wall clocks or ambient
//! entropy. This crate machine-checks those invariants on every CI run
//! instead of trusting convention:
//!
//! * a small, lossless, literal/comment-aware Rust lexer ([`lexer`]);
//! * a scope-tracked item/signature/body parser over the token stream
//!   ([`parse`]) producing per-file item tables, content-hash cached
//!   under `target/lint-cache/` ([`cache`]);
//! * a workspace call graph with path-qualified resolution
//!   ([`callgraph`]);
//! * file-local rules ([`engine`], [`rules`]): `D1` no wall clocks,
//!   `D2` no unordered hash iteration into aggregates, `D3` closed
//!   fork-label table, `R1` no panicking paths in library code, `R2`
//!   all serialization through `impl_json!`, `S1` total-order float
//!   comparisons;
//! * interprocedural passes ([`taint`]): `T1` PII values reach
//!   byte/serialization/socket sinks only through the audited `mitm`
//!   recording path, `R1x` nothing reachable from `serve::runner`
//!   workers or `core::study` cell execution can transitively panic,
//!   `D3x` each `rng_labels` constant is forked from exactly one
//!   statically-known scope and no `SimRng` crosses cell boundaries;
//! * inline `lint:allow(R1) reason`-style suppressions the engine
//!   parses, validates, and tallies;
//! * a committed `lint.baseline.json` ([`baseline`], schema v2 grouped
//!   by rule) so CI fails on *new* violations while existing debt
//!   burns down.
//!
//! Run it as `cargo run -p appvsweb-lint -- --check` (what `ci.sh`
//! does) or via the `repro lint` subcommand.
//!
//! [`SimRng`]: https://docs.rs/appvsweb-netsim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod cli;
pub mod engine;
pub mod fuzz;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod taint;

pub use baseline::{Baseline, BaselineDiff, BaselineEntry};
pub use engine::{
    analyze_files, analyze_files_with, analyze_one, classify, collect_workspace, AnalysisOptions,
    FileAnalysis, FileClass, Finding, Report, SourceFile,
};
pub use lexer::{lex, Tok, TokKind};
pub use parse::{FileTable, FnItem};
