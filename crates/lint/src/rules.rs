//! The rule set: D1–D3 (determinism), R1–R2 (robustness), S1 (float
//! total order). Each rule is a token-sequence matcher over the
//! significant-token view, with the class/test-region/annotation checks
//! centralized in [`emit`].
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D1` | no wall clocks or ambient entropy (`Instant::now`, `SystemTime`, `std::time`) outside bench/tool code |
//! | `D2` | no iteration over `HashMap`/`HashSet` feeding aggregation without a sort/`BTreeMap` nearby |
//! | `D3` | `SimRng::fork` labels are string literals or `rng_labels` constants, unique workspace-wide |
//! | `R1` | no `unwrap()` / `expect("…")` / `panic!` / indexing-by-literal in library code |
//! | `R2` | no hand-rolled `ToJson`/`FromJson` impls outside `crates/json` (use `impl_json!`) |
//! | `S1` | float comparisons in `appvsweb-analysis` use total-order helpers, not `partial_cmp` |

use crate::engine::{rule_applies, FileCtx, FileSink, Finding, LabelSite};
use crate::lexer::TokKind;
use std::collections::BTreeSet;

/// Append a finding unless the file class, a test region, or an inline
/// annotation waives it. Annotation-waived sites are tallied per rule in
/// the sink so the suppression debt stays visible.
fn emit(ctx: &FileCtx<'_>, sink: &mut FileSink, rule: &str, i: usize, message: String) {
    let line = ctx.sig.line(i);
    if !rule_applies(rule, ctx.class) || ctx.in_test_region(line) {
        return;
    }
    if ctx.allowed(rule, line) {
        *sink.suppressed.entry(rule.to_string()).or_insert(0) += 1;
        return;
    }
    sink.findings.push(Finding {
        rule: rule.to_string(),
        path: ctx.path.to_string(),
        line: line as u64,
        message,
        fingerprint: format!("{rule}|{}|{}", ctx.path, ctx.sig.snippet_on_line(i, 2, 4)),
    });
}

/// Run every single-file rule over one file.
pub(crate) fn run_file_rules(ctx: &FileCtx<'_>, sink: &mut FileSink) {
    rule_d1_wall_clock(ctx, sink);
    rule_d2_hash_iteration(ctx, sink);
    rule_d3_fork_labels(ctx, sink);
    rule_r1_panic_paths(ctx, sink);
    rule_r2_hand_rolled_json(ctx, sink);
    rule_s1_total_order(ctx, sink);
}

// ---------------------------------------------------------------- D1 --

/// D1: simulated time comes from `SimClock`; wall clocks would make two
/// runs of the same seed diverge, so they are confined to bench code.
fn rule_d1_wall_clock(ctx: &FileCtx<'_>, sink: &mut FileSink) {
    let sig = &ctx.sig;
    for i in 0..sig.len() {
        let t = sig.text(i);
        // The lexer emits `::` as two `:` puncts.
        let path_sep = sig.text(i + 1) == ":" && sig.text(i + 2) == ":";
        let hit = match t {
            "SystemTime" => Some("SystemTime is wall-clock state"),
            "Instant" if path_sep && sig.text(i + 3) == "now" => {
                Some("Instant::now() reads the wall clock")
            }
            "std" if path_sep && sig.text(i + 3) == "time" => Some("std::time is wall-clock state"),
            _ => None,
        };
        if let Some(why) = hit {
            emit(
                ctx,
                sink,
                "D1",
                i,
                format!("{why}; use SimClock/SimTime (or move to bench code)"),
            );
        }
    }
}

// ---------------------------------------------------------------- D2 --

const D2_ITERATORS: &[&str] = &["iter", "iter_mut", "into_iter", "keys", "values", "drain"];
const D2_MITIGATIONS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
];
/// Tokens scanned after an iteration site for a mitigation; generous
/// enough to cover a collect-into-vec-then-sort in the next statement.
const D2_WINDOW: usize = 60;

/// D2 (heuristic): find bindings declared as `HashMap`/`HashSet`, then
/// flag iteration over them unless a sort or B-tree collection appears
/// within the next few statements. `HashMap` lookups (`get`/`insert`)
/// are order-free and stay legal; only *iteration order* can leak into
/// aggregates or serialized output.
fn rule_d2_hash_iteration(ctx: &FileCtx<'_>, sink: &mut FileSink) {
    let sig = &ctx.sig;
    // Pass 1: names bound to hash collections.
    let mut bindings: BTreeSet<String> = BTreeSet::new();
    for i in 0..sig.len() {
        if sig.text(i) != "HashMap" && sig.text(i) != "HashSet" {
            continue;
        }
        // `name: HashMap<...>` (typed let, field, or param).
        if sig.before(i, 1) == ":" && sig.kind(i.saturating_sub(2)) == TokKind::Ident {
            bindings.insert(sig.before(i, 2).to_string());
        }
        // `let [mut] name = HashMap::new()`.
        if sig.before(i, 1) == "=" {
            let name_at = i.saturating_sub(2);
            if sig.kind(name_at) == TokKind::Ident
                && matches!(sig.before(name_at, 1), "let" | "mut")
            {
                bindings.insert(sig.text(name_at).to_string());
            }
        }
    }
    if bindings.is_empty() {
        return;
    }
    // Pass 2: iteration over a bound name.
    for i in 0..sig.len() {
        if !bindings.contains(sig.text(i)) {
            continue;
        }
        let iterated = (sig.text(i + 1) == "."
            && D2_ITERATORS.contains(&sig.text(i + 2))
            && sig.text(i + 3) == "(")
            || (1..=3).any(|back| sig.before(i, back) == "in")
                && (0..16).any(|back| sig.before(i, back) == "for");
        if !iterated {
            continue;
        }
        let mitigated = (i..i + D2_WINDOW).any(|j| D2_MITIGATIONS.contains(&sig.text(j)));
        if !mitigated {
            emit(
                ctx,
                sink,
                "D2",
                i,
                format!(
                    "iteration over hash collection `{}` feeds downstream state in \
                     nondeterministic order; sort first or use a BTreeMap/BTreeSet",
                    sig.text(i)
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- D3 --

/// D3: every `SimRng::fork` label is either a string literal or built in
/// the `rng_labels` module, so the workspace label table is closed and
/// reviewable. Literal labels are collected into the table here;
/// uniqueness is resolved across files by [`check_label_uniqueness`].
fn rule_d3_fork_labels(ctx: &FileCtx<'_>, sink: &mut FileSink) {
    let sig = &ctx.sig;
    // Constants in the rng_labels module define the canonical table.
    if ctx.path.ends_with("/rng_labels.rs") {
        for i in 0..sig.len() {
            if sig.text(i) == "const"
                && sig.text(i + 2) == ":"
                && sig.text(i + 3) == "&"
                && sig.text(i + 4) == "str"
                && sig.text(i + 5) == "="
                && sig.kind(i + 6) == TokKind::Lit
            {
                sink.labels.push(LabelSite {
                    label: unquote(sig.text(i + 6)),
                    path: ctx.path.to_string(),
                    line: sig.line(i) as u64,
                });
            }
        }
        return;
    }
    for i in 0..sig.len() {
        if !(sig.text(i) == "." && sig.text(i + 1) == "fork" && sig.text(i + 2) == "(") {
            continue;
        }
        if !rule_applies("D3", ctx.class) || ctx.in_test_region(sig.line(i)) {
            continue;
        }
        // Collect the argument tokens to the matching close paren.
        let mut depth = 1usize;
        let mut j = i + 3;
        let mut arg: Vec<usize> = Vec::new();
        while j < sig.len() && depth > 0 {
            match sig.text(j) {
                "(" => depth += 1,
                ")" => depth -= 1,
                _ => {}
            }
            if depth > 0 {
                arg.push(j);
            }
            j += 1;
        }
        let single_literal = arg.len() == 1
            && arg
                .first()
                .is_some_and(|&a| sig.kind(a) == TokKind::Lit && sig.text(a).starts_with('"'));
        if single_literal {
            if let Some(&a) = arg.first() {
                sink.labels.push(LabelSite {
                    label: unquote(sig.text(a)),
                    path: ctx.path.to_string(),
                    line: sig.line(a) as u64,
                });
            }
        } else if !arg.iter().any(|&a| sig.text(a) == "rng_labels") {
            emit(
                ctx,
                sink,
                "D3",
                i + 1,
                "fork label must be a string literal or come from the rng_labels \
                 module — ad-hoc dynamic labels evade the workspace label table"
                    .to_string(),
            );
        }
    }
}

/// Strip the quotes (and any raw/byte prefix) off a string literal.
fn unquote(lit: &str) -> String {
    lit.trim_start_matches(['r', 'b', '#'])
        .trim_end_matches('#')
        .trim_matches('"')
        .to_string()
}

/// Cross-file half of D3: the label table must be duplicate-free.
pub(crate) fn check_label_uniqueness(labels: &[LabelSite], findings: &mut Vec<Finding>) {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut sorted: Vec<&LabelSite> = labels.iter().collect();
    sorted.sort_by(|a, b| {
        a.label
            .cmp(&b.label)
            .then(a.path.cmp(&b.path))
            .then(a.line.cmp(&b.line))
    });
    for site in sorted {
        if !seen.insert(&site.label) {
            findings.push(Finding {
                rule: "D3".to_string(),
                path: site.path.clone(),
                line: site.line,
                message: format!(
                    "duplicate fork label {:?}: two subsystems forking the same label \
                     from the same parent draw identical streams",
                    site.label
                ),
                fingerprint: format!("D3|{}|dup:{}", site.path, site.label),
            });
        }
    }
}

// ---------------------------------------------------------------- R1 --

/// R1: library code returns typed errors instead of panicking. Matches
/// `.unwrap()`, `.expect("…")` (a string argument distinguishes
/// `Option::expect` from unrelated `expect` methods), `panic!`, and
/// indexing by an integer literal.
fn rule_r1_panic_paths(ctx: &FileCtx<'_>, sink: &mut FileSink) {
    let sig = &ctx.sig;
    for i in 0..sig.len() {
        match sig.text(i) {
            "unwrap"
                if sig.before(i, 1) == "." && sig.text(i + 1) == "(" && sig.text(i + 2) == ")" =>
            {
                emit(
                    ctx,
                    sink,
                    "R1",
                    i,
                    "unwrap() in library code; return a typed error, provide a \
                     fallback, or annotate the reviewed invariant"
                        .to_string(),
                );
            }
            "expect"
                if sig.before(i, 1) == "."
                    && sig.text(i + 1) == "("
                    && sig.text(i + 2).starts_with('"') =>
            {
                emit(
                    ctx,
                    sink,
                    "R1",
                    i,
                    "expect() in library code; return a typed error instead of \
                     panicking with a message"
                        .to_string(),
                );
            }
            "panic" if sig.text(i + 1) == "!" => {
                emit(
                    ctx,
                    sink,
                    "R1",
                    i,
                    "panic! in library code; bubble a typed error up instead".to_string(),
                );
            }
            "[" if sig.kind(i + 1) == TokKind::Num
                && sig.text(i + 2) == "]"
                && (matches!(sig.kind(i.saturating_sub(1)), TokKind::Ident)
                    || matches!(sig.before(i, 1), ")" | "]")) =>
            {
                emit(
                    ctx,
                    sink,
                    "R1",
                    i,
                    format!(
                        "indexing by literal `[{}]` can panic; use .first()/.get({})",
                        sig.text(i + 1),
                        sig.text(i + 1)
                    ),
                );
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------- R2 --

/// R2: serialization goes through `impl_json!` so every type shares the
/// canonical-form guarantees (stable key order, fixed-point reparse).
/// A hand-rolled `impl ToJson for …` outside `crates/json` drifts.
fn rule_r2_hand_rolled_json(ctx: &FileCtx<'_>, sink: &mut FileSink) {
    if ctx.path.starts_with("crates/json/") {
        return;
    }
    let sig = &ctx.sig;
    for i in 0..sig.len() {
        if sig.text(i) != "impl" {
            continue;
        }
        let mut saw_trait = false;
        for j in i + 1..(i + 40).min(sig.len()) {
            match sig.text(j) {
                "ToJson" | "FromJson" => saw_trait = true,
                "for" if saw_trait => {
                    emit(
                        ctx,
                        sink,
                        "R2",
                        i,
                        "hand-rolled ToJson/FromJson impl; use impl_json! so the \
                         type keeps the workspace's canonical JSON form"
                            .to_string(),
                    );
                    break;
                }
                "{" | ";" => break,
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------- S1 --

/// S1: `partial_cmp` on floats panics or misorders on NaN; the analysis
/// crate must use `f64::total_cmp` / `stats::sort_floats` so aggregate
/// ordering is total and deterministic.
fn rule_s1_total_order(ctx: &FileCtx<'_>, sink: &mut FileSink) {
    if !ctx.path.starts_with("crates/analysis/") {
        return;
    }
    let sig = &ctx.sig;
    for i in 0..sig.len() {
        if sig.text(i) == "partial_cmp" {
            emit(
                ctx,
                sink,
                "S1",
                i,
                "partial_cmp in the analysis crate; use f64::total_cmp or \
                 stats::sort_floats for a total, NaN-safe order"
                    .to_string(),
            );
        }
    }
}
