//! Fuzz entry point for the lint lexer.
//!
//! The lexer underpins every rule the workspace trusts for its
//! determinism gates, so its three documented properties are asserted
//! on arbitrary input: totality (no panic), losslessness (token texts
//! concatenate back to the input), and line accuracy (1-based,
//! non-decreasing, consistent with the newlines actually consumed).

use crate::lexer::lex;

/// Run the lexer target on raw fuzz bytes.
pub fn run(data: &[u8]) {
    let source = String::from_utf8_lossy(data);
    let tokens = lex(&source);

    // Lossless: concatenation reproduces the input byte-for-byte.
    let rebuilt: String = tokens.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(rebuilt, source, "lexer dropped or normalized bytes");

    // Line-accurate: lines start at 1, never decrease, and each token's
    // recorded line equals 1 + newlines consumed before it.
    let mut expected_line = 1u32;
    for tok in &tokens {
        assert!(
            tok.line == expected_line,
            "token {:?} recorded line {} but starts on line {}",
            tok.text,
            tok.line,
            expected_line
        );
        expected_line += tok.text.matches('\n').count() as u32;
        assert!(!tok.text.is_empty(), "lexer emitted an empty token");
    }
}

/// Dictionary: the trickiest Rust token shapes — raw strings, byte
/// strings, nested comments, lifetimes, and the rule keywords.
pub const DICT: &[&[u8]] = &[
    b"//",
    b"/*",
    b"*/",
    b"\"",
    b"\\\"",
    b"r#\"",
    b"\"#",
    b"br#\"",
    b"b'",
    b"'a",
    b"'\\''",
    b"0x1f",
    b"1_000u64",
    b"1e9",
    b"unwrap",
    b"fork",
    b"lint:allow(R1)",
    b"#[cfg(test)]",
];

/// Seeds: small Rust fragments covering every token class.
pub const SEEDS: &[&[u8]] = &[
    b"fn main() { let x = 1; }",
    b"// comment\n/* block /* nested */ */\nlet s = r#\"raw \"quoted\"\"#;",
    b"let b = b\"bytes\"; let c = b'x'; let l: &'static str = \"s\";",
    b"x.unwrap(); y.expect(\"msg\"); panic!(\"boom\"); v[0];",
];
