//! Fuzz entry points for the lint lexer and the item parser.
//!
//! The lexer underpins every rule the workspace trusts for its
//! determinism gates, so its three documented properties are asserted
//! on arbitrary input: totality (no panic), losslessness (token texts
//! concatenate back to the input), and line accuracy (1-based,
//! non-decreasing, consistent with the newlines actually consumed).
//!
//! The parser target ([`run_parse`]) drives the scope-tracked item
//! parser and the call-graph builder: both must be total on arbitrary
//! (non-)Rust, parsing must be deterministic, and every recorded line
//! must exist in the input.

use crate::lexer::lex;

/// Run the lexer target on raw fuzz bytes.
pub fn run(data: &[u8]) {
    let source = String::from_utf8_lossy(data);
    let tokens = lex(&source);

    // Lossless: concatenation reproduces the input byte-for-byte.
    let rebuilt: String = tokens.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(rebuilt, source, "lexer dropped or normalized bytes");

    // Line-accurate: lines start at 1, never decrease, and each token's
    // recorded line equals 1 + newlines consumed before it.
    let mut expected_line = 1u32;
    for tok in &tokens {
        assert!(
            tok.line == expected_line,
            "token {:?} recorded line {} but starts on line {}",
            tok.text,
            tok.line,
            expected_line
        );
        expected_line += tok.text.matches('\n').count() as u32;
        assert!(!tok.text.is_empty(), "lexer emitted an empty token");
    }
}

/// Dictionary: the trickiest Rust token shapes — raw strings, byte
/// strings, nested comments, lifetimes, and the rule keywords.
pub const DICT: &[&[u8]] = &[
    b"//",
    b"/*",
    b"*/",
    b"\"",
    b"\\\"",
    b"r#\"",
    b"\"#",
    b"br#\"",
    b"b'",
    b"'a",
    b"'\\''",
    b"0x1f",
    b"1_000u64",
    b"1e9",
    b"unwrap",
    b"fork",
    b"lint:allow(R1)",
    b"#[cfg(test)]",
];

/// Seeds: small Rust fragments covering every token class.
pub const SEEDS: &[&[u8]] = &[
    b"fn main() { let x = 1; }",
    b"// comment\n/* block /* nested */ */\nlet s = r#\"raw \"quoted\"\"#;",
    b"let b = b\"bytes\"; let c = b'x'; let l: &'static str = \"s\";",
    b"x.unwrap(); y.expect(\"msg\"); panic!(\"boom\"); v[0];",
];

/// Run the parser + call-graph target on raw fuzz bytes. The input is
/// treated as the contents of one library file; the full per-file
/// pipeline (annotations, test regions, rules, item table) and the
/// workspace phases (call graph, interprocedural passes) must be total
/// and deterministic on it.
pub fn run_parse(data: &[u8]) {
    let source = String::from_utf8_lossy(data).into_owned();
    let file = crate::engine::SourceFile {
        path: "crates/fuzz/src/lib.rs".to_string(),
        text: source,
    };

    // Totality + determinism of the per-file pipeline.
    let a = crate::engine::analyze_one(&file);
    let b = crate::engine::analyze_one(&file);
    assert_eq!(a, b, "per-file analysis must be deterministic");

    // Structural sanity of the item table: every recorded line exists
    // in the input and every qual is rooted in the file's module.
    let lines = file.text.matches('\n').count() as u64 + 1;
    for f in &a.table.fns {
        assert!(f.line >= 1 && f.line <= lines, "fn line out of range");
        assert!(
            f.qual.starts_with("appvsweb_fuzz"),
            "qual {:?} escaped the module",
            f.qual
        );
        for c in &f.calls {
            assert!(c.line >= 1 && c.line <= lines, "call line out of range");
        }
        for p in &f.panics {
            assert!(p.line >= 1 && p.line <= lines, "panic line out of range");
        }
    }

    // The call graph and the workspace passes must be total too.
    let tables = vec![a.table.clone()];
    let graph = crate::callgraph::CallGraph::build(&tables);
    let classes = vec![crate::engine::classify(&file.path)];
    let allows = vec![a
        .allow_spans
        .iter()
        .map(|s| (s.line as u32, s.rules.clone()))
        .collect()];
    let ctx = crate::taint::PassCtx {
        tables: &tables,
        classes: &classes,
        allows: &allows,
        graph: &graph,
    };
    let mut findings = Vec::new();
    let mut suppressed = std::collections::BTreeMap::new();
    crate::taint::run_workspace_passes(&ctx, &mut findings, &mut suppressed);
}

/// Dictionary for the parser target: item heads, paths, generics, and
/// the body facts the passes key on.
pub const PARSE_DICT: &[&[u8]] = &[
    b"fn ",
    b"pub fn ",
    b"impl ",
    b" for ",
    b"trait ",
    b"mod ",
    b"struct ",
    b"enum ",
    b"use ",
    b"::",
    b"self::",
    b"crate::",
    b"super::",
    b"as ",
    b"{",
    b"}",
    b"->",
    b"<T: Clone>",
    b"macro_rules!",
    b"catch_unwind",
    b".fork(",
    b"rng_labels::",
    b".unwrap()",
    b"unreachable!()",
    b"#[cfg(test)]",
];

/// Seeds for the parser target: fragments that exercise scope tracking,
/// use expansion, and each body-fact extractor.
pub const PARSE_SEEDS: &[&[u8]] = &[
    b"pub fn f(x: u8) -> u8 { g(x) }\nfn g(x: u8) -> u8 { x }\n",
    b"use crate::a::{b, c as d};\nmod a { pub fn b() {} pub fn c() {} }\n",
    b"struct S { rng: SimRng }\nimpl S { fn go(&mut self) { self.rng.fork(\"x\"); } }\n",
    b"fn w() { v.unwrap(); panic!(\"boom\"); std::panic::catch_unwind(|| {}); }\n",
    b"macro_rules! m { ($x:expr) => { $x.unwrap() }; }\n",
    b"impl Iterator for S { type Item = u8; fn next(&mut self) -> Option<u8> { None } }\n",
];
