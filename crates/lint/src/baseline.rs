//! Baseline bookkeeping: CI fails on *new* findings while a committed
//! `lint.baseline.json` lets the existing debt burn down in reviewable
//! steps instead of one giant cleanup.
//!
//! Entries match findings by fingerprint (rule + path + a token window
//! at the site), not by line number, so unrelated edits above a
//! baselined site don't churn the file. Matching is multiset-aware:
//! two identical sites need two entries.

use crate::engine::{Finding, Report};
use appvsweb_json::{encode_pretty, impl_json, parse, FromJson, JsonError};
use std::collections::BTreeMap;

/// One accepted (baselined) finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Fingerprint copied from the accepted finding.
    pub fingerprint: String,
    /// The finding message at the time it was accepted (informational).
    pub message: String,
}

impl_json!(struct BaselineEntry { rule, path, fingerprint, message });

/// The committed baseline document.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Baseline {
    /// Schema version.
    pub version: u64,
    /// Accepted findings.
    pub findings: Vec<BaselineEntry>,
}

impl_json!(struct Baseline { version, findings });

/// Result of diffing a report against a baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Findings not covered by the baseline — these fail CI.
    pub new: Vec<Finding>,
    /// Baseline entries that no longer match any finding — stale debt
    /// that `--fix-baseline` will drop.
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Build a baseline that accepts every finding of `report`.
    pub fn from_report(report: &Report) -> Baseline {
        Baseline {
            version: 1,
            findings: report
                .findings
                .iter()
                .map(|f| BaselineEntry {
                    rule: f.rule.clone(),
                    path: f.path.clone(),
                    fingerprint: f.fingerprint.clone(),
                    message: f.message.clone(),
                })
                .collect(),
        }
    }

    /// Parse a baseline document.
    pub fn from_json_text(text: &str) -> Result<Baseline, JsonError> {
        Baseline::from_json(&parse(text)?)
    }

    /// Serialize for committing.
    pub fn to_json_text(&self) -> String {
        encode_pretty(self) + "\n"
    }

    /// Multiset-diff `report` against this baseline.
    pub fn diff(&self, report: &Report) -> BaselineDiff {
        let mut budget: BTreeMap<&str, u64> = BTreeMap::new();
        for entry in &self.findings {
            *budget.entry(entry.fingerprint.as_str()).or_insert(0) += 1;
        }
        let mut diff = BaselineDiff::default();
        for finding in &report.findings {
            match budget.get_mut(finding.fingerprint.as_str()) {
                Some(n) if *n > 0 => *n -= 1,
                _ => diff.new.push(finding.clone()),
            }
        }
        // Whatever budget is left over no longer matches anything.
        let mut remaining = budget;
        for entry in &self.findings {
            if let Some(n) = remaining.get_mut(entry.fingerprint.as_str()) {
                if *n > 0 {
                    *n -= 1;
                    diff.stale.push(entry.clone());
                }
            }
        }
        diff
    }
}
