//! Baseline bookkeeping: CI fails on *new* findings while a committed
//! `lint.baseline.json` lets the existing debt burn down in reviewable
//! steps instead of one giant cleanup.
//!
//! Entries match findings by fingerprint (rule + path + a token window
//! at the site, or qualified names for the interprocedural passes), not
//! by line number, so unrelated edits above a baselined site don't
//! churn the file. Matching is multiset-aware: two identical sites need
//! two entries.
//!
//! Two schemas exist on disk. **v1** was a flat `findings` array;
//! **v2** (current) groups entries by rule so a review can see the
//! per-rule debt at a glance and diffs stay local to the rule that
//! changed:
//!
//! ```json
//! {
//!   "version": 2,
//!   "rules": [
//!     { "rule": "R1",
//!       "entries": [ { "path": "…", "fingerprint": "…", "message": "…" } ] }
//!   ]
//! }
//! ```
//!
//! [`Baseline::from_json_text`] reads both; every write path
//! ([`Baseline::to_json_text`]) emits v2. `appvsweb-lint
//! --migrate-baseline` rewrites a committed v1 file in place.

use crate::engine::{Finding, Report};
use appvsweb_json::{encode_pretty, impl_json, parse, FromJson, JsonError};
use std::collections::BTreeMap;

/// One accepted (baselined) finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Fingerprint copied from the accepted finding.
    pub fingerprint: String,
    /// The finding message at the time it was accepted (informational).
    pub message: String,
}

impl_json!(struct BaselineEntry { rule, path, fingerprint, message });

/// v1 wire form: flat entry list under `findings`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct BaselineV1 {
    version: u64,
    findings: Vec<BaselineEntry>,
}

impl_json!(struct BaselineV1 { version, findings });

/// v2 wire form: one entry, rule implied by the enclosing group.
#[derive(Clone, Debug, PartialEq, Eq)]
struct EntryV2 {
    path: String,
    fingerprint: String,
    message: String,
}

impl_json!(struct EntryV2 { path, fingerprint, message });

/// v2 wire form: all accepted findings of one rule.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RuleGroupV2 {
    rule: String,
    entries: Vec<EntryV2>,
}

impl_json!(struct RuleGroupV2 { rule, entries });

/// v2 wire form: the document.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct BaselineV2 {
    version: u64,
    rules: Vec<RuleGroupV2>,
}

impl_json!(struct BaselineV2 { version, rules });

/// The in-memory baseline: a flat multiset of accepted findings,
/// independent of which wire schema it was read from.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Baseline {
    /// Accepted findings.
    pub findings: Vec<BaselineEntry>,
}

/// Result of diffing a report against a baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Findings not covered by the baseline — these fail CI.
    pub new: Vec<Finding>,
    /// Baseline entries that no longer match any finding — stale debt
    /// that `--fix-baseline` will drop.
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Build a baseline that accepts every finding of `report`.
    pub fn from_report(report: &Report) -> Baseline {
        Baseline {
            findings: report
                .findings
                .iter()
                .map(|f| BaselineEntry {
                    rule: f.rule.clone(),
                    path: f.path.clone(),
                    fingerprint: f.fingerprint.clone(),
                    message: f.message.clone(),
                })
                .collect(),
        }
    }

    /// Parse a baseline document, accepting both the v1 flat schema and
    /// the v2 grouped schema (dispatched on the `version` field).
    pub fn from_json_text(text: &str) -> Result<Baseline, JsonError> {
        let value = parse(text)?;
        if let Ok(v2) = BaselineV2::from_json(&value) {
            if v2.version == 2 {
                return Ok(Baseline {
                    findings: v2
                        .rules
                        .into_iter()
                        .flat_map(|group| {
                            let rule = group.rule;
                            group
                                .entries
                                .into_iter()
                                .map(move |e| BaselineEntry {
                                    rule: rule.clone(),
                                    path: e.path,
                                    fingerprint: e.fingerprint,
                                    message: e.message,
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect(),
                });
            }
        }
        let v1 = BaselineV1::from_json(&value)?;
        Ok(Baseline {
            findings: v1.findings,
        })
    }

    /// Serialize for committing — always the v2 grouped schema, with
    /// rule groups sorted by rule and entries by (path, fingerprint) so
    /// regeneration is deterministic.
    pub fn to_json_text(&self) -> String {
        let mut groups: BTreeMap<&str, Vec<EntryV2>> = BTreeMap::new();
        for entry in &self.findings {
            groups.entry(&entry.rule).or_default().push(EntryV2 {
                path: entry.path.clone(),
                fingerprint: entry.fingerprint.clone(),
                message: entry.message.clone(),
            });
        }
        let doc = BaselineV2 {
            version: 2,
            rules: groups
                .into_iter()
                .map(|(rule, mut entries)| {
                    entries.sort_by(|a, b| {
                        a.path.cmp(&b.path).then(a.fingerprint.cmp(&b.fingerprint))
                    });
                    RuleGroupV2 {
                        rule: rule.to_string(),
                        entries,
                    }
                })
                .collect(),
        };
        encode_pretty(&doc) + "\n"
    }

    /// Multiset-diff `report` against this baseline.
    pub fn diff(&self, report: &Report) -> BaselineDiff {
        let mut budget: BTreeMap<&str, u64> = BTreeMap::new();
        for entry in &self.findings {
            *budget.entry(entry.fingerprint.as_str()).or_insert(0) += 1;
        }
        let mut diff = BaselineDiff::default();
        for finding in &report.findings {
            match budget.get_mut(finding.fingerprint.as_str()) {
                Some(n) if *n > 0 => *n -= 1,
                _ => diff.new.push(finding.clone()),
            }
        }
        // Whatever budget is left over no longer matches anything.
        let mut remaining = budget;
        for entry in &self.findings {
            if let Some(n) = remaining.get_mut(entry.fingerprint.as_str()) {
                if *n > 0 {
                    *n -= 1;
                    diff.stale.push(entry.clone());
                }
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rule: &str, path: &str, fp: &str) -> BaselineEntry {
        BaselineEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            fingerprint: fp.to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn v1_documents_still_parse() {
        let v1 = r#"{
            "version": 1,
            "findings": [
                {"rule": "R1", "path": "a.rs", "fingerprint": "R1|a.rs|x", "message": "m"}
            ]
        }"#;
        let baseline = Baseline::from_json_text(v1).unwrap();
        assert_eq!(baseline.findings, vec![entry("R1", "a.rs", "R1|a.rs|x")]);
    }

    #[test]
    fn v2_roundtrip_groups_by_rule_sorted() {
        let baseline = Baseline {
            findings: vec![
                entry("T1", "b.rs", "T1|b.rs|y"),
                entry("R1", "a.rs", "R1|a.rs|x"),
                entry("R1", "a.rs", "R1|a.rs|w"),
            ],
        };
        let text = baseline.to_json_text();
        assert!(text.contains("\"version\": 2"));
        let reread = Baseline::from_json_text(&text).unwrap();
        // Reading a v2 document yields entries rule-grouped and sorted.
        assert_eq!(
            reread.findings,
            vec![
                entry("R1", "a.rs", "R1|a.rs|w"),
                entry("R1", "a.rs", "R1|a.rs|x"),
                entry("T1", "b.rs", "T1|b.rs|y"),
            ]
        );
        // Regeneration is a fixed point.
        assert_eq!(reread.to_json_text(), text);
    }

    #[test]
    fn v1_to_v2_migration_preserves_the_multiset() {
        let v1 = BaselineV1 {
            version: 1,
            findings: vec![
                entry("R1", "a.rs", "R1|a.rs|x"),
                entry("R1", "a.rs", "R1|a.rs|x"),
                entry("D2", "c.rs", "D2|c.rs|z"),
            ],
        };
        let migrated = Baseline::from_json_text(&(encode_pretty(&v1) + "\n")).unwrap();
        let text = migrated.to_json_text();
        let reread = Baseline::from_json_text(&text).unwrap();
        // The duplicate R1 entry survives the round trip (multiset).
        assert_eq!(
            reread
                .findings
                .iter()
                .filter(|e| e.fingerprint == "R1|a.rs|x")
                .count(),
            2
        );
        assert_eq!(reread.findings.len(), 3);
    }
}
