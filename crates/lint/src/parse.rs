//! A lightweight, total Rust item/signature/body parser built on the
//! lossless lexer.
//!
//! This is not a Rust front end: it recovers exactly the facts the
//! interprocedural passes need — which functions exist (with qualified
//! names), which type names appear in their signatures, what each body
//! *calls*, where it can panic, where it forks RNG streams, and which
//! struct fields carry which types — and nothing else. Three properties
//! the rest of the crate relies on:
//!
//! 1. **Total**: any token stream, including invalid or truncated Rust,
//!    parses without panicking (the `lint_parse` fuzz target pins this).
//! 2. **Deterministic**: the table is a pure function of the token
//!    stream; item order follows source order.
//! 3. **Serializable**: every table type round-trips through
//!    `impl_json!`, which is what makes the content-hash cache in
//!    [`crate::cache`] possible.
//!
//! Parsing is scope-tracked, not grammar-driven: a cursor walks the
//! significant tokens keeping a stack of `mod`/`impl`/`trait`/`fn`
//! scopes keyed on brace depth. `macro_rules!` bodies are skipped
//! wholesale (their token soup is not item position), which is one of
//! the documented soundness caveats (DESIGN §10).

use crate::engine::SigView;
use crate::lexer::TokKind;
use appvsweb_json::impl_json;
use std::collections::BTreeMap;

/// Schema version of the serialized table; bump when any table type
/// changes shape so stale cache entries self-invalidate.
pub const TABLE_SCHEMA: u64 = 2;

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// `::`-joined target path as written (`a::b::f`), or the bare
    /// method name for `.m(...)` receiver calls.
    pub target: String,
    /// True for `.m(...)` method calls (resolved by name, not path).
    pub method: bool,
    /// 1-based source line.
    pub line: u64,
}

impl_json!(struct CallSite { target, method, line });

/// One potentially panicking site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicSite {
    /// What can panic: `unwrap`, `expect`, `panic`, `unreachable`,
    /// `todo`, `unimplemented`, or `index`.
    pub kind: String,
    /// 1-based source line.
    pub line: u64,
    /// True when a `lint:allow(R1)`/`lint:allow(R1x)` annotation covers
    /// the site — the invariant is reviewed, so R1x treats it as total.
    pub allowed: bool,
}

impl_json!(struct PanicSite { kind, line, allowed });

/// One `.fork(...)` site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForkSite {
    /// The `rng_labels` item the label comes from (`WORLD`,
    /// `session`, …), or `""` for a literal or unrecognized label.
    pub label_item: String,
    /// The literal label text when the argument is a string literal.
    pub literal: String,
    /// 1-based source line.
    pub line: u64,
}

impl_json!(struct ForkSite { label_item, literal, line });

/// One function (free fn, inherent/trait method, or nested fn).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnItem {
    /// Bare name.
    pub name: String,
    /// Fully qualified name: `module::[Type::]name`.
    pub qual: String,
    /// The `impl`/`trait` type the fn is a method of, or `""`.
    pub self_ty: String,
    /// 1-based line of the `fn` keyword.
    pub line: u64,
    /// Identifier tokens appearing in the parameter list (type names
    /// and parameter names alike; matchers key on type names).
    pub sig_types: Vec<String>,
    /// Identifier tokens appearing in the return type.
    pub ret_types: Vec<String>,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Panic sites in the body, in source order.
    pub panics: Vec<PanicSite>,
    /// RNG fork sites in the body, in source order.
    pub forks: Vec<ForkSite>,
    /// Body mentions `catch_unwind` — a panic-absorbing boundary.
    pub catches_unwind: bool,
    /// The fn sits inside a `#[cfg(test)]` region or `#[test]` item.
    pub in_test: bool,
}

impl_json!(struct FnItem {
    name, qual, self_ty, line, sig_types, ret_types, calls, panics, forks,
    catches_unwind, in_test
});

/// One `struct`/`enum` definition with the identifier tokens of its
/// field/variant payload types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeItem {
    /// Bare name.
    pub name: String,
    /// Fully qualified name: `module::name`.
    pub qual: String,
    /// 1-based line of the `struct`/`enum` keyword.
    pub line: u64,
    /// Identifier tokens appearing in field or variant payload types.
    pub field_types: Vec<String>,
}

impl_json!(struct TypeItem { name, qual, line, field_types });

/// One name a `use` declaration brings into file scope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseDecl {
    /// The in-scope name (last path segment, or the `as` alias).
    pub name: String,
    /// The full `::`-joined path the name refers to.
    pub path: String,
}

impl_json!(struct UseDecl { name, path });

/// The per-file item table the workspace passes consume.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FileTable {
    /// Workspace-relative path.
    pub path: String,
    /// Module path of the file root (`appvsweb_pii::profile`, …).
    pub module: String,
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// Structs and enums, in source order.
    pub types: Vec<TypeItem>,
    /// `use` declarations, expanded one name per entry.
    pub uses: Vec<UseDecl>,
}

impl_json!(struct FileTable { path, module, fns, types, uses });

/// Derive the module path of a file from its workspace-relative path.
///
/// `crates/<c>/src/a/b.rs` → `appvsweb_<c>::a::b` (with `lib.rs`,
/// `main.rs`, and `mod.rs` contributing no segment). Files outside a
/// crate's `src/` (workspace `tests/`, `benches/`, `examples/`,
/// `src/bin/`) get a stable synthetic module so their items still have
/// unique qualified names.
pub fn module_of(path: &str) -> String {
    let segs: Vec<&str> = path.split('/').collect();
    let (root, rest): (String, &[&str]) = match segs.as_slice() {
        ["crates", c, "src", rest @ ..] => (format!("appvsweb_{}", c.replace('-', "_")), rest),
        ["crates", c, kind, rest @ ..] => {
            (format!("appvsweb_{}::{kind}", c.replace('-', "_")), rest)
        }
        ["src", rest @ ..] => ("appvsweb".to_string(), rest),
        ["tests", rest @ ..] => ("tests".to_string(), rest),
        ["examples", rest @ ..] => ("examples".to_string(), rest),
        _ => ("file".to_string(), segs.as_slice()),
    };
    let mut out = root;
    for (i, seg) in rest.iter().enumerate() {
        let seg = if i + 1 == rest.len() {
            match seg.strip_suffix(".rs") {
                Some("lib" | "main" | "mod") | None => continue,
                Some(stem) => stem,
            }
        } else {
            seg
        };
        out.push_str("::");
        out.push_str(&seg.replace('-', "_"));
    }
    out
}

/// What kind of scope the cursor is inside.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ScopeKind {
    /// `mod name { … }` — appends a module segment.
    Mod(String),
    /// `impl Ty { … }` / `trait Ty { … }` — methods qualify under `Ty`.
    Impl(String),
    /// `fn … { … }` — body facts accumulate into `fns[idx]`.
    Fn(usize),
    /// `macro_rules! … { … }` — contents ignored entirely.
    Macro,
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth *inside* the scope body; the scope pops when a `}`
    /// returns the cursor below it.
    depth: u32,
}

/// Keywords that look like calls when followed by `(` but are not.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "fn", "let", "else",
    "break", "continue", "ref", "mut", "box", "await", "unsafe", "dyn", "impl", "where", "pub",
];

/// Parse one file's significant-token stream into its item table.
///
/// `test_regions` and `allows` come from the engine's annotation pass:
/// they decide `FnItem::in_test` and `PanicSite::allowed`.
pub fn parse_file(
    path: &str,
    sig: &SigView,
    test_regions: &[(u32, u32)],
    allows: &BTreeMap<u32, Vec<String>>,
) -> FileTable {
    let mut p = Parser {
        sig,
        test_regions,
        allows,
        depth: 0,
        scopes: Vec::new(),
        table: FileTable {
            path: path.to_string(),
            module: module_of(path),
            ..FileTable::default()
        },
    };
    p.run();
    p.table
}

struct Parser<'a> {
    sig: &'a SigView,
    test_regions: &'a [(u32, u32)],
    allows: &'a BTreeMap<u32, Vec<String>>,
    depth: u32,
    scopes: Vec<Scope>,
    table: FileTable,
}

impl Parser<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Is a panic at `line` covered by a reviewed R1/R1x annotation
    /// (on the line itself or the line directly above)?
    fn panic_allowed(&self, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == "R1" || r == "R1x"))
        })
    }

    /// The module path at the cursor: file module plus inline `mod`s.
    fn module_here(&self) -> String {
        let mut out = self.table.module.clone();
        for s in &self.scopes {
            if let ScopeKind::Mod(name) = &s.kind {
                out.push_str("::");
                out.push_str(name);
            }
        }
        out
    }

    /// The innermost `impl`/`trait` type at the cursor, or `""`.
    fn self_ty_here(&self) -> String {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| match &s.kind {
                ScopeKind::Impl(ty) => Some(ty.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Index of the innermost enclosing fn, unless a `macro_rules!`
    /// scope intervenes (macro bodies are not real control flow).
    fn current_fn(&self) -> Option<usize> {
        for s in self.scopes.iter().rev() {
            match &s.kind {
                ScopeKind::Fn(idx) => return Some(*idx),
                ScopeKind::Macro => return None,
                _ => {}
            }
        }
        None
    }

    fn in_macro(&self) -> bool {
        self.scopes
            .iter()
            .any(|s| matches!(s.kind, ScopeKind::Macro))
    }

    /// Skip a balanced `<…>` generics group starting at `i` (which must
    /// point at `<`); returns the index just past the matching `>`.
    /// Gives up (returns `i + 1`) after a bounded scan so expression
    /// `<` in broken input can't send the cursor to EOF.
    fn skip_generics(&self, i: usize) -> usize {
        let sig = self.sig;
        if sig.text(i) != "<" {
            return i;
        }
        let mut depth = 0i64;
        let mut j = i;
        let limit = (i + 512).min(sig.len());
        while j < limit {
            match sig.text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                ";" | "{" => return j, // clearly not generics — bail
                _ => {}
            }
            j += 1;
        }
        i + 1
    }

    /// Read a type path (`a::b::C`, generics skipped) starting at `i`;
    /// returns (joined path, index past it).
    fn read_type_path(&self, mut i: usize) -> (String, usize) {
        let sig = self.sig;
        let mut segs: Vec<String> = Vec::new();
        // Leading `&`, `&mut`, `dyn` are not part of the name.
        while matches!(sig.text(i), "&" | "mut" | "dyn") {
            i += 1;
        }
        while sig.kind(i) == TokKind::Ident {
            segs.push(sig.text(i).to_string());
            i += 1;
            if sig.text(i) == "<" {
                i = self.skip_generics(i);
            }
            if sig.text(i) == ":" && sig.text(i + 1) == ":" {
                i += 2;
            } else {
                break;
            }
        }
        (segs.join("::"), i)
    }

    fn run(&mut self) {
        let mut i = 0usize;
        while i < self.sig.len() {
            i = self.step(i);
        }
    }

    /// Process the token at `i`; returns the next cursor position
    /// (always > `i`, so the walk terminates).
    fn step(&mut self, i: usize) -> usize {
        let sig = self.sig;
        let t = sig.text(i);
        match t {
            "{" => {
                self.depth += 1;
                i + 1
            }
            "}" => {
                while self
                    .scopes
                    .last()
                    .is_some_and(|s| s.depth >= self.depth.max(1))
                {
                    self.scopes.pop();
                }
                self.depth = self.depth.saturating_sub(1);
                i + 1
            }
            _ if self.in_macro() => i + 1,
            "macro_rules" if sig.text(i + 1) == "!" => {
                // `macro_rules! name { … }` — push a Macro scope pinned
                // to the body brace; everything inside is skipped.
                let mut j = i + 2;
                if sig.kind(j) == TokKind::Ident {
                    j += 1;
                }
                if sig.text(j) == "{" {
                    self.depth += 1;
                    self.scopes.push(Scope {
                        kind: ScopeKind::Macro,
                        depth: self.depth,
                    });
                    j + 1
                } else {
                    j
                }
            }
            "mod" if sig.kind(i + 1) == TokKind::Ident && sig.text(i + 2) == "{" => {
                let name = sig.text(i + 1).to_string();
                self.depth += 1;
                self.scopes.push(Scope {
                    kind: ScopeKind::Mod(name),
                    depth: self.depth,
                });
                i + 3
            }
            "impl" | "trait" if !self.in_fn_body() => self.item_impl_or_trait(i),
            "fn" if sig.kind(i + 1) == TokKind::Ident => self.item_fn(i),
            "struct" | "enum" if !self.in_fn_body() && sig.kind(i + 1) == TokKind::Ident => {
                self.item_type(i)
            }
            "use" if !self.in_fn_body() => self.item_use(i),
            _ => {
                if let Some(fn_idx) = self.current_fn() {
                    self.body_fact(i, fn_idx);
                }
                i + 1
            }
        }
    }

    fn in_fn_body(&self) -> bool {
        self.current_fn().is_some()
    }

    /// `impl [<…>] A [for B] {` / `trait A {` — push an Impl scope whose
    /// type is the implemented-on type (`B` when `for` is present).
    fn item_impl_or_trait(&mut self, i: usize) -> usize {
        let sig = self.sig;
        let mut j = i + 1;
        if sig.text(j) == "<" {
            j = self.skip_generics(j);
        }
        let (first, after) = self.read_type_path(j);
        let (ty, mut j) = if sig.text(after) == "for" {
            self.read_type_path(after + 1)
        } else {
            (first, after)
        };
        // Scan to the body brace (skipping where-clauses); a `;` first
        // means no body (e.g. `impl Trait for Ty;` never parses, but
        // stay total).
        let limit = (j + 256).min(sig.len());
        while j < limit && sig.text(j) != "{" && sig.text(j) != ";" {
            j += 1;
        }
        if sig.text(j) == "{" && !ty.is_empty() {
            let last = ty.rsplit("::").next().unwrap_or(&ty).to_string();
            self.depth += 1;
            self.scopes.push(Scope {
                kind: ScopeKind::Impl(last),
                depth: self.depth,
            });
            j + 1
        } else {
            j.max(i + 1)
        }
    }

    /// `fn name [<…>] ( params ) [-> Ret] [where …] { body }`.
    fn item_fn(&mut self, i: usize) -> usize {
        let sig = self.sig;
        let name = sig.text(i + 1).to_string();
        let line = sig.line(i);
        let mut j = i + 2;
        if sig.text(j) == "<" {
            j = self.skip_generics(j);
        }
        // Parameter list.
        let mut sig_types = Vec::new();
        if sig.text(j) == "(" {
            let mut depth = 1i64;
            j += 1;
            while j < sig.len() && depth > 0 {
                match sig.text(j) {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {
                        if sig.kind(j) == TokKind::Ident {
                            sig_types.push(sig.text(j).to_string());
                        }
                    }
                }
                j += 1;
            }
        }
        // Return type: `-> …` up to `{`, `;`, or `where`.
        let mut ret_types = Vec::new();
        if sig.text(j) == "-" && sig.text(j + 1) == ">" {
            j += 2;
            while j < sig.len() && !matches!(sig.text(j), "{" | ";" | "where") {
                if sig.kind(j) == TokKind::Ident {
                    ret_types.push(sig.text(j).to_string());
                }
                j += 1;
            }
        }
        // Where clause: skip to `{` or `;`.
        while j < sig.len() && !matches!(sig.text(j), "{" | ";") {
            j += 1;
        }
        let self_ty = self.self_ty_here();
        let module = self.module_here();
        let qual = if self_ty.is_empty() {
            format!("{module}::{name}")
        } else {
            format!("{module}::{self_ty}::{name}")
        };
        let item = FnItem {
            name,
            qual,
            self_ty,
            line: line as u64,
            sig_types,
            ret_types,
            calls: Vec::new(),
            panics: Vec::new(),
            forks: Vec::new(),
            catches_unwind: false,
            in_test: self.in_test(line),
        };
        if sig.text(j) == "{" {
            self.table.fns.push(item);
            let idx = self.table.fns.len() - 1;
            self.depth += 1;
            self.scopes.push(Scope {
                kind: ScopeKind::Fn(idx),
                depth: self.depth,
            });
            j + 1
        } else {
            // Declaration-only (trait method signature): keep the item
            // for symbol completeness, with an empty body.
            self.table.fns.push(item);
            j.max(i + 1)
        }
    }

    /// `struct Name { f: Ty, … }` / `struct Name(Ty, …);` / `enum Name { V(Ty), … }`.
    fn item_type(&mut self, i: usize) -> usize {
        let sig = self.sig;
        let name = sig.text(i + 1).to_string();
        let line = sig.line(i);
        let mut j = i + 2;
        if sig.text(j) == "<" {
            j = self.skip_generics(j);
        }
        let mut field_types = Vec::new();
        match sig.text(j) {
            "{" | "(" => {
                let open = sig.text(j);
                let close = if open == "{" { "}" } else { ")" };
                let mut depth = 1i64;
                j += 1;
                while j < sig.len() && depth > 0 {
                    let t = sig.text(j);
                    if t == open {
                        depth += 1;
                    } else if t == close {
                        depth -= 1;
                    } else if sig.kind(j) == TokKind::Ident {
                        field_types.push(sig.text(j).to_string());
                    }
                    j += 1;
                }
            }
            _ => {
                // Unit struct or `struct Name;` — nothing to collect.
            }
        }
        let module = self.module_here();
        self.table.types.push(TypeItem {
            qual: format!("{module}::{name}"),
            name,
            line: line as u64,
            field_types,
        });
        j.max(i + 1)
    }

    /// `use a::b::{c, d as e, f::g};` — expand to one `UseDecl` per
    /// bound name. Nested groups expand recursively; `*` globs are
    /// recorded under the name `*` (the resolver treats them as a
    /// module-wide wildcard).
    fn item_use(&mut self, i: usize) -> usize {
        let sig = self.sig;
        // Collect the tokens of the declaration up to `;`.
        let mut j = i + 1;
        let start = j;
        while j < sig.len() && sig.text(j) != ";" {
            j += 1;
        }
        let toks: Vec<String> = (start..j).map(|k| sig.text(k).to_string()).collect();
        let mut decls = Vec::new();
        expand_use(&toks, &mut Vec::new(), &mut 0, &mut decls, 0);
        self.table.uses.append(&mut decls);
        (j + 1).max(i + 1)
    }

    /// Mine one body token for facts.
    fn body_fact(&mut self, i: usize, fn_idx: usize) {
        let sig = self.sig;
        let t = sig.text(i);
        let line = sig.line(i) as u64;
        let prev = if i == 0 { "" } else { sig.text(i - 1) };

        // Method call / panic-method: `.name(`.
        if prev == "." && sig.kind(i) == TokKind::Ident && sig.text(i + 1) == "(" {
            match t {
                "unwrap" if sig.text(i + 2) == ")" => {
                    self.push_panic(fn_idx, "unwrap", line);
                }
                "expect" if sig.text(i + 2).starts_with('"') => {
                    self.push_panic(fn_idx, "expect", line);
                }
                "fork" => {
                    self.push_fork(fn_idx, i);
                }
                _ => {}
            }
            if let Some(f) = self.table.fns.get_mut(fn_idx) {
                f.calls.push(CallSite {
                    target: t.to_string(),
                    method: true,
                    line,
                });
            }
            return;
        }

        // Panic macros: `panic!(`, `unreachable!(`, `todo!(`, `unimplemented!(`.
        if matches!(t, "panic" | "unreachable" | "todo" | "unimplemented") && sig.text(i + 1) == "!"
        {
            self.push_panic(fn_idx, t, line);
            return;
        }

        // Indexing by integer literal: `expr[0]`.
        if t == "["
            && sig.kind(i + 1) == TokKind::Num
            && sig.text(i + 2) == "]"
            && (matches!(sig.kind(i.saturating_sub(1)), TokKind::Ident)
                || matches!(prev, ")" | "]"))
        {
            self.push_panic(fn_idx, "index", line);
            return;
        }

        if t == "catch_unwind" {
            if let Some(f) = self.table.fns.get_mut(fn_idx) {
                f.catches_unwind = true;
            }
        }

        // Path or bare call: `f(` / `a::b::f(`, not preceded by `.`
        // (handled above), `fn`, or `!` (macro).
        if sig.kind(i) == TokKind::Ident
            && sig.text(i + 1) == "("
            && prev != "."
            && prev != "fn"
            && prev != "!"
            && !NOT_CALLS.contains(&t)
        {
            // Walk back through `seg::`* to build the full path.
            let mut segs = vec![t.to_string()];
            let mut k = i;
            while k >= 3
                && sig.text(k - 1) == ":"
                && sig.text(k - 2) == ":"
                && sig.kind(k - 3) == TokKind::Ident
            {
                segs.push(sig.text(k - 3).to_string());
                k -= 3;
            }
            segs.reverse();
            if let Some(f) = self.table.fns.get_mut(fn_idx) {
                f.calls.push(CallSite {
                    target: segs.join("::"),
                    method: false,
                    line,
                });
            }
        }
    }

    fn push_panic(&mut self, fn_idx: usize, kind: &str, line: u64) {
        let allowed = self.panic_allowed(line as u32);
        if let Some(f) = self.table.fns.get_mut(fn_idx) {
            f.panics.push(PanicSite {
                kind: kind.to_string(),
                line,
                allowed,
            });
        }
    }

    /// Record a `.fork(args)` site: a single string-literal argument, a
    /// `rng_labels::ITEM` constant/builder, or an opaque dynamic label.
    fn push_fork(&mut self, fn_idx: usize, i: usize) {
        let sig = self.sig;
        let mut depth = 1i64;
        let mut j = i + 2;
        let mut arg: Vec<usize> = Vec::new();
        while j < sig.len() && depth > 0 {
            match sig.text(j) {
                "(" => depth += 1,
                ")" => depth -= 1,
                _ => {}
            }
            if depth > 0 {
                arg.push(j);
            }
            j += 1;
        }
        let mut site = ForkSite {
            label_item: String::new(),
            literal: String::new(),
            line: sig.line(i) as u64,
        };
        if arg.len() == 1 {
            if let Some(&a) = arg.first() {
                if sig.kind(a) == TokKind::Lit && sig.text(a).starts_with('"') {
                    site.literal = sig.text(a).trim_matches('"').to_string();
                }
            }
        }
        // `rng_labels :: ITEM` anywhere in the argument names the item.
        for w in 0..arg.len() {
            let at = |o: usize| arg.get(w + o).map(|&x| sig.text(x)).unwrap_or("");
            if at(0) == "rng_labels" && at(1) == ":" && at(2) == ":" && !at(3).is_empty() {
                site.label_item = at(3).to_string();
                break;
            }
        }
        if let Some(f) = self.table.fns.get_mut(fn_idx) {
            f.forks.push(site);
        }
    }
}

/// Recursively expand the token stream of a `use` path into bound
/// names. `prefix` accumulates outer segments; `pos` is the cursor into
/// `toks`. Bounded recursion keeps hostile inputs total.
fn expand_use(
    toks: &[String],
    prefix: &mut Vec<String>,
    pos: &mut usize,
    out: &mut Vec<UseDecl>,
    depth: u32,
) {
    if depth > 16 {
        return;
    }
    let mut segs: Vec<String> = Vec::new();
    while *pos < toks.len() {
        let t = toks[*pos].as_str();
        match t {
            ":" => {
                *pos += 1; // `::` comes as two `:` puncts
            }
            "{" => {
                *pos += 1;
                let outer = prefix.len();
                prefix.extend(segs.iter().cloned());
                loop {
                    expand_use(toks, prefix, pos, out, depth + 1);
                    match toks.get(*pos).map(String::as_str) {
                        Some(",") => *pos += 1,
                        Some("}") => {
                            *pos += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                prefix.truncate(outer);
                return;
            }
            "}" | "," => break,
            "as" => {
                // `path as alias`
                let alias = toks.get(*pos + 1).cloned().unwrap_or_default();
                *pos += 2;
                if !alias.is_empty() && !segs.is_empty() {
                    let mut full = prefix.clone();
                    full.extend(segs.iter().cloned());
                    out.push(UseDecl {
                        name: alias,
                        path: full.join("::"),
                    });
                }
                return;
            }
            _ => {
                segs.push(t.to_string());
                *pos += 1;
            }
        }
    }
    if let Some(last) = segs.last() {
        let mut full = prefix.clone();
        full.extend(segs.iter().cloned());
        out.push(UseDecl {
            name: last.clone(),
            path: full.join("::"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sig_view_of;

    fn parse(src: &str) -> FileTable {
        parse_file(
            "crates/demo/src/lib.rs",
            &sig_view_of(src),
            &[],
            &BTreeMap::new(),
        )
    }

    #[test]
    fn modules_from_paths() {
        assert_eq!(
            module_of("crates/pii/src/profile.rs"),
            "appvsweb_pii::profile"
        );
        assert_eq!(module_of("crates/core/src/lib.rs"), "appvsweb_core");
        assert_eq!(
            module_of("crates/bench/src/bin/repro.rs"),
            "appvsweb_bench::bin::repro"
        );
        assert_eq!(
            module_of("crates/bench/benches/lint.rs"),
            "appvsweb_bench::benches::lint"
        );
        assert_eq!(module_of("tests/chaos.rs"), "tests::chaos");
        assert_eq!(module_of("src/lib.rs"), "appvsweb");
    }

    #[test]
    fn fns_methods_and_quals() {
        let t = parse(
            "fn free() {}\n\
             struct S { x: u64 }\n\
             impl S { fn method(&self, v: Foo) -> Bar { helper(v) } }\n\
             mod inner { pub fn nested() {} }\n\
             impl Display for S { fn fmt(&self) {} }",
        );
        let quals: Vec<&str> = t.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "appvsweb_demo::free",
                "appvsweb_demo::S::method",
                "appvsweb_demo::inner::nested",
                "appvsweb_demo::S::fmt",
            ]
        );
        let method = &t.fns[1];
        assert!(method.sig_types.iter().any(|s| s == "Foo"));
        assert_eq!(method.ret_types, ["Bar"]);
        assert_eq!(method.calls.len(), 1);
        assert_eq!(method.calls[0].target, "helper");
    }

    #[test]
    fn body_facts() {
        let t = parse(
            "fn f(rng: &mut SimRng) {\n\
               let x = opt.unwrap();\n\
               let y = res.expect(\"msg\");\n\
               panic!(\"boom\");\n\
               let z = v[0];\n\
               let r = rng.fork(rng_labels::WORLD);\n\
               let s = rng.fork(\"lit\");\n\
               let c = std::panic::catch_unwind(|| 1);\n\
               a::b::g(1);\n\
             }",
        );
        let f = &t.fns[0];
        let kinds: Vec<&str> = f.panics.iter().map(|p| p.kind.as_str()).collect();
        assert_eq!(kinds, ["unwrap", "expect", "panic", "index"]);
        assert_eq!(f.forks.len(), 2);
        assert_eq!(f.forks[0].label_item, "WORLD");
        assert_eq!(f.forks[1].literal, "lit");
        assert!(f.catches_unwind);
        assert!(f.calls.iter().any(|c| c.target == "a::b::g" && !c.method));
    }

    #[test]
    fn uses_expand() {
        let t = parse("use appvsweb_pii::{GroundTruth, types::PiiType as PT};\nuse a::b;\n");
        let pairs: Vec<(&str, &str)> = t
            .uses
            .iter()
            .map(|u| (u.name.as_str(), u.path.as_str()))
            .collect();
        assert!(pairs.contains(&("GroundTruth", "appvsweb_pii::GroundTruth")));
        assert!(pairs.contains(&("PT", "appvsweb_pii::types::PiiType")));
        assert!(pairs.contains(&("b", "a::b")));
    }

    #[test]
    fn macro_bodies_are_skipped() {
        let t = parse(
            "macro_rules! m { ($x:expr) => { fn ghost() { x.unwrap() } }; }\n\
             fn real() {}",
        );
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn struct_and_enum_field_types() {
        let t = parse(
            "struct W { rng: SimRng, n: u64 }\n\
             enum E { A(GroundTruth), B }\n\
             struct Unit;",
        );
        assert_eq!(t.types.len(), 3);
        assert!(t.types[0].field_types.iter().any(|f| f == "SimRng"));
        assert!(t.types[1].field_types.iter().any(|f| f == "GroundTruth"));
        assert!(t.types[2].field_types.is_empty());
    }

    #[test]
    fn totality_on_garbage() {
        for src in [
            "fn",
            "fn (",
            "impl",
            "impl <",
            "use ::{{{",
            "mod m { fn f( {",
            "struct S(",
            "trait T { fn g(); }",
            "fn f() { a.b(",
            "}}}}",
            "fn f<T: Iterator<Item = (u8, u8)>>() -> impl Fn() {}",
        ] {
            let _ = parse(src);
        }
    }
}
