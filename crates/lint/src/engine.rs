//! The analysis engine: file classification, `#[cfg(test)]` region
//! detection, `lint:allow` annotations, the per-file rule driver, and
//! the cross-file phase (D3 label table, call graph, interprocedural
//! passes).
//!
//! The pipeline has two halves:
//!
//! 1. **Per-file** (embarrassingly parallel, fanned out over
//!    `core::exec::run_indexed`, content-hash cached): lex, mine
//!    annotations, find test regions, run the file-local rules, and
//!    parse the item table ([`crate::parse`]). The result is a
//!    [`FileAnalysis`] — a pure function of one file's bytes.
//! 2. **Cross-file** (sequential, cheap): D3 label uniqueness, the
//!    workspace call graph ([`crate::callgraph`]), and the T1/R1x/D3x
//!    passes ([`crate::taint`]), folded over the ordered per-file
//!    results so worker count can never reorder anything.
//!
//! `lint:allow` annotations are mined from comments and suppress
//! findings on their own line and the line directly below:
//!
//! ```text
//! // lint:allow(R1) slice is exactly 4 bytes by construction
//! ```
//!
//! An annotation must name known rules and carry a non-empty reason —
//! a reason-less or unknown-rule annotation is itself a finding (rule
//! `LINT`). Suppressed sites are tallied per rule in
//! [`Report::suppressed`] so the debt stays visible in the bench meta.

use crate::lexer::{lex, Tok, TokKind};
use crate::parse::FileTable;
use crate::rules;
use crate::taint;
use appvsweb_json::impl_json;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// One source file handed to the analyzer. `path` is workspace-relative
/// with `/` separators; classification keys off it.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

/// How a file participates in the rule matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: every rule applies.
    Lib,
    /// Benches, example binaries, and the bench/CLI crate: wall-clock
    /// timing and startup panics are part of the job, so `D1`/`R1`/the
    /// reachability passes are waived while determinism rules apply.
    Tool,
    /// Test code: exempt (tests may reuse fork labels, unwrap freely,
    /// and construct adversarial inputs).
    Test,
}

/// Classify a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    if path.starts_with("tests/") || path.contains("/tests/") || path.ends_with("/tests.rs") {
        FileClass::Test
    } else if path.starts_with("examples/")
        || path.contains("/examples/")
        || path.contains("/benches/")
        || path.contains("/src/bin/")
        || path.starts_with("crates/bench/")
    {
        FileClass::Tool
    } else {
        FileClass::Lib
    }
}

/// The rules a file class is subject to.
pub fn rule_applies(rule: &str, class: FileClass) -> bool {
    match class {
        FileClass::Test => false,
        FileClass::Tool => matches!(rule, "D2" | "D3" | "D3x" | "R2" | "S1"),
        FileClass::Lib => true,
    }
}

/// One violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1`…`S1`, `T1`/`R1x`/`D3x`, or `LINT` for malformed
    /// annotations).
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the match.
    pub line: u64,
    /// Human-readable description.
    pub message: String,
    /// Line-independent identity used for baseline matching: the rule,
    /// the path, and a short window of tokens (or qualified names for
    /// the workspace passes) at the match site.
    pub fingerprint: String,
}

impl_json!(struct Finding { rule, path, line, message, fingerprint });

/// One entry of the D3 fork-label table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelSite {
    /// The label string.
    pub label: String,
    /// File the label is defined or used in.
    pub path: String,
    /// 1-based line.
    pub line: u64,
}

impl_json!(struct LabelSite { label, path, line });

/// Per-rule counter, used for suppressed-site tallies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleCount {
    /// Rule id.
    pub rule: String,
    /// Number of sites.
    pub count: u64,
}

impl_json!(struct RuleCount { rule, count });

/// One valid `lint:allow` annotation, serialized into the cache so the
/// cross-file passes can honor per-line suppressions on warm runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowSpan {
    /// 1-based line the annotation sits on.
    pub line: u64,
    /// Rules it waives.
    pub rules: Vec<String>,
}

impl_json!(struct AllowSpan { line, rules });

/// The full analysis result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Files analyzed.
    pub files: u64,
    /// Total tokens lexed (including whitespace and comments).
    pub tokens: u64,
    /// Valid `lint:allow` annotations seen.
    pub allows: u64,
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// The workspace fork-label table (D3), sorted by label.
    pub labels: Vec<LabelSite>,
    /// Sites a `lint:allow` suppressed, per rule, sorted by rule.
    pub suppressed: Vec<RuleCount>,
}

impl_json!(struct Report { files, tokens, allows, findings, labels, suppressed });

impl Report {
    /// Finding counts per rule, sorted by rule id.
    pub fn counts_by_rule(&self) -> Vec<(String, u64)> {
        let mut map: BTreeMap<&str, u64> = BTreeMap::new();
        for f in &self.findings {
            *map.entry(&f.rule).or_insert(0) += 1;
        }
        map.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }
}

/// A significant (non-trivia) token plus its source line.
pub struct Sig {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text.
    pub text: String,
    /// 1-based line.
    pub line: u32,
}

/// Indexed view over significant tokens with total accessors, so rule
/// and parser code can look ahead/behind without bounds anxiety.
pub struct SigView {
    /// The significant tokens, in source order.
    pub toks: Vec<Sig>,
}

/// Build the significant-token view of a source text: lex, then strip
/// whitespace and comments.
pub fn sig_view_of(source: &str) -> SigView {
    SigView {
        toks: lex(source)
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .map(|t| Sig {
                kind: t.kind,
                text: t.text,
                line: t.line,
            })
            .collect(),
    }
}

impl SigView {
    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// True when the view holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }

    /// Token text at `i`, or `""` out of bounds.
    pub fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    /// Token kind at `i`, or `Whitespace` out of bounds.
    pub fn kind(&self, i: usize) -> TokKind {
        self.toks.get(i).map_or(TokKind::Whitespace, |t| t.kind)
    }

    /// Line of token `i`, or 0 out of bounds.
    pub fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// `text(i - back)` when it exists (saturating, no underflow).
    pub fn before(&self, i: usize, back: usize) -> &str {
        if back > i {
            ""
        } else {
            self.text(i - back)
        }
    }

    /// Token window for baseline fingerprints: up to `back` tokens
    /// behind and `fwd` ahead of `i`, clipped to the match line, so
    /// edits on other lines never churn a baselined site's identity.
    pub fn snippet_on_line(&self, i: usize, back: usize, fwd: usize) -> String {
        let line = self.line(i);
        let mut start = i;
        for _ in 0..back {
            if start > 0 && self.line(start - 1) == line {
                start -= 1;
            } else {
                break;
            }
        }
        let mut parts = Vec::new();
        let mut j = start;
        while j < self.len() && j <= i + fwd && self.line(j) == line {
            parts.push(self.text(j).to_string());
            j += 1;
        }
        parts.join(" ")
    }
}

/// Everything a rule needs about one file.
pub(crate) struct FileCtx<'a> {
    pub path: &'a str,
    pub class: FileClass,
    pub sig: SigView,
    /// Lines covered by a `#[cfg(test)]` / `#[test]` item body.
    pub test_regions: Vec<(u32, u32)>,
    /// Valid allow annotations: line → suppressed rules.
    pub allows: BTreeMap<u32, Vec<String>>,
}

impl FileCtx<'_> {
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Is `rule` suppressed at `line` (annotation on the line itself or
    /// the line directly above)?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        })
    }
}

/// Per-file rule output: findings, the D3 label table contribution, and
/// the suppressed-site tally.
#[derive(Default)]
pub(crate) struct FileSink {
    pub findings: Vec<Finding>,
    pub labels: Vec<LabelSite>,
    pub suppressed: BTreeMap<String, u64>,
}

/// Rule ids the annotation parser accepts.
pub const RULES: &[&str] = &["D1", "D2", "D3", "D3x", "R1", "R1x", "R2", "S1", "T1"];

/// The complete per-file analysis: everything downstream phases need,
/// serialized into the content-hash cache (see [`crate::cache`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileAnalysis {
    /// [`crate::parse::TABLE_SCHEMA`] at computation time; a mismatch
    /// on load invalidates the entry.
    pub schema: u64,
    /// Workspace-relative path (cache-entry identity check).
    pub path: String,
    /// Findings from the file-local rules.
    pub findings: Vec<Finding>,
    /// D3 label-table contributions.
    pub labels: Vec<LabelSite>,
    /// Suppressed sites per rule (file-local rules only).
    pub suppressed: Vec<RuleCount>,
    /// Valid allow annotations, for the cross-file passes.
    pub allow_spans: Vec<AllowSpan>,
    /// Tokens lexed.
    pub tokens: u64,
    /// Valid allow annotations seen.
    pub allows: u64,
    /// The parsed item table.
    pub table: FileTable,
}

impl_json!(struct FileAnalysis {
    schema, path, findings, labels, suppressed, allow_spans, tokens, allows, table
});

/// Tuning for [`analyze_files_with`].
#[derive(Clone, Debug, Default)]
pub struct AnalysisOptions {
    /// Worker threads for the per-file phase (`0`/`1` = inline). The
    /// report is byte-identical for every worker count.
    pub workers: usize,
    /// Cache directory (`target/lint-cache/`); `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

/// Analyze a set of in-memory files with default options (single
/// worker, no cache) — the path unit tests and fuzz harnesses use.
pub fn analyze_files(files: &[SourceFile]) -> Report {
    analyze_files_with(files, &AnalysisOptions::default())
}

/// The whole pipeline: the parallel per-file phase, then the sequential
/// cross-file phase. See the module docs for the determinism argument.
pub fn analyze_files_with(files: &[SourceFile], opts: &AnalysisOptions) -> Report {
    let analyses: Vec<FileAnalysis> =
        appvsweb_core::exec::run_indexed(files, opts.workers.max(1), 4, |_, file| {
            match &opts.cache_dir {
                Some(dir) => {
                    let hash = crate::cache::fnv1a64(file.text.as_bytes());
                    crate::cache::load(dir, &file.path, hash).unwrap_or_else(|| {
                        let analysis = analyze_one(file);
                        crate::cache::store(dir, hash, &analysis);
                        analysis
                    })
                }
                None => analyze_one(file),
            }
        });

    // Sequential fold over the ordered per-file results.
    let mut findings: Vec<Finding> = Vec::new();
    let mut labels: Vec<LabelSite> = Vec::new();
    let mut suppressed: BTreeMap<String, u64> = BTreeMap::new();
    let mut tokens = 0u64;
    let mut allows = 0u64;
    let mut tables: Vec<FileTable> = Vec::with_capacity(analyses.len());
    let mut classes: Vec<FileClass> = Vec::with_capacity(analyses.len());
    let mut allow_maps: Vec<BTreeMap<u32, Vec<String>>> = Vec::with_capacity(analyses.len());
    for analysis in analyses {
        findings.extend(analysis.findings);
        labels.extend(analysis.labels);
        for rc in analysis.suppressed {
            *suppressed.entry(rc.rule).or_insert(0) += rc.count;
        }
        tokens += analysis.tokens;
        allows += analysis.allows;
        classes.push(classify(&analysis.table.path));
        allow_maps.push(
            analysis
                .allow_spans
                .into_iter()
                .map(|s| (s.line as u32, s.rules))
                .collect(),
        );
        tables.push(analysis.table);
    }

    rules::check_label_uniqueness(&labels, &mut findings);

    let graph = crate::callgraph::CallGraph::build(&tables);
    let ctx = taint::PassCtx {
        tables: &tables,
        classes: &classes,
        allows: &allow_maps,
        graph: &graph,
    };
    taint::run_workspace_passes(&ctx, &mut findings, &mut suppressed);
    drop(graph);

    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
            .then(a.fingerprint.cmp(&b.fingerprint))
    });
    findings.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    labels.sort_by(|a, b| a.label.cmp(&b.label).then(a.path.cmp(&b.path)));

    Report {
        files: files.len() as u64,
        tokens,
        allows,
        findings,
        labels,
        suppressed: suppressed
            .into_iter()
            .map(|(rule, count)| RuleCount { rule, count })
            .collect(),
    }
}

/// The per-file half of the pipeline, a pure function of one file.
pub fn analyze_one(file: &SourceFile) -> FileAnalysis {
    let toks = lex(&file.text);
    let tokens = toks.len() as u64;
    let class = classify(&file.path);

    let (allow_map, valid, annotation_findings) = parse_annotations(&file.path, &toks);

    let sig = SigView {
        toks: toks
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .map(|t| Sig {
                kind: t.kind,
                text: t.text,
                line: t.line,
            })
            .collect(),
    };
    let test_regions = find_test_regions(&sig);
    let table = crate::parse::parse_file(&file.path, &sig, &test_regions, &allow_map);
    let ctx = FileCtx {
        path: &file.path,
        class,
        sig,
        test_regions,
        allows: allow_map,
    };
    let mut sink = FileSink::default();
    if class != FileClass::Test {
        sink.findings.extend(annotation_findings);
    }
    rules::run_file_rules(&ctx, &mut sink);

    FileAnalysis {
        schema: crate::parse::TABLE_SCHEMA,
        path: file.path.clone(),
        findings: sink.findings,
        labels: sink.labels,
        suppressed: sink
            .suppressed
            .into_iter()
            .map(|(rule, count)| RuleCount { rule, count })
            .collect(),
        allow_spans: ctx
            .allows
            .iter()
            .map(|(&line, rules)| AllowSpan {
                line: line as u64,
                rules: rules.clone(),
            })
            .collect(),
        tokens,
        allows: valid,
        table,
    }
}

/// Parse inline allow annotations out of comment tokens. Returns
/// the line → rules map, the count of valid annotations, and findings
/// for malformed ones.
fn parse_annotations(path: &str, toks: &[Tok]) -> (BTreeMap<u32, Vec<String>>, u64, Vec<Finding>) {
    let mut map: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut valid = 0u64;
    let mut findings = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let Some(at) = t.text.find("lint:allow(") else {
            continue;
        };
        let rest = &t.text[at + "lint:allow".len()..];
        let parsed = rest.strip_prefix('(').and_then(|r| {
            r.split_once(')').map(|(inside, reason)| {
                let rules: Vec<String> = inside
                    .split([',', ' '])
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
                (rules, reason.trim_end_matches("*/").trim().to_string())
            })
        });
        match parsed {
            Some((rules, reason))
                if !rules.is_empty()
                    && !reason.is_empty()
                    && rules.iter().all(|r| RULES.contains(&r.as_str())) =>
            {
                valid += 1;
                map.entry(t.line).or_default().extend(rules);
            }
            _ => findings.push(Finding {
                rule: "LINT".to_string(),
                path: path.to_string(),
                line: t.line as u64,
                message: "malformed lint:allow — expected `lint:allow(RULE[, RULE]) reason` \
                          with known rules and a non-empty reason"
                    .to_string(),
                fingerprint: format!("LINT|{path}|{}", t.text.trim()),
            }),
        }
    }
    (map, valid, findings)
}

/// Find line spans of items marked `#[test]` / `#[cfg(test)]` (and any
/// attribute whose arguments mention `test`, e.g. `#[cfg(all(test, …))]`).
/// The span runs from the attribute to the item's closing brace; items
/// that end in `;` before any `{` (uses, consts) produce no span.
fn find_test_regions(sig: &SigView) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        if sig.text(i) == "#" && sig.text(i + 1) == "[" {
            let start_line = sig.line(i);
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut is_test = false;
            let mut negated = false;
            while j < sig.len() && depth > 0 {
                match sig.text(j) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" => is_test = true,
                    "not" => negated = true, // #[cfg(not(test))] is live code
                    _ => {}
                }
                j += 1;
            }
            let is_test = is_test && !negated;
            if is_test {
                if let Some(end_line) = item_body_end(sig, j) {
                    regions.push((start_line, end_line));
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// From token index `j` (just past an attribute), find the line of the
/// closing brace of the next item body; `None` when the item is
/// declaration-only (hits `;` first) or the file ends.
fn item_body_end(sig: &SigView, mut j: usize) -> Option<u32> {
    // Skip stacked attributes.
    while sig.text(j) == "#" && sig.text(j + 1) == "[" {
        j += 2;
        let mut depth = 1usize;
        while j < sig.len() && depth > 0 {
            match sig.text(j) {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    while j < sig.len() {
        match sig.text(j) {
            ";" => return None,
            "{" => {
                let mut depth = 0usize;
                while j < sig.len() {
                    match sig.text(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(sig.line(j));
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return Some(sig.line(sig.len().saturating_sub(1)));
            }
            _ => j += 1,
        }
    }
    None
}

/// Recursively collect every `.rs` file under `root`, skipping `target`
/// and VCS directories. Paths come back workspace-relative, sorted.
pub fn collect_workspace(root: &std::path::Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = std::fs::read_to_string(&path)?;
                files.push(SourceFile { path: rel, text });
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}
