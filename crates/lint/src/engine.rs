//! The analysis engine: file classification, `#[cfg(test)]` region
//! detection, `lint:allow` annotations, and the per-file rule driver.
//!
//! The engine works on the lossless token stream from [`crate::lexer`].
//! Comments and whitespace are stripped into a *significant* token view
//! for rule matching, but comments are first mined for `lint:allow`
//! annotations, which is how reviewed violations are suppressed inline:
//!
//! ```text
//! // lint:allow(R1) slice is exactly 4 bytes by construction
//! ```
//!
//! An annotation covers findings on its own line and the line directly
//! below it, must name known rules, and must carry a non-empty reason —
//! a reason-less or unknown-rule annotation is itself a finding (rule
//! `LINT`).

use crate::lexer::{lex, Tok, TokKind};
use crate::rules;
use appvsweb_json::impl_json;
use std::collections::BTreeMap;

/// One source file handed to the analyzer. `path` is workspace-relative
/// with `/` separators; classification keys off it.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

/// How a file participates in the rule matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: every rule applies.
    Lib,
    /// Benches, example binaries, and the bench/CLI crate: wall-clock
    /// timing and startup panics are part of the job, so `D1`/`R1` are
    /// waived while the determinism rules still apply.
    Tool,
    /// Test code: exempt (tests may reuse fork labels, unwrap freely,
    /// and construct adversarial inputs).
    Test,
}

/// Classify a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    if path.starts_with("tests/") || path.contains("/tests/") || path.ends_with("/tests.rs") {
        FileClass::Test
    } else if path.starts_with("examples/")
        || path.contains("/examples/")
        || path.contains("/benches/")
        || path.contains("/src/bin/")
        || path.starts_with("crates/bench/")
    {
        FileClass::Tool
    } else {
        FileClass::Lib
    }
}

/// The rules a file class is subject to.
pub fn rule_applies(rule: &str, class: FileClass) -> bool {
    match class {
        FileClass::Test => false,
        FileClass::Tool => matches!(rule, "D2" | "D3" | "R2" | "S1"),
        FileClass::Lib => true,
    }
}

/// One violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1`…`S1`, or `LINT` for malformed annotations).
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the match.
    pub line: u64,
    /// Human-readable description.
    pub message: String,
    /// Line-independent identity used for baseline matching: the rule,
    /// the path, and a short window of tokens at the match site.
    pub fingerprint: String,
}

impl_json!(struct Finding { rule, path, line, message, fingerprint });

/// One entry of the D3 fork-label table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelSite {
    /// The label string.
    pub label: String,
    /// File the label is defined or used in.
    pub path: String,
    /// 1-based line.
    pub line: u64,
}

impl_json!(struct LabelSite { label, path, line });

/// The full analysis result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Files analyzed.
    pub files: u64,
    /// Total tokens lexed (including whitespace and comments).
    pub tokens: u64,
    /// Valid `lint:allow` annotations seen.
    pub allows: u64,
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// The workspace fork-label table (D3), sorted by label.
    pub labels: Vec<LabelSite>,
}

impl_json!(struct Report { files, tokens, allows, findings, labels });

impl Report {
    /// Finding counts per rule, sorted by rule id.
    pub fn counts_by_rule(&self) -> Vec<(String, u64)> {
        let mut map: BTreeMap<&str, u64> = BTreeMap::new();
        for f in &self.findings {
            *map.entry(&f.rule).or_insert(0) += 1;
        }
        map.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }
}

/// A significant (non-trivia) token plus its source line.
pub(crate) struct Sig {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// Indexed view over significant tokens with total accessors, so rule
/// code can look ahead/behind without bounds anxiety.
pub(crate) struct SigView {
    pub toks: Vec<Sig>,
}

impl SigView {
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// Token text at `i`, or `""` out of bounds.
    pub fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    /// Token kind at `i`, or `Whitespace` out of bounds.
    pub fn kind(&self, i: usize) -> TokKind {
        self.toks.get(i).map_or(TokKind::Whitespace, |t| t.kind)
    }

    /// Line of token `i`, or 0 out of bounds.
    pub fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// `text(i - back)` when it exists (saturating, no underflow).
    pub fn before(&self, i: usize, back: usize) -> &str {
        if back > i {
            ""
        } else {
            self.text(i - back)
        }
    }

    /// Token window for baseline fingerprints: up to `back` tokens
    /// behind and `fwd` ahead of `i`, clipped to the match line, so
    /// edits on other lines never churn a baselined site's identity.
    pub fn snippet_on_line(&self, i: usize, back: usize, fwd: usize) -> String {
        let line = self.line(i);
        let mut start = i;
        for _ in 0..back {
            if start > 0 && self.line(start - 1) == line {
                start -= 1;
            } else {
                break;
            }
        }
        let mut parts = Vec::new();
        let mut j = start;
        while j < self.len() && j <= i + fwd && self.line(j) == line {
            parts.push(self.text(j).to_string());
            j += 1;
        }
        parts.join(" ")
    }
}

/// Everything a rule needs about one file.
pub(crate) struct FileCtx<'a> {
    pub path: &'a str,
    pub class: FileClass,
    pub sig: SigView,
    /// Lines covered by a `#[cfg(test)]` / `#[test]` item body.
    pub test_regions: Vec<(u32, u32)>,
    /// Valid allow annotations: line → suppressed rules.
    pub allows: BTreeMap<u32, Vec<String>>,
}

impl FileCtx<'_> {
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// Is `rule` suppressed at `line` (annotation on the line itself or
    /// the line directly above)?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        })
    }
}

/// Rule ids the annotation parser accepts.
pub const RULES: &[&str] = &["D1", "D2", "D3", "R1", "R2", "S1"];

/// Analyze a set of in-memory files. This is the whole pipeline: lex,
/// mine annotations, find test regions, run every rule, then resolve
/// cross-file D3 label uniqueness.
pub fn analyze_files(files: &[SourceFile]) -> Report {
    let mut findings: Vec<Finding> = Vec::new();
    let mut labels: Vec<LabelSite> = Vec::new();
    let mut tokens = 0u64;
    let mut allows = 0u64;

    for file in files {
        let toks = lex(&file.text);
        tokens += toks.len() as u64;
        let class = classify(&file.path);

        let (allow_map, valid, mut annotation_findings) = parse_annotations(&file.path, &toks);
        allows += valid;
        if class != FileClass::Test {
            findings.append(&mut annotation_findings);
        }

        let sig = SigView {
            toks: toks
                .into_iter()
                .filter(|t| {
                    !matches!(
                        t.kind,
                        TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
                    )
                })
                .map(|t| Sig {
                    kind: t.kind,
                    text: t.text,
                    line: t.line,
                })
                .collect(),
        };
        let test_regions = find_test_regions(&sig);
        let ctx = FileCtx {
            path: &file.path,
            class,
            sig,
            test_regions,
            allows: allow_map,
        };
        rules::run_file_rules(&ctx, &mut findings, &mut labels);
    }

    rules::check_label_uniqueness(&labels, &mut findings);

    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
            .then(a.fingerprint.cmp(&b.fingerprint))
    });
    findings.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    labels.sort_by(|a, b| a.label.cmp(&b.label).then(a.path.cmp(&b.path)));

    Report {
        files: files.len() as u64,
        tokens,
        allows,
        findings,
        labels,
    }
}

/// Parse inline allow annotations out of comment tokens. Returns
/// the line → rules map, the count of valid annotations, and findings
/// for malformed ones.
fn parse_annotations(path: &str, toks: &[Tok]) -> (BTreeMap<u32, Vec<String>>, u64, Vec<Finding>) {
    let mut map: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut valid = 0u64;
    let mut findings = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let Some(at) = t.text.find("lint:allow(") else {
            continue;
        };
        let rest = &t.text[at + "lint:allow".len()..];
        let parsed = rest.strip_prefix('(').and_then(|r| {
            r.split_once(')').map(|(inside, reason)| {
                let rules: Vec<String> = inside
                    .split([',', ' '])
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
                (rules, reason.trim_end_matches("*/").trim().to_string())
            })
        });
        match parsed {
            Some((rules, reason))
                if !rules.is_empty()
                    && !reason.is_empty()
                    && rules.iter().all(|r| RULES.contains(&r.as_str())) =>
            {
                valid += 1;
                map.entry(t.line).or_default().extend(rules);
            }
            _ => findings.push(Finding {
                rule: "LINT".to_string(),
                path: path.to_string(),
                line: t.line as u64,
                message: "malformed lint:allow — expected `lint:allow(RULE[, RULE]) reason` \
                          with known rules and a non-empty reason"
                    .to_string(),
                fingerprint: format!("LINT|{path}|{}", t.text.trim()),
            }),
        }
    }
    (map, valid, findings)
}

/// Find line spans of items marked `#[test]` / `#[cfg(test)]` (and any
/// attribute whose arguments mention `test`, e.g. `#[cfg(all(test, …))]`).
/// The span runs from the attribute to the item's closing brace; items
/// that end in `;` before any `{` (uses, consts) produce no span.
fn find_test_regions(sig: &SigView) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        if sig.text(i) == "#" && sig.text(i + 1) == "[" {
            let start_line = sig.line(i);
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut is_test = false;
            let mut negated = false;
            while j < sig.len() && depth > 0 {
                match sig.text(j) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" => is_test = true,
                    "not" => negated = true, // #[cfg(not(test))] is live code
                    _ => {}
                }
                j += 1;
            }
            let is_test = is_test && !negated;
            if is_test {
                if let Some(end_line) = item_body_end(sig, j) {
                    regions.push((start_line, end_line));
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// From token index `j` (just past an attribute), find the line of the
/// closing brace of the next item body; `None` when the item is
/// declaration-only (hits `;` first) or the file ends.
fn item_body_end(sig: &SigView, mut j: usize) -> Option<u32> {
    // Skip stacked attributes.
    while sig.text(j) == "#" && sig.text(j + 1) == "[" {
        j += 2;
        let mut depth = 1usize;
        while j < sig.len() && depth > 0 {
            match sig.text(j) {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    while j < sig.len() {
        match sig.text(j) {
            ";" => return None,
            "{" => {
                let mut depth = 0usize;
                while j < sig.len() {
                    match sig.text(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(sig.line(j));
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return Some(sig.line(sig.len().saturating_sub(1)));
            }
            _ => j += 1,
        }
    }
    None
}

/// Recursively collect every `.rs` file under `root`, skipping `target`
/// and VCS directories. Paths come back workspace-relative, sorted.
pub fn collect_workspace(root: &std::path::Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = std::fs::read_to_string(&path)?;
                files.push(SourceFile { path: rel, text });
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}
