//! In-process edge coverage for the fuzzing engine.
//!
//! Parser crates mark interesting control-flow points with [`cover!`];
//! each call site hashes its `file!()`/`line!()`/`column!()` into a slot
//! of a fixed global counter map at *compile time*, so the runtime cost
//! of a hit is one relaxed load (the enable check) plus, while a fuzzer
//! is driving, one swap and one add. AFL-style edge mixing — the slot
//! actually bumped is `hash(previous site) ^ hash(current site)` — makes
//! the map sensitive to *paths*, not just to which lines ran.
//!
//! Coverage is **off by default**: outside a fuzz run the macro costs a
//! single relaxed atomic load and no writes, so instrumented parsers in
//! the golden-path study never contend on the map. The fuzz engine in
//! `appvsweb-testkit` flips it on around each deterministic exec,
//! snapshots the hit counts, and diffs them against its seen-set.
//!
//! Everything here is deterministic under a single driving thread: the
//! same input through the same instrumented code touches the same slots
//! the same number of times. (The engine serializes fuzz runs behind a
//! lock for exactly that reason.)

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// Number of slots in the global edge map. Collisions merely merge
/// edges (coverage becomes slightly coarser), so a few thousand slots
/// comfortably hold the workspace's few hundred instrumented sites.
pub const MAP_SIZE: usize = 1 << 12;

/// Mask applied to site hashes; `MAP_SIZE` is a power of two.
const MASK: usize = MAP_SIZE - 1;

static ENABLED: AtomicBool = AtomicBool::new(false);
static PREV: AtomicUsize = AtomicUsize::new(0);
static HITS: [AtomicU32; MAP_SIZE] = [const { AtomicU32::new(0) }; MAP_SIZE];

/// Turn the map on. Call [`reset`] first for a clean slate.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the map off; [`cover!`] reverts to a single load per hit.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether hits are currently being recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every counter and the edge-mixing state.
pub fn reset() {
    PREV.store(0, Ordering::Relaxed);
    for slot in &HITS {
        slot.store(0, Ordering::Relaxed);
    }
}

/// Record a hit at the compile-time site hash `site`. Prefer the
/// [`cover!`] macro, which computes the hash as a constant.
#[inline]
pub fn hit(site: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    // AFL edge mixing: bump hash(prev → current), then shift the current
    // site right so A→B and B→A land in different slots.
    let prev = PREV.swap(site >> 1, Ordering::Relaxed);
    let slot = (site ^ prev) & MASK;
    if let Some(counter) = HITS.get(slot) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Append every `(slot, count)` with a nonzero counter to `out`.
pub fn nonzero_into(out: &mut Vec<(u16, u32)>) {
    for (slot, counter) in HITS.iter().enumerate() {
        let count = counter.load(Ordering::Relaxed);
        if count > 0 {
            out.push((slot as u16, count));
        }
    }
}

/// Number of slots with a nonzero counter right now.
pub fn edges_hit() -> usize {
    HITS.iter()
        .filter(|slot| slot.load(Ordering::Relaxed) > 0)
        .count()
}

/// FNV-1a over the call site's file, line, and column. `const`, so
/// [`cover!`] folds the whole computation into an integer literal.
pub const fn site(file: &str, line: u32, column: u32) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let bytes = file.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        h = (h ^ bytes[i] as u64).wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    h = (h ^ line as u64).wrapping_mul(0x0000_0100_0000_01b3);
    h = (h ^ column as u64).wrapping_mul(0x0000_0100_0000_01b3);
    h as usize
}

/// Mark a control-flow point for edge coverage.
///
/// Expands to a constant site hash and a call to [`hit`]; with coverage
/// disabled the cost is one relaxed atomic load. Place one at each arm
/// of a parser's interesting decisions (token classes, error paths,
/// block types) — not inside per-byte loops.
#[macro_export]
macro_rules! cover {
    () => {{
        const SITE: usize = $crate::site(file!(), line!(), column!());
        $crate::hit(SITE);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The map is global; tests that enable it must not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_map_records_nothing() {
        let _guard = LOCK.lock().unwrap();
        disable();
        reset();
        cover!();
        assert_eq!(edges_hit(), 0);
    }

    #[test]
    fn enabled_map_counts_hits_deterministically() {
        // The sites must be the same macro invocations both times —
        // cover!() hashes file/line/column, so a copy-pasted loop would
        // record different (equally valid) slots.
        fn run_once() {
            reset();
            enable();
            for _ in 0..3 {
                cover!();
                cover!();
            }
            disable();
        }
        let _guard = LOCK.lock().unwrap();
        run_once();
        let mut first = Vec::new();
        nonzero_into(&mut first);
        assert!(!first.is_empty());
        assert_eq!(first.iter().map(|&(_, c)| c).sum::<u32>(), 6);

        // Same run again → identical snapshot.
        run_once();
        let mut second = Vec::new();
        nonzero_into(&mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn distinct_sites_hash_distinctly() {
        let a = site("a.rs", 1, 1);
        let b = site("a.rs", 1, 2);
        let c = site("b.rs", 1, 1);
        assert_ne!(a & MASK, b & MASK);
        assert_ne!(a & MASK, c & MASK);
    }

    #[test]
    fn edge_mixing_distinguishes_order() {
        let _guard = LOCK.lock().unwrap();
        reset();
        enable();
        hit(10);
        hit(20);
        disable();
        let mut ab = Vec::new();
        nonzero_into(&mut ab);

        reset();
        enable();
        hit(20);
        hit(10);
        disable();
        let mut ba = Vec::new();
        nonzero_into(&mut ba);
        assert_ne!(ab, ba, "A→B and B→A must land in different slots");
    }
}
