//! # appvsweb-adblock
//!
//! An EasyList-syntax filter engine for the `appvsweb` reproduction of
//! *"Should You Use the App for That?"* (IMC 2016).
//!
//! The paper categorizes third-party flows as advertising or analytics "by
//! comparing the destination domain to EasyList" (§3.2). This crate
//! implements the relevant subset of Adblock-Plus filter syntax from
//! scratch:
//!
//! * host-anchored (`||example.com^`), start/end-anchored (`|…`, `…|`) and
//!   plain substring patterns, with `*` wildcards and `^` separators
//! * `@@` exception rules
//! * `$` options: `third-party` / `~third-party`, `domain=…|~…`, and
//!   resource types (`script`, `image`, `xmlhttprequest`, `subdocument`)
//! * comments (`!`) and the element-hiding rules (`##`), which are parsed
//!   and ignored — they never affect network classification
//!
//! [`lists::BUNDLED_AA_LIST`] ships an EasyList-style snapshot covering
//! every advertising & analytics domain the paper names, playing the role
//! of the 2016 EasyList download. [`Categorizer`] combines the engine
//! with first-party knowledge to label each flow the way §3.2 does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod engine;
pub mod filter;
pub mod fuzz;
pub mod lists;
pub mod prefilter;

pub use category::{Categorizer, Category};
pub use engine::{Decision, FilterEngine, RequestInfo};
pub use filter::{Filter, FilterKind, ResourceType};

/// Whether two hosts belong to different registrable domains — the
/// "third-party" test used both by `$third-party` options and by the
/// study's own first/third-party split.
pub fn is_third_party(request_host: &str, origin_host: &str) -> bool {
    use appvsweb_httpsim::Host;
    Host::new(request_host).registrable_domain() != Host::new(origin_host).registrable_domain()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_party_uses_registrable_domain() {
        assert!(!is_third_party("ads.weather.com", "www.weather.com"));
        assert!(is_third_party("doubleclick.net", "weather.com"));
        assert!(!is_third_party("news.bbc.co.uk", "bbc.co.uk"));
        assert!(is_third_party("other.co.uk", "bbc.co.uk"));
    }
}
