//! The bundled filter-list snapshot.
//!
//! The original study compared destination domains against the EasyList
//! download of early 2016. That exact snapshot is not redistributable
//! here, so this module bundles an EasyList-*format* list covering every
//! advertising & analytics domain the paper names (Table 2, §4.2 case
//! studies) plus the ecosystem domains the synthetic service catalog
//! uses. The engine treats it exactly as it would the real file.

/// EasyList-style rules for the simulated world's A&A ecosystem.
pub const BUNDLED_AA_LIST: &str = r#"[Adblock Plus 2.0]
! Title: appvsweb bundled A&A list (EasyList-format snapshot)
! Expires: never (deterministic simulation)
!
! --- Domains named in Table 2 of the paper ---
||amobee.com^
||moatads.com^
||vrvm.com^
||google-analytics.com^
||graph.facebook.com^
||connect.facebook.net^
||facebook.com^$third-party
||groceryserver.com^
||serving-sys.com^
||googlesyndication.com^
||thebrighttag.com^
||tiqcdn.com^
||marinsm.com^
||criteo.com^
||2mdn.net^
||monetate.net^
||247realmedia.com^
||krxd.net^
||doubleverify.com^
||cloudinary.com^$third-party
||webtrends.com^
||webtrendslive.com^
||liftoff.io^
!
! --- Case-study recipients (§4.2) ---
||taplytics.com^
||usablenet.com^$third-party
||gigya.com^$third-party
!
! --- 2016 mobile/web A&A ecosystem staples ---
||doubleclick.net^
||adnxs.com^
||rubiconproject.com^
||openx.net^
||pubmatic.com^
||casalemedia.com^
||advertising.com^
||adsrvr.org^
||bidswitch.net^
||mathtag.com^
||turn.com^
||rlcdn.com^
||agkn.com^
||exelator.com^
||bluekai.com^
||demdex.net^
||adform.net^
||smartadserver.com^
||yieldmo.com^
||flurry.com^
||crashlytics.com^$third-party
||scorecardresearch.com^
||quantserve.com^
||chartbeat.com^
||chartbeat.net^
||mixpanel.com^
||segment.io^
||amplitude.com^
||adjust.com^
||appsflyer.com^
||kochava.com^
||branch.io^
||mopub.com^
||inmobi.com^
||millennialmedia.com^
||mydas.mobi^
||applovin.com^
||unityads.unity3d.com^
||vungle.com^
||supersonicads.com^
||tapjoy.com^
||tapjoyads.com^
||startappservice.com^
||outbrain.com^
||outbrainimg.com^
||taboola.com^
||sharethrough.com^
||teads.tv^
||spotxchange.com^
||tremorhub.com^
||brightroll.com^
||yimg.com^$third-party,script
||moatpixel.com^
||newrelic.com^$third-party
||nr-data.net^
||optimizely.com^$third-party
||hotjar.com^
||comscore.com^
||nielsen.com^$third-party
||imrworldwide.com^
||omtrdc.net^
||2o7.net^
||everesttech.net^
||adsafeprotected.com^
||amazon-adsystem.com^
!
! --- Generic pattern rules (exercise non-host-anchored matching) ---
/adserver/*
/ad_pixel?
&ad_type=
-ad-banner.
!
! --- Exceptions: first-party CDN paths that look ad-ish but are content ---
@@||cloudinary.com/content/*$third-party
@@||yimg.com/static/*
!
! --- Element hiding rules (parsed, skipped; here to exercise the parser) ---
news.example##.sponsored-box
shopping.example#@#.promo
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FilterEngine;

    #[test]
    fn bundled_list_parses_cleanly() {
        let mut e = FilterEngine::new();
        let stats = e.load_list(BUNDLED_AA_LIST);
        assert_eq!(stats.unsupported, 0, "bundled list must parse in full");
        assert!(stats.network_rules > 80);
        assert_eq!(stats.element_hiding, 2);
        assert!(stats.exceptions >= 2);
    }

    #[test]
    fn every_table2_domain_is_covered() {
        let e = FilterEngine::with_bundled_list();
        for domain in [
            "amobee.com",
            "moatads.com",
            "vrvm.com",
            "google-analytics.com",
            "groceryserver.com",
            "serving-sys.com",
            "googlesyndication.com",
            "thebrighttag.com",
            "tiqcdn.com",
            "marinsm.com",
            "criteo.com",
            "2mdn.net",
            "monetate.net",
            "247realmedia.com",
            "krxd.net",
            "doubleverify.com",
            "webtrends.com",
            "liftoff.io",
        ] {
            assert!(
                e.is_ad_or_tracking(&format!("https://x.{domain}/beacon"), "someservice.com"),
                "bundled list must cover {domain}"
            );
        }
    }
}
