//! N-gram pre-filter in front of the EasyList walk.
//!
//! Production ad-blocker engines (uBlock Origin, Brave's adblock-rust)
//! never test a request against every filter: they dispatch through a
//! hash of short substrings so each request touches a handful of
//! candidate rules. This module is that dispatch layer, built in-repo
//! per the zero-dependency policy.
//!
//! ## Construction
//!
//! Every filter pattern is split into its maximal *literal runs* — the
//! chunks between `*` wildcards and `^` separator classes. If a filter
//! matches a URL, **every** literal run appears verbatim somewhere in
//! the (lowercased) URL: `*` and `^` each consume URL bytes without
//! rewriting any, and a `^` that matches end-of-URL can only be
//! followed by more `^`/`*`, never by a literal. The longest run is
//! therefore a guaranteed witness substring.
//!
//! Each filter with a run of at least [`GRAM`] bytes is indexed in a
//! token-hash bucket under one 4-gram of that run; shorter-patterned
//! filters go to an `always` list that is checked for every request.
//!
//! ## Query
//!
//! A URL probes the occupancy bitmap with **all** rolling 4-gram
//! windows of its bytes (not just token boundaries — a pattern gram
//! like `ads/` must be found even inside `loads/`). Bucket hits gather
//! candidate filter indices, which are then sorted so the engine
//! verifies them in load order (EasyList reports the *first* matching
//! rule, and `Decision` carries its text).
//!
//! ## Zero false negatives, by construction
//!
//! If filter *f* matches URL *u*: *f*'s indexed gram is a substring of
//! a literal run of *f*, every literal run is a substring of *u*, and
//! the query probes every 4-byte window of *u* — so the probe set
//! contains *f*'s gram, the bucket is occupied, and *f* is in the
//! candidate list. Filters with no 4-byte run are in `always` and are
//! candidates unconditionally. The differential suite
//! (`tests/fastpath_differential.rs`) property-tests this law against
//! the retained linear reference walk.

use crate::filter::Filter;

/// Gram width indexed per filter and probed per URL window.
pub const GRAM: usize = 4;

/// The bucket dispatch structure for one filter list (blocking or
/// exception rules).
#[derive(Clone, Debug, Default)]
pub struct Prefilter {
    /// `32 - log2(bucket count)`; buckets are a power of two.
    shift: u32,
    /// One occupancy bit per bucket — the "bloom" front that rejects
    /// almost every window without touching the shard arrays.
    occupied: Vec<u64>,
    /// CSR offsets into `entries`, one slot per bucket plus a sentinel.
    offsets: Vec<u32>,
    /// Filter indices, grouped by bucket.
    entries: Vec<u32>,
    /// Filters with no 4-byte literal run: always candidates.
    always: Vec<u32>,
}

/// The 4-gram a filter is indexed under: the first [`GRAM`] bytes of
/// the longest literal run of its pattern, or `None` when every run is
/// shorter than a gram.
fn index_gram(f: &Filter) -> Option<[u8; GRAM]> {
    let longest = f
        .pattern
        .as_bytes()
        .split(|&b| b == b'*' || b == b'^')
        .max_by_key(|run| run.len())?;
    longest.get(..GRAM)?.try_into().ok()
}

/// Callers always pass exactly [`GRAM`] bytes (`windows(GRAM)` or an
/// indexed gram); the fallback keeps a hypothetical short slice from
/// panicking.
fn hash_gram(gram: &[u8]) -> u32 {
    let gram: [u8; GRAM] = gram.try_into().unwrap_or([0; GRAM]);
    u32::from_le_bytes(gram).wrapping_mul(0x9E37_79B1)
}

impl Prefilter {
    /// Build the dispatch index over `filters` (indices refer into that
    /// slice, in order).
    pub fn build(filters: &[Filter]) -> Self {
        // ~4 buckets per rule keeps shards near-singleton for real
        // lists; minimum keeps tiny/fuzzed lists from degenerating.
        let buckets = (filters.len() * 4).next_power_of_two().max(64);
        let shift = 32 - buckets.trailing_zeros();
        let mut always = Vec::new();
        let mut grams = Vec::with_capacity(filters.len());
        let mut counts = vec![0u32; buckets];
        for (i, f) in filters.iter().enumerate() {
            match index_gram(f) {
                Some(g) => {
                    let bucket = (hash_gram(&g) >> shift) as usize;
                    counts[bucket] += 1;
                    grams.push((bucket, i as u32));
                }
                None => always.push(i as u32),
            }
        }
        let mut offsets = vec![0u32; buckets + 1];
        for b in 0..buckets {
            offsets[b + 1] = offsets[b] + counts[b];
        }
        let mut cursor = offsets.clone();
        let mut entries = vec![0u32; grams.len()];
        let mut occupied = vec![0u64; buckets.div_ceil(64)];
        for (bucket, idx) in grams {
            entries[cursor[bucket] as usize] = idx;
            cursor[bucket] += 1;
            occupied[bucket / 64] |= 1 << (bucket % 64);
        }
        Prefilter {
            shift,
            occupied,
            offsets,
            entries,
            always,
        }
    }

    /// Candidate filter indices for `url` (must already be lowercase),
    /// sorted ascending so callers preserve first-match-in-load-order
    /// semantics. Guaranteed to be a superset of the filters that match.
    pub fn candidates(&self, url: &str) -> Vec<u32> {
        let mut out = self.always.clone();
        let bytes = url.as_bytes();
        let mut last_bucket = usize::MAX;
        for w in bytes.windows(GRAM) {
            let bucket = (hash_gram(w) >> self.shift) as usize;
            if bucket == last_bucket {
                continue; // runs of repeated bytes hash to one bucket
            }
            last_bucket = bucket;
            if self.occupied[bucket / 64] & (1 << (bucket % 64)) != 0 {
                appvsweb_cover::cover!();
                let lo = self.offsets[bucket] as usize;
                let hi = self.offsets[bucket + 1] as usize;
                out.extend_from_slice(&self.entries[lo..hi]);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// How many filters bypass the index entirely.
    pub fn always_count(&self) -> usize {
        self.always.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{parse_line, ParsedLine};

    fn filters(lines: &[&str]) -> Vec<Filter> {
        lines
            .iter()
            .filter_map(|l| match parse_line(l) {
                ParsedLine::Network(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn indexed_gram_comes_from_longest_run() {
        let fs = filters(&["||doubleclick.net^", "/ad^*/pixel-tracker", "a*b"]);
        assert_eq!(index_gram(&fs[0]), Some(*b"doub"));
        // Runs: "/ad", "/pixel-tracker" — longest wins.
        assert_eq!(index_gram(&fs[1]), Some(*b"/pix"));
        // No run reaches 4 bytes.
        assert_eq!(index_gram(&fs[2]), None);
    }

    #[test]
    fn matching_filters_are_always_candidates() {
        let lines = [
            "||doubleclick.net^",
            "/adserver/*/banner",
            "ad_pixel",
            "a*b",
            "|https://ads.",
            "swf|",
        ];
        let fs = filters(&lines);
        let pre = Prefilter::build(&fs);
        let urls = [
            "https://ads.g.doubleclick.net/pixel?x=1",
            "https://x.com/adserver/v2/banner.png",
            "http://y.net/ad_pixel?id=1",
            "https://ab.example/movie.swf",
            "https://ads.example.com/",
        ];
        for url in urls {
            let cands = pre.candidates(url);
            for (i, f) in fs.iter().enumerate() {
                if f.pattern_matches(url) {
                    assert!(
                        cands.contains(&(i as u32)),
                        "filter {:?} matches {url} but was pre-filtered out",
                        f.raw
                    );
                }
            }
        }
    }

    #[test]
    fn gram_inside_a_longer_token_is_still_found() {
        // "ads/" appears inside "loads/" — rolling windows must catch
        // it even though it is not an alnum-token boundary.
        let fs = filters(&["ads/"]);
        let pre = Prefilter::build(&fs);
        assert!(fs[0].pattern_matches("https://x.com/loads/banner"));
        assert_eq!(pre.candidates("https://x.com/loads/banner"), vec![0]);
    }

    #[test]
    fn candidates_are_sorted_for_first_match_order() {
        let fs = filters(&["zzz-tracker", "aaa-tracker", "-tracker"]);
        let pre = Prefilter::build(&fs);
        let cands = pre.candidates("https://x.com/zzz-tracker/aaa-tracker");
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        assert_eq!(cands, sorted);
    }

    #[test]
    fn short_patterns_land_in_always() {
        let fs = filters(&["ab^", "x*y", "||t.co^"]);
        let pre = Prefilter::build(&fs);
        assert_eq!(pre.always_count(), 2);
        // A URL with no indexable window still surfaces them.
        let cands = pre.candidates("ab");
        assert!(cands.contains(&0));
        assert!(cands.contains(&1));
    }

    #[test]
    fn empty_list_yields_no_candidates() {
        let pre = Prefilter::build(&[]);
        assert!(pre.candidates("https://anything.example/x").is_empty());
    }
}
