//! Fuzz entry point for the EasyList filter parser and matcher.
//!
//! The input is two lines: a filter-list line and a URL. The parser
//! must be total on any line; when it yields a network filter, the
//! matcher must be total too, and reparsing the filter's `raw` text
//! must reproduce the same filter (parse is idempotent — what the
//! engine serializes and reports can be round-tripped into the same
//! rule).
//!
//! The matcher is a backtracking recursive descent, exponential in the
//! number of `*` wildcards and linear in pattern length for stack
//! depth; the harness bounds both (3 stars, 256-byte pattern, 64-byte
//! URL) the same way [`crate::engine::FilterEngine`] bounds real lists
//! by construction.

use crate::filter::{parse_line, ParsedLine};

/// Run the filter target on raw fuzz bytes.
pub fn run(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let (rule_line, url_line) = match text.split_once('\n') {
        Some((a, b)) => (a, b),
        None => (text.as_ref(), "https://ads.example.com/pixel?id=1"),
    };

    let parsed = parse_line(rule_line);
    let ParsedLine::Network(filter) = parsed else {
        return;
    };

    // Reparsing the recorded raw text reproduces the same filter.
    assert_eq!(
        parse_line(&filter.raw),
        ParsedLine::Network(filter.clone()),
        "parse_line is not idempotent on its own raw output"
    );

    // Bound the matcher's backtracking before driving it.
    let stars = filter.pattern.matches('*').count();
    if filter.pattern.len() > 256 || stars > 3 {
        return;
    }
    let url = url_line.to_ascii_lowercase();
    let url = match url.char_indices().nth(64) {
        Some((cut, _)) => url.get(..cut).unwrap_or("").to_string(),
        None => url,
    };
    let matched = filter.pattern_matches(&url);

    // Differential: the pre-filter must never discard a matching
    // filter (zero-false-negative law), and a whole-engine check must
    // agree with the retained reference walk on the same rule line.
    #[cfg(any(test, feature = "reference"))]
    {
        let pre = crate::prefilter::Prefilter::build(std::slice::from_ref(&filter));
        if matched {
            assert_eq!(
                pre.candidates(&url),
                vec![0],
                "pre-filter dropped matching rule {:?} for {url:?}",
                filter.raw
            );
        }
        let mut engine = crate::engine::FilterEngine::new();
        engine.load_list(rule_line);
        let req = crate::engine::RequestInfo {
            url: &url,
            origin_host: "origin.example.com",
            resource_type: None,
        };
        assert_eq!(
            engine.check(&req),
            engine.check_reference(&req),
            "pre-filtered engine diverged from reference on {:?} / {url:?}",
            filter.raw
        );
    }
    let _ = matched;
}

/// Dictionary: anchors, separators, options, and URL scaffolding.
pub const DICT: &[&[u8]] = &[
    b"||",
    b"|",
    b"^",
    b"*",
    b"@@",
    b"$",
    b"##",
    b"#@#",
    b"!",
    b"$third-party",
    b"$~third-party",
    b"$script",
    b"$domain=",
    b"domain=a.com|~b.com",
    b"://",
    b"https://",
    b".com",
    b"\n",
];

/// Seeds: one rule of each anchor kind, with a matching URL.
pub const SEEDS: &[&[u8]] = &[
    b"||doubleclick.net^\nhttps://ads.g.doubleclick.net/pixel?x=1",
    b"|https://ads.\nhttps://ads.example.com/",
    b"/adserver/*/banner\nhttps://x.com/adserver/v2/banner.png",
    b"@@||goodcdn.com^$script,domain=news.com|~sports.news.com\nhttps://goodcdn.com/lib.js",
    b"swf|\nhttp://x.com/movie.swf",
];
