//! Flow categorization: first-party vs third-party, and A&A labelling.
//!
//! §3.2 of the paper: "We manually identified first-party flows by
//! looking for domain names associated with our chosen services (e.g.,
//! weather.com and imwx.com for the Weather Channel). For the remaining
//! third-party flows, we further categorize them as advertisers or
//! analytics by comparing the destination domain to EasyList."
//!
//! [`Categorizer`] encodes that procedure: a per-service first-party
//! domain set plays the role of the manual identification, the
//! [`FilterEngine`] plays the role of EasyList, and a curated
//! organization table splits A&A hits into advertising vs analytics.

use crate::engine::FilterEngine;
use appvsweb_httpsim::Host;
use std::sync::Arc;

/// Category assigned to a destination domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// A domain belonging to the service under test (or its CDN alias).
    FirstParty,
    /// Third-party advertising (ad serving, exchanges, RTB).
    Advertising,
    /// Third-party analytics / attribution / tag management.
    Analytics,
    /// Third-party, but neither ads nor analytics (CDNs, payment, APIs).
    OtherThirdParty,
}

impl Category {
    /// Whether this category counts toward the paper's "A&A domains".
    pub fn is_aa(self) -> bool {
        matches!(self, Category::Advertising | Category::Analytics)
    }
}

/// Organizations (registrable-domain second-level labels) that are
/// analytics/attribution rather than ad-serving. Everything else the
/// filter engine flags is treated as advertising.
const ANALYTICS_ORGS: &[&str] = &[
    "google-analytics",
    "moatads",
    "moatpixel",
    "taplytics",
    "webtrends",
    "webtrendslive",
    "chartbeat",
    "mixpanel",
    "segment",
    "amplitude",
    "adjust",
    "appsflyer",
    "kochava",
    "branch",
    "flurry",
    "crashlytics",
    "newrelic",
    "nr-data",
    "optimizely",
    "hotjar",
    "comscore",
    "nielsen",
    "imrworldwide",
    "scorecardresearch",
    "quantserve",
    "krxd",
    "bluekai",
    "demdex",
    "exelator",
    "agkn",
    "thebrighttag",
    "tiqcdn",
    "marinsm",
    "doubleverify",
    "adsafeprotected",
    "monetate",
    "omtrdc",
    "2o7",
    "gigya",
    "usablenet",
];

/// Categorizes destination hosts for one service under test.
#[derive(Clone, Debug)]
pub struct Categorizer {
    engine: Arc<FilterEngine>,
    first_party_domains: Vec<String>,
}

impl Categorizer {
    /// Build a categorizer. `first_party_domains` are the registrable
    /// domains manually associated with the service (e.g.
    /// `["weather.com", "imwx.com"]`).
    pub fn new(engine: FilterEngine, first_party_domains: &[&str]) -> Self {
        Categorizer {
            engine: Arc::new(engine),
            first_party_domains: first_party_domains
                .iter()
                .map(|d| d.to_ascii_lowercase())
                .collect(),
        }
    }

    /// With the bundled A&A list (compiled once per process and shared
    /// across categorizers via [`crate::engine::bundled_shared`]).
    pub fn bundled(first_party_domains: &[&str]) -> Self {
        Categorizer {
            engine: crate::engine::bundled_shared(),
            first_party_domains: first_party_domains
                .iter()
                .map(|d| d.to_ascii_lowercase())
                .collect(),
        }
    }

    /// Whether `host` is first-party for this service.
    pub fn is_first_party(&self, host: &str) -> bool {
        let reg = Host::new(host).registrable_domain();
        self.first_party_domains.contains(&reg)
    }

    /// Categorize a destination host (with an example URL on that host —
    /// pattern rules need a URL to match against).
    pub fn categorize(&self, host: &str, example_url: &str) -> Category {
        if self.is_first_party(host) {
            return Category::FirstParty;
        }
        let origin = self
            .first_party_domains
            .first()
            .map(String::as_str)
            .unwrap_or("unknown.example");
        if self.engine.is_ad_or_tracking(example_url, origin) {
            let org = Host::new(host).organization_label();
            if ANALYTICS_ORGS.contains(&org.as_str()) {
                Category::Analytics
            } else {
                Category::Advertising
            }
        } else {
            Category::OtherThirdParty
        }
    }

    /// Categorize by host alone, synthesizing a generic HTTPS URL.
    pub fn categorize_host(&self, host: &str) -> Category {
        self.categorize(host, &format!("https://{host}/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weather() -> Categorizer {
        Categorizer::bundled(&["weather.com", "imwx.com"])
    }

    #[test]
    fn first_party_aliases_recognized() {
        let c = weather();
        assert_eq!(c.categorize_host("www.weather.com"), Category::FirstParty);
        assert_eq!(c.categorize_host("s.imwx.com"), Category::FirstParty);
        assert!(c.is_first_party("api.weather.com"));
        assert!(!c.is_first_party("weather.com.evil.net"));
    }

    #[test]
    fn analytics_vs_advertising_split() {
        let c = weather();
        assert_eq!(
            c.categorize_host("www.google-analytics.com"),
            Category::Analytics
        );
        assert_eq!(c.categorize_host("ads.amobee.com"), Category::Advertising);
        assert_eq!(c.categorize_host("cdn.taplytics.com"), Category::Analytics);
        assert_eq!(
            c.categorize_host("securepubads.googlesyndication.com"),
            Category::Advertising
        );
    }

    #[test]
    fn unlisted_third_party_is_other() {
        let c = weather();
        assert_eq!(
            c.categorize_host("api.payments.example"),
            Category::OtherThirdParty
        );
    }

    #[test]
    fn aa_predicate() {
        assert!(Category::Advertising.is_aa());
        assert!(Category::Analytics.is_aa());
        assert!(!Category::FirstParty.is_aa());
        assert!(!Category::OtherThirdParty.is_aa());
    }
}

appvsweb_json::impl_json!(
    enum Category {
        FirstParty,
        Advertising,
        Analytics,
        OtherThirdParty,
    }
);
