//! Filter parsing and single-pattern matching.

/// Resource types a filter's `$` options may restrict to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceType {
    /// JavaScript (ad tags, analytics snippets).
    Script,
    /// Images (tracking pixels, banner creatives).
    Image,
    /// XHR / fetch (beacon posts).
    XmlHttpRequest,
    /// Embedded frames (ad iframes).
    Subdocument,
    /// Anything else.
    Other,
}

impl ResourceType {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "script" => ResourceType::Script,
            "image" => ResourceType::Image,
            "xmlhttprequest" => ResourceType::XmlHttpRequest,
            "subdocument" => ResourceType::Subdocument,
            "other" => ResourceType::Other,
            _ => return None,
        })
    }
}

/// How the filter's pattern anchors to the URL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FilterKind {
    /// `||host…` — anchored at a hostname boundary.
    HostAnchor,
    /// `|…` — anchored at the start of the URL.
    StartAnchor,
    /// Plain substring match anywhere in the URL.
    Substring,
}

/// A parsed network filter rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    /// The original rule text (for reporting which rule fired).
    pub raw: String,
    /// Exception rule (`@@` prefix)?
    pub exception: bool,
    /// Anchor kind.
    pub kind: FilterKind,
    /// Pattern body with anchors stripped; may contain `*` and `^`.
    pub pattern: String,
    /// `…|` end anchor present?
    pub end_anchor: bool,
    /// `$third-party` (Some(true)) / `$~third-party` (Some(false)).
    pub third_party: Option<bool>,
    /// `$domain=` inclusions (empty = no restriction).
    pub include_domains: Vec<String>,
    /// `$domain=` exclusions (`~` entries).
    pub exclude_domains: Vec<String>,
    /// Resource-type restrictions (empty = all types).
    pub resource_types: Vec<ResourceType>,
}

/// Outcome of parsing one line of a filter list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsedLine {
    /// A usable network filter.
    Network(Filter),
    /// A comment, blank line, or title directive.
    Comment,
    /// An element-hiding rule (`##`/`#@#`) — irrelevant to network
    /// classification, parsed only to be skipped.
    ElementHiding,
    /// A line we do not understand (kept for diagnostics).
    Unsupported(String),
}

/// Parse one line of an EasyList-format file.
pub fn parse_line(line: &str) -> ParsedLine {
    let line = line.trim();
    if line.is_empty() || line.starts_with('!') || line.starts_with('[') {
        appvsweb_cover::cover!();
        return ParsedLine::Comment;
    }
    if line.contains("##") || line.contains("#@#") || line.contains("#?#") {
        appvsweb_cover::cover!();
        return ParsedLine::ElementHiding;
    }

    let (exception, rest) = match line.strip_prefix("@@") {
        Some(rest) => (true, rest),
        None => (false, line),
    };

    // Split off `$options`. A `$` inside the pattern is vanishingly rare
    // in real lists; EasyList semantics treat the last `$` as the options
    // separator.
    let (body, options) = match rest.rfind('$') {
        Some(idx) if idx > 0 => (&rest[..idx], Some(&rest[idx + 1..])),
        _ => (rest, None),
    };

    let mut filter = Filter {
        raw: line.to_string(),
        exception,
        kind: FilterKind::Substring,
        pattern: String::new(),
        end_anchor: false,
        third_party: None,
        include_domains: vec![],
        exclude_domains: vec![],
        resource_types: vec![],
    };

    let mut body = body;
    if let Some(rest) = body.strip_prefix("||") {
        appvsweb_cover::cover!();
        filter.kind = FilterKind::HostAnchor;
        body = rest;
    } else if let Some(rest) = body.strip_prefix('|') {
        appvsweb_cover::cover!();
        filter.kind = FilterKind::StartAnchor;
        body = rest;
    }
    if let Some(rest) = body.strip_suffix('|') {
        appvsweb_cover::cover!();
        filter.end_anchor = true;
        body = rest;
    }
    if body.is_empty() {
        return ParsedLine::Unsupported(line.to_string());
    }
    filter.pattern = body.to_ascii_lowercase();

    if let Some(options) = options {
        for opt in options.split(',') {
            let opt = opt.trim();
            match opt {
                "third-party" => filter.third_party = Some(true),
                "~third-party" => filter.third_party = Some(false),
                _ => {
                    if let Some(domains) = opt.strip_prefix("domain=") {
                        appvsweb_cover::cover!();
                        for d in domains.split('|') {
                            match d.strip_prefix('~') {
                                Some(ex) => filter.exclude_domains.push(ex.to_ascii_lowercase()),
                                None => filter.include_domains.push(d.to_ascii_lowercase()),
                            }
                        }
                    } else if let Some(rt) = ResourceType::parse(opt) {
                        filter.resource_types.push(rt);
                    } else if let Some(stripped) = opt.strip_prefix('~') {
                        // Negated resource types: treat as "no restriction"
                        // (conservative: the rule stays broad).
                        let _ = ResourceType::parse(stripped);
                    } else {
                        return ParsedLine::Unsupported(line.to_string());
                    }
                }
            }
        }
    }

    ParsedLine::Network(filter)
}

impl Filter {
    /// Whether the pattern (ignoring options) matches `url`.
    /// `url` must be lowercase; callers normalize once.
    pub fn pattern_matches(&self, url: &str) -> bool {
        match self.kind {
            FilterKind::StartAnchor => match_from(&self.pattern, url, self.end_anchor),
            FilterKind::HostAnchor => {
                // `||` matches at the start of the hostname or at any
                // subdomain-dot boundary after the scheme.
                let Some(host_start) = url.find("://").map(|i| i + 3) else {
                    return false;
                };
                let after_scheme = &url[host_start..];
                if match_from(&self.pattern, after_scheme, self.end_anchor) {
                    return true;
                }
                // Try each label boundary within the hostname.
                let host_end = after_scheme
                    .find(['/', '?', ':'])
                    .unwrap_or(after_scheme.len());
                let host = &after_scheme[..host_end];
                let mut offset = 0;
                for (i, ch) in host.char_indices() {
                    if ch == '.' {
                        offset = i + 1;
                        if match_from(&self.pattern, &after_scheme[offset..], self.end_anchor) {
                            return true;
                        }
                    }
                }
                let _ = offset;
                false
            }
            FilterKind::Substring => {
                if self.end_anchor {
                    // Substring that must end where the URL ends.
                    (0..=url.len()).rev().any(|start| {
                        url.is_char_boundary(start)
                            && match_from(&self.pattern, &url[start..], true)
                    })
                } else {
                    (0..=url.len()).any(|start| {
                        url.is_char_boundary(start)
                            && match_from(&self.pattern, &url[start..], false)
                    })
                }
            }
        }
    }
}

/// ABP separator class: `^` matches any char that is not alphanumeric and
/// not one of `_ - . %`, and also matches the end of the URL.
fn is_separator(c: u8) -> bool {
    !(c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b'%'))
}

/// Match `pattern` against the beginning of `text`. `must_end` requires
/// the match to consume `text` entirely.
fn match_from(pattern: &str, text: &str, must_end: bool) -> bool {
    let p = pattern.as_bytes();
    let t = text.as_bytes();

    fn rec(p: &[u8], t: &[u8], must_end: bool) -> bool {
        match p.first() {
            None => !must_end || t.is_empty(),
            Some(b'*') => {
                // Wildcard: try consuming 0..=all of t.
                appvsweb_cover::cover!();
                (0..=t.len()).any(|k| rec(&p[1..], &t[k..], must_end))
            }
            Some(b'^') => match t.first() {
                // `^` may match end-of-URL.
                None => rec(&p[1..], t, must_end),
                Some(&tc) if is_separator(tc) => rec(&p[1..], &t[1..], must_end),
                Some(_) => false,
            },
            Some(&c) => match t.first() {
                Some(&tc) if tc == c => rec(&p[1..], &t[1..], must_end),
                _ => false,
            },
        }
    }
    rec(p, t, must_end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(line: &str) -> Filter {
        match parse_line(line) {
            ParsedLine::Network(f) => f,
            other => panic!("expected network filter for {line:?}, got {other:?}"),
        }
    }

    #[test]
    fn parses_comments_and_cosmetic_rules() {
        assert_eq!(parse_line("! comment"), ParsedLine::Comment);
        assert_eq!(parse_line("[Adblock Plus 2.0]"), ParsedLine::Comment);
        assert_eq!(parse_line(""), ParsedLine::Comment);
        assert_eq!(
            parse_line("example.com##.ad-banner"),
            ParsedLine::ElementHiding
        );
    }

    #[test]
    fn host_anchor_matches_domain_and_subdomains() {
        let f = net("||doubleclick.net^");
        assert!(f.pattern_matches("https://doubleclick.net/ads"));
        assert!(f.pattern_matches("https://ads.g.doubleclick.net/pixel?x=1"));
        assert!(f.pattern_matches("http://doubleclick.net:8080/x"));
        assert!(!f.pattern_matches("https://notdoubleclick.net/"));
        assert!(!f.pattern_matches("https://doubleclick.nets/"));
        assert!(!f.pattern_matches("https://example.com/?ref=doubleclick.net"));
    }

    #[test]
    fn separator_matches_end_of_url() {
        let f = net("||tracker.example^");
        assert!(f.pattern_matches("https://tracker.example"));
    }

    #[test]
    fn substring_and_wildcards() {
        let f = net("/adserver/*/banner");
        assert!(f.pattern_matches("https://x.com/adserver/v2/banner.png"));
        assert!(!f.pattern_matches("https://x.com/adserver/banner")); // '*' needs the middle
        let g = net("ad_pixel");
        assert!(g.pattern_matches("http://y.net/ad_pixel?id=1"));
    }

    #[test]
    fn start_and_end_anchors() {
        let f = net("|https://ads.");
        assert!(f.pattern_matches("https://ads.example.com/"));
        assert!(!f.pattern_matches("http://mirror.com/https://ads."));
        let g = net("swf|");
        assert!(g.pattern_matches("http://x.com/movie.swf"));
        assert!(!g.pattern_matches("http://x.com/movie.swf?x=1"));
    }

    #[test]
    fn exception_rules() {
        let f = net("@@||goodcdn.com^");
        assert!(f.exception);
        assert!(f.pattern_matches("https://goodcdn.com/lib.js"));
    }

    #[test]
    fn options_parsing() {
        let f = net("||adnet.com^$third-party,script,domain=news.com|~sports.news.com");
        assert_eq!(f.third_party, Some(true));
        assert_eq!(f.resource_types, vec![ResourceType::Script]);
        assert_eq!(f.include_domains, vec!["news.com"]);
        assert_eq!(f.exclude_domains, vec!["sports.news.com"]);
        let g = net("||x.com^$~third-party");
        assert_eq!(g.third_party, Some(false));
    }

    #[test]
    fn unknown_option_is_unsupported() {
        assert!(matches!(
            parse_line("||x.com^$websocket-frobnicate"),
            ParsedLine::Unsupported(_)
        ));
    }

    #[test]
    fn case_insensitive_matching() {
        let f = net("||AdServer.COM^");
        assert!(f.pattern_matches("https://adserver.com/x"));
    }
}

appvsweb_json::impl_json!(
    enum ResourceType {
        Script,
        Image,
        XmlHttpRequest,
        Subdocument,
        Other,
    }
);
appvsweb_json::impl_json!(
    enum FilterKind {
        HostAnchor,
        StartAnchor,
        Substring,
    }
);
appvsweb_json::impl_json!(struct Filter {
    raw, exception, kind, pattern, end_anchor, third_party, include_domains, exclude_domains,
    resource_types
});
