//! The filter engine: list loading and request classification.

use crate::filter::{parse_line, Filter, ParsedLine, ResourceType};
use crate::is_third_party;
use appvsweb_httpsim::Host;

/// The request context a classification decision needs.
#[derive(Clone, Debug)]
pub struct RequestInfo<'a> {
    /// Full request URL.
    pub url: &'a str,
    /// The page/app origin host that initiated the request.
    pub origin_host: &'a str,
    /// Resource type, when known.
    pub resource_type: Option<ResourceType>,
}

/// Engine verdict for a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// A blocking rule matched (the rule text is included for reporting).
    Blocked(String),
    /// An exception rule overrode a blocking rule.
    Allowed(String),
    /// No rule matched.
    NoMatch,
}

impl Decision {
    /// Whether the engine classified the request as ad/tracking content.
    pub fn is_blocked(&self) -> bool {
        matches!(self, Decision::Blocked(_))
    }
}

/// Statistics from loading a list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Usable network rules.
    pub network_rules: usize,
    /// Exception rules (subset of `network_rules`).
    pub exceptions: usize,
    /// Comment/metadata lines.
    pub comments: usize,
    /// Element-hiding rules (skipped).
    pub element_hiding: usize,
    /// Unsupported lines (skipped).
    pub unsupported: usize,
}

/// An EasyList-style filter engine.
#[derive(Clone, Debug, Default)]
pub struct FilterEngine {
    blocking: Vec<Filter>,
    exceptions: Vec<Filter>,
}

impl FilterEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine loaded with the bundled A&A snapshot
    /// ([`crate::lists::BUNDLED_AA_LIST`]).
    pub fn with_bundled_list() -> Self {
        let mut e = FilterEngine::new();
        e.load_list(crate::lists::BUNDLED_AA_LIST);
        e
    }

    /// Load a filter list, returning what was parsed.
    pub fn load_list(&mut self, text: &str) -> LoadStats {
        let mut stats = LoadStats::default();
        for line in text.lines() {
            match parse_line(line) {
                ParsedLine::Network(f) => {
                    stats.network_rules += 1;
                    if f.exception {
                        stats.exceptions += 1;
                        self.exceptions.push(f);
                    } else {
                        self.blocking.push(f);
                    }
                }
                ParsedLine::Comment => stats.comments += 1,
                ParsedLine::ElementHiding => stats.element_hiding += 1,
                ParsedLine::Unsupported(_) => stats.unsupported += 1,
            }
        }
        stats
    }

    /// Number of loaded rules (blocking + exceptions).
    pub fn rule_count(&self) -> usize {
        self.blocking.len() + self.exceptions.len()
    }

    /// Classify a request.
    pub fn check(&self, req: &RequestInfo<'_>) -> Decision {
        let url = req.url.to_ascii_lowercase();
        let request_host = host_of(&url);
        let third_party = is_third_party(&request_host, req.origin_host);

        let matches = |f: &Filter| -> bool {
            if let Some(wants_tp) = f.third_party {
                if wants_tp != third_party {
                    return false;
                }
            }
            if !f.include_domains.is_empty()
                && !f
                    .include_domains
                    .iter()
                    .any(|d| domain_covers(d, req.origin_host))
            {
                return false;
            }
            if f.exclude_domains
                .iter()
                .any(|d| domain_covers(d, req.origin_host))
            {
                return false;
            }
            if !f.resource_types.is_empty() {
                match req.resource_type {
                    Some(rt) if f.resource_types.contains(&rt) => {}
                    _ => return false,
                }
            }
            f.pattern_matches(&url)
        };

        let blocked = self.blocking.iter().find(|f| matches(f));
        if let Some(rule) = blocked {
            if let Some(exc) = self.exceptions.iter().find(|f| matches(f)) {
                return Decision::Allowed(exc.raw.clone());
            }
            return Decision::Blocked(rule.raw.clone());
        }
        Decision::NoMatch
    }

    /// Convenience: does any blocking rule hit this URL for this origin?
    pub fn is_ad_or_tracking(&self, url: &str, origin_host: &str) -> bool {
        self.check(&RequestInfo {
            url,
            origin_host,
            resource_type: None,
        })
        .is_blocked()
    }
}

/// Extract the hostname from a lowercase URL string.
fn host_of(url: &str) -> String {
    let after = url.split("://").nth(1).unwrap_or(url);
    let end = after.find(['/', '?', ':']).unwrap_or(after.len());
    after[..end].to_string()
}

/// Whether `origin` equals `domain` or is a subdomain of it, using
/// registrable-domain comparison for bare domains.
fn domain_covers(domain: &str, origin: &str) -> bool {
    let origin = origin.to_ascii_lowercase();
    origin == domain
        || origin.ends_with(&format!(".{domain}"))
        || Host::new(&origin).registrable_domain() == domain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(rules: &str) -> FilterEngine {
        let mut e = FilterEngine::new();
        e.load_list(rules);
        e
    }

    #[test]
    fn load_stats_counting() {
        let mut e = FilterEngine::new();
        let stats = e.load_list(
            "! title\n[Adblock]\n||a.com^\n@@||b.com^\nexample.com##.ad\n||c.com^$bogus-opt\n",
        );
        assert_eq!(stats.network_rules, 2);
        assert_eq!(stats.exceptions, 1);
        assert_eq!(stats.comments, 2);
        assert_eq!(stats.element_hiding, 1);
        assert_eq!(stats.unsupported, 1);
        assert_eq!(e.rule_count(), 2);
    }

    #[test]
    fn block_and_exception_precedence() {
        let e = engine("||cdn.com^\n@@||cdn.com/whitelisted/*\n");
        assert!(e.is_ad_or_tracking("https://cdn.com/ad.js", "site.com"));
        let d = e.check(&RequestInfo {
            url: "https://cdn.com/whitelisted/lib.js",
            origin_host: "site.com",
            resource_type: None,
        });
        assert!(matches!(d, Decision::Allowed(_)));
    }

    #[test]
    fn third_party_option_enforced() {
        let e = engine("||stats.com^$third-party\n");
        assert!(e.is_ad_or_tracking("https://stats.com/t.gif", "news.com"));
        // Same registrable domain = first party: rule must not fire.
        assert!(!e.is_ad_or_tracking("https://stats.com/t.gif", "www.stats.com"));
    }

    #[test]
    fn domain_option_scopes_rule() {
        let e = engine("||widget.com^$domain=news.com|~tech.news.com\n");
        assert!(e.is_ad_or_tracking("https://widget.com/w.js", "news.com"));
        assert!(e.is_ad_or_tracking("https://widget.com/w.js", "m.news.com"));
        assert!(!e.is_ad_or_tracking("https://widget.com/w.js", "tech.news.com"));
        assert!(!e.is_ad_or_tracking("https://widget.com/w.js", "other.com"));
    }

    #[test]
    fn resource_type_option() {
        let e = engine("||pix.com^$image\n");
        let img = RequestInfo {
            url: "https://pix.com/1.gif",
            origin_host: "a.com",
            resource_type: Some(ResourceType::Image),
        };
        let script = RequestInfo {
            url: "https://pix.com/1.js",
            origin_host: "a.com",
            resource_type: Some(ResourceType::Script),
        };
        let unknown = RequestInfo {
            url: "https://pix.com/1.gif",
            origin_host: "a.com",
            resource_type: None,
        };
        assert!(e.check(&img).is_blocked());
        assert!(!e.check(&script).is_blocked());
        assert!(
            !e.check(&unknown).is_blocked(),
            "typed rules need a typed request"
        );
    }

    #[test]
    fn bundled_list_loads_and_fires() {
        let e = FilterEngine::with_bundled_list();
        assert!(e.rule_count() > 50);
        assert!(e.is_ad_or_tracking(
            "https://www.google-analytics.com/collect?v=1",
            "www.weather.com"
        ));
        assert!(e.is_ad_or_tracking("https://ads.amobee.com/bid", "jetblue.com"));
        assert!(!e.is_ad_or_tracking("https://www.weather.com/today", "www.weather.com"));
    }

    #[test]
    fn no_match_for_clean_requests() {
        let e = engine("||bad.com^\n");
        assert_eq!(
            e.check(&RequestInfo {
                url: "https://good.com/page",
                origin_host: "good.com",
                resource_type: None
            }),
            Decision::NoMatch
        );
    }
}
